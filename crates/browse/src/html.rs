//! HTML rendering of views and templates.
//!
//! The original BANKS served servlet-generated HTML; this module is the
//! equivalent presentation layer, turning [`RenderedView`]s and template
//! outputs into self-contained HTML fragments with `banks://` hyperlinks
//! (the navigation scheme of [`crate::hyperlink::Hyperlink::href`]).

use crate::templates::{ChartData, ChartKind, Crosstab, FolderNode};
use crate::view::RenderedView;
use std::fmt::Write as _;

/// Escape text for HTML.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a table view as an HTML `<table>` with pagination footer.
pub fn render_view(view: &RenderedView) -> String {
    let mut html = String::new();
    let _ = write!(
        html,
        "<h2>{}</h2>\n<table border=\"1\">\n<tr>",
        escape(&view.title)
    );
    for col in &view.columns {
        let _ = write!(html, "<th>{}</th>", escape(col));
    }
    html.push_str("</tr>\n");
    for row in &view.rows {
        html.push_str("<tr>");
        for cell in row {
            match &cell.link {
                Some(link) => {
                    let _ = write!(
                        html,
                        "<td><a href=\"{}\">{}</a></td>",
                        escape(&link.href()),
                        escape(&cell.text)
                    );
                }
                None => {
                    let _ = write!(html, "<td>{}</td>", escape(&cell.text));
                }
            }
        }
        html.push_str("</tr>\n");
    }
    let _ = write!(
        html,
        "</table>\n<p>page {} of {} ({} rows)</p>\n",
        view.page + 1,
        view.page_count,
        view.total_rows
    );
    html
}

/// Render a cross-tab as an HTML table with totals.
pub fn render_crosstab(ct: &Crosstab) -> String {
    let mut html = String::from("<table border=\"1\">\n<tr><th></th>");
    for col in &ct.col_labels {
        let _ = write!(html, "<th>{}</th>", escape(&col.to_string()));
    }
    html.push_str("<th>total</th></tr>\n");
    for (r, row_label) in ct.row_labels.iter().enumerate() {
        let _ = write!(html, "<tr><th>{}</th>", escape(&row_label.to_string()));
        for c in 0..ct.col_labels.len() {
            let _ = write!(html, "<td>{}</td>", ct.cells[r][c]);
        }
        let _ = writeln!(html, "<td>{}</td></tr>", ct.row_totals[r]);
    }
    html.push_str("<tr><th>total</th>");
    for total in &ct.col_totals {
        let _ = write!(html, "<td>{total}</td>");
    }
    let _ = write!(html, "<td>{}</td></tr>\n</table>\n", ct.total);
    html
}

/// Render a folder tree as nested HTML lists.
pub fn render_folder(node: &FolderNode) -> String {
    let mut html = String::new();
    render_folder_into(node, &mut html);
    html
}

fn render_folder_into(node: &FolderNode, html: &mut String) {
    let _ = write!(html, "<li>📁 {} ({})", escape(&node.label), node.count);
    if !node.children.is_empty() {
        html.push_str("<ul>");
        for child in &node.children {
            render_folder_into(child, html);
        }
        html.push_str("</ul>");
    } else if !node.leaves.is_empty() {
        html.push_str("<ul>");
        for leaf in &node.leaves {
            let _ = write!(html, "<li><a href=\"banks://tuple/{leaf}\">{leaf}</a></li>");
        }
        html.push_str("</ul>");
    }
    html.push_str("</li>\n");
}

/// Render chart data.
///
/// Bar charts become div-bars whose widths encode values; line and pie
/// charts fall back to a linked value table (the image-map equivalent:
/// every visual element is an anchor).
pub fn render_chart(chart: &ChartData) -> String {
    let mut html = String::new();
    let _ = writeln!(html, "<h2>{}</h2>", escape(&chart.title));
    match chart.kind {
        ChartKind::Bar => {
            let max = chart
                .points
                .iter()
                .map(|p| p.value)
                .fold(0.0f64, f64::max)
                .max(1.0);
            for p in &chart.points {
                let width = (p.value / max * 300.0).round() as i64;
                let _ = writeln!(
                    html,
                    "<div><a href=\"{}\">{}</a> \
                     <span style=\"display:inline-block;background:#36c;height:12px;width:{}px\"></span> {}</div>",
                    escape(&p.link.href()),
                    escape(&p.label),
                    width,
                    p.value
                );
            }
        }
        ChartKind::Line | ChartKind::Pie => {
            html.push_str(
                "<table border=\"1\"><tr><th>label</th><th>value</th><th>share</th></tr>\n",
            );
            for p in &chart.points {
                let _ = writeln!(
                    html,
                    "<tr><td><a href=\"{}\">{}</a></td><td>{}</td><td>{:.1}%</td></tr>",
                    escape(&p.link.href()),
                    escape(&p.label),
                    p.value,
                    p.fraction * 100.0
                );
            }
            html.push_str("</table>\n");
        }
    }
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{self, ChartSpec, CrosstabSpec, FolderSpec, Measure};
    use crate::view::{render, ViewSpec};
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn escape_covers_special_chars() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn view_renders_links_and_pagination() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let spec = ViewSpec::relation(d.db.relation_id("Student").unwrap());
        let view = render(&d.db, &spec).unwrap();
        let html = render_view(&view);
        assert!(html.contains("<table"));
        assert!(html.contains("banks://tuple/"));
        assert!(html.contains("page 1 of 4"));
        assert!(html.contains("Student.RollNo"));
    }

    #[test]
    fn crosstab_html_has_totals() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let ct = templates::crosstab::evaluate(
            &d.db,
            &CrosstabSpec {
                relation: d.db.relation_id("Student").unwrap(),
                row_attr: 2,
                col_attr: 3,
                measure: Measure::Count,
            },
        )
        .unwrap();
        let html = render_crosstab(&ct);
        assert!(html.contains("<th>total</th>"));
        assert!(html.contains("80"));
    }

    #[test]
    fn folder_html_nests() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let tree = templates::folder::evaluate(
            &d.db,
            &FolderSpec {
                relation: d.db.relation_id("Student").unwrap(),
                levels: vec![2],
                max_leaves: 2,
            },
        )
        .unwrap();
        let html = render_folder(&tree);
        assert!(html.contains("<ul>"));
        assert!(html.contains("banks://tuple/"));
        assert!(html.matches("📁").count() > 1);
    }

    #[test]
    fn bar_chart_widths_scale() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let chart = templates::chart::evaluate(
            &d.db,
            &ChartSpec {
                relation: d.db.relation_id("Student").unwrap(),
                label_attr: 2,
                measure: Measure::Count,
                kind: crate::templates::ChartKind::Bar,
            },
        )
        .unwrap();
        let html = render_chart(&chart);
        assert!(html.contains("width:300px"), "largest bar is full width");
        assert!(html.contains("banks://group/"));
    }

    #[test]
    fn pie_chart_lists_shares() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let chart = templates::chart::evaluate(
            &d.db,
            &ChartSpec {
                relation: d.db.relation_id("Student").unwrap(),
                label_attr: 3,
                measure: Measure::Count,
                kind: crate::templates::ChartKind::Pie,
            },
        )
        .unwrap();
        let html = render_chart(&chart);
        assert!(html.contains('%'));
    }
}
