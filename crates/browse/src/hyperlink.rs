//! Hyperlinks generated from the schema.
//!
//! §4: "Every displayed foreign key attribute value becomes a hyperlink to
//! the referenced tuple. In addition, primary key columns can be browsed
//! backwards, to find referencing tuples, organized by referencing
//! relations."

use banks_storage::{Database, RelationId, Rid, Value};

/// A navigation action attached to a cell or control.
#[derive(Debug, Clone, PartialEq)]
pub enum Hyperlink {
    /// View one tuple (following a foreign key).
    Tuple(Rid),
    /// View the tuples of `relation` that reference `target` through the
    /// relation's foreign key `fk_index` (backward browsing of a primary
    /// key).
    BackRefs {
        /// The referenced tuple.
        target: Rid,
        /// The referencing relation.
        relation: RelationId,
        /// Which foreign key of `relation` points at the target.
        fk_index: usize,
    },
    /// Browse a whole relation.
    Relation(RelationId),
    /// Drill into one group value of a grouped view.
    GroupValue {
        /// Relation being grouped.
        relation: RelationId,
        /// Grouping column.
        column: u32,
        /// The group's value.
        value: Value,
    },
    /// Jump to a stored template instance by name ("template instances are
    /// customized, stored in the database, and given a hyperlink name").
    Template(String),
}

impl Hyperlink {
    /// Serialize as a `banks://` URI, the form embedded in rendered HTML.
    pub fn href(&self) -> String {
        match self {
            Hyperlink::Tuple(rid) => format!("banks://tuple/{rid}"),
            Hyperlink::BackRefs {
                target,
                relation,
                fk_index,
            } => format!("banks://backrefs/{target}/{relation}/{fk_index}"),
            Hyperlink::Relation(rel) => format!("banks://relation/{rel}"),
            Hyperlink::GroupValue {
                relation,
                column,
                value,
            } => format!("banks://group/{relation}/{column}/{value}"),
            Hyperlink::Template(name) => format!("banks://template/{name}"),
        }
    }
}

/// One entry of the "browse backwards" menu on a primary key: a
/// referencing relation, the foreign key involved, and how many tuples
/// currently reference the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackRefSummary {
    /// Referencing relation.
    pub relation: RelationId,
    /// Referencing relation's name.
    pub relation_name: String,
    /// Foreign key index within the referencing relation.
    pub fk_index: usize,
    /// Number of referencing tuples.
    pub count: usize,
}

/// Enumerate the backward-browsing options for a tuple, grouped by
/// `(referencing relation, foreign key)`.
pub fn backref_summaries(db: &Database, target: Rid) -> Vec<BackRefSummary> {
    let mut out: Vec<BackRefSummary> = Vec::new();
    for backref in db.referencing(target) {
        let rel = backref.from.relation;
        match out
            .iter_mut()
            .find(|s| s.relation == rel && s.fk_index == backref.fk_index)
        {
            Some(s) => s.count += 1,
            None => out.push(BackRefSummary {
                relation: rel,
                relation_name: db.table(rel).schema().name.clone(),
                fk_index: backref.fk_index,
                count: 1,
            }),
        }
    }
    out.sort_by_key(|a| (a.relation, a.fk_index));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::dblp::{generate, DblpConfig};

    #[test]
    fn href_forms() {
        let rid = Rid::new(RelationId(1), 5);
        assert_eq!(Hyperlink::Tuple(rid).href(), "banks://tuple/R1:5");
        assert_eq!(
            Hyperlink::BackRefs {
                target: rid,
                relation: RelationId(2),
                fk_index: 0
            }
            .href(),
            "banks://backrefs/R1:5/R2/0"
        );
        assert_eq!(
            Hyperlink::Relation(RelationId(3)).href(),
            "banks://relation/R3"
        );
        assert_eq!(
            Hyperlink::Template("by-dept".into()).href(),
            "banks://template/by-dept"
        );
    }

    #[test]
    fn backref_summaries_group_by_relation_and_fk() {
        let d = generate(DblpConfig::tiny(1)).unwrap();
        let paper = d.db.relation("Paper").unwrap();
        let rid = paper
            .lookup_pk(&[Value::text(&d.planted.chakrabarti_sd98)])
            .unwrap();
        let summaries = backref_summaries(&d.db, rid);
        // ChakrabartiSD98 is referenced by Writes (3 authors) and by Cites
        // (its planted citation boost) through the Cited fk.
        let writes = summaries
            .iter()
            .find(|s| s.relation_name == "Writes")
            .expect("writes backrefs");
        assert_eq!(writes.count, 3);
        let cites = summaries
            .iter()
            .find(|s| s.relation_name == "Cites")
            .expect("cites backrefs");
        assert!(cites.count > 0);
        assert_eq!(cites.fk_index, 1, "referenced through the Cited column");
    }

    #[test]
    fn no_backrefs_for_leaf_tuples() {
        let d = generate(DblpConfig::tiny(1)).unwrap();
        let writes = d.db.relation("Writes").unwrap();
        let (rid, _) = writes.scan().next().unwrap();
        assert!(backref_summaries(&d.db, rid).is_empty());
    }
}
