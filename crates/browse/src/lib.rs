//! # banks-browse
//!
//! The **B** of BANKS: the automatic data/schema browsing layer of §4 of
//! *Keyword Searching and Browsing in Databases using BANKS* (ICDE 2002).
//!
//! "The browsing system automatically generates browsable views of
//! database relations and query results; no content programming or user
//! intervention is required." This crate reproduces that model as a
//! library:
//!
//! * [`hyperlink`] — links derived purely from the schema: every foreign
//!   key value links to its referenced tuple; every primary key can be
//!   browsed backwards, organized by referencing relation;
//! * [`view`] — declarative table views with the §4 controls: project
//!   away columns, impose selections, join along foreign keys (both
//!   directions), group by a column, sort, paginate;
//! * [`session`] — a navigable browsing session with history;
//! * [`templates`] — the four predefined templates: cross-tabs, group-by
//!   hierarchies, folder views and charts, composable through a named
//!   template registry;
//! * [`html`] — the presentation layer (the original system's servlet
//!   output), rendering everything to HTML strings with `banks://` links.
//!
//! ```
//! use banks_browse::{Session, html};
//! use banks_datagen::thesis::{generate, ThesisConfig};
//!
//! let dataset = generate(ThesisConfig::tiny(42)).unwrap();
//! let mut session = Session::open(&dataset.db, "Student").unwrap();
//! session.group_by(2); // group students by department
//! let view = session.render().unwrap();
//! let page = html::render_view(&view);
//! assert!(page.contains("banks://group/"));
//! ```

pub mod html;
pub mod hyperlink;
pub mod session;
pub mod templates;
pub mod view;

pub use hyperlink::{backref_summaries, BackRefSummary, Hyperlink};
pub use session::Session;
pub use templates::{
    ChartData, ChartKind, ChartPoint, ChartSpec, Crosstab, CrosstabSpec, FolderNode, FolderSpec,
    GroupByLevel, GroupBySpec, Measure, TemplateOutput, TemplateRegistry, TemplateSpec,
};
pub use view::{render, Cell, JoinSpec, RenderedView, ReverseJoinSpec, ViewSpec};
