//! Synthetic DBLP-style bibliographic database.
//!
//! Reproduces the structure of the paper's first dataset ("a part of the
//! DBLP information, represented in structured relational format … about
//! 100000 nodes and 300000 edges in the resultant BANKS graph", §5): the
//! Figure 1 schema — Author, Paper, Writes, Cites — populated with
//! Zipf-skewed authorship and preferential-attachment citations, plus the
//! *planted* entities behind every §5.1 anecdote:
//!
//! * "C. Mohan" (prolific), "Mohan Ahuja", "Mohan Kamat" — the "Mohan"
//!   prestige-ranking anecdote;
//! * Jim Gray's classic transaction paper and the Gray & Reuter book, both
//!   cited more than any synthetic paper — the "transaction" anecdote;
//! * Soumen Chakrabarti / Sunita Sarawagi / Byron Dom and ChakrabartiSD98
//!   — Figure 1(B) and the "soumen sunita" anecdote;
//! * Michael Stonebraker (prolific), Margo Seltzer — the "seltzer sunita"
//!   anecdote (connected only through Stonebraker).

use crate::names::{FIRST_NAMES, LAST_NAMES, TITLE_WORDS};
use crate::rng::Rng;
use crate::zipf::Zipf;
use banks_storage::{ColumnType, Database, RelationSchema, StorageResult, Value};
use std::collections::HashSet;

/// Size knobs for the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DblpConfig {
    /// PRNG seed; equal seeds give byte-identical databases.
    pub seed: u64,
    /// Synthetic author count (planted authors come on top).
    pub authors: usize,
    /// Synthetic paper count (planted papers come on top).
    pub papers: usize,
    /// Approximate synthetic citation count.
    pub cites: usize,
    /// Zipf exponent for author productivity.
    pub author_skew: f64,
    /// Zipf exponent for citation popularity.
    pub cite_skew: f64,
}

impl DblpConfig {
    /// A few hundred tuples — unit-test scale.
    pub fn tiny(seed: u64) -> DblpConfig {
        DblpConfig {
            seed,
            authors: 60,
            papers: 120,
            cites: 150,
            author_skew: 0.8,
            cite_skew: 0.8,
        }
    }

    /// Around ten thousand tuples — integration-test / bench scale.
    pub fn small(seed: u64) -> DblpConfig {
        DblpConfig {
            seed,
            authors: 800,
            papers: 1_700,
            cites: 3_000,
            author_skew: 0.8,
            cite_skew: 0.8,
        }
    }

    /// The §5.2 scale: ~100K graph nodes / ~300K directed edges.
    pub fn paper_scale(seed: u64) -> DblpConfig {
        DblpConfig {
            seed,
            authors: 8_000,
            papers: 17_000,
            cites: 30_000,
            author_skew: 0.8,
            cite_skew: 0.8,
        }
    }

    /// Linearly scale the paper-scale proportions by `factor`.
    pub fn scaled(seed: u64, factor: f64) -> DblpConfig {
        let base = DblpConfig::paper_scale(seed);
        DblpConfig {
            seed,
            authors: ((base.authors as f64 * factor) as usize).max(10),
            papers: ((base.papers as f64 * factor) as usize).max(20),
            cites: ((base.cites as f64 * factor) as usize).max(20),
            ..base
        }
    }
}

/// Identifiers of the planted anecdote entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DblpPlanted {
    /// Author id of C. Mohan (20 synthetic papers).
    pub mohan_c: String,
    /// Author id of Mohan Ahuja (5 papers).
    pub mohan_ahuja: String,
    /// Author id of Mohan Kamat (2 papers).
    pub mohan_kamat: String,
    /// Author id of Jim Gray.
    pub gray: String,
    /// Author id of Andreas Reuter.
    pub reuter: String,
    /// Paper id of "The Transaction Concept Virtues and Limitations"
    /// (most-cited paper in the database).
    pub transaction_paper: String,
    /// Paper id of "Transaction Processing Concepts and Techniques"
    /// (second most cited).
    pub transaction_book: String,
    /// Author id of Soumen Chakrabarti.
    pub soumen: String,
    /// Author id of Sunita Sarawagi.
    pub sunita: String,
    /// Author id of Byron Dom.
    pub byron: String,
    /// Paper id of ChakrabartiSD98 (Fig. 1).
    pub chakrabarti_sd98: String,
    /// Paper id of the second Soumen+Sunita co-authored paper.
    pub scalable_mining: String,
    /// Author id of Michael Stonebraker (prolific).
    pub stonebraker: String,
    /// Author id of Margo Seltzer.
    pub seltzer: String,
    /// Paper id of the Stonebraker+Seltzer paper.
    pub stone_seltzer_paper: String,
    /// Paper id of the Stonebraker+Sunita paper.
    pub stone_sunita_paper: String,
}

/// A generated database plus its planted ground truth.
#[derive(Debug, Clone)]
pub struct DblpDataset {
    /// The relational database (Fig. 1 schema).
    pub db: Database,
    /// Planted entity ids.
    pub planted: DblpPlanted,
    /// Config used for generation.
    pub config: DblpConfig,
}

/// Create the Fig. 1 schema in a fresh database.
pub fn dblp_schema() -> StorageResult<Database> {
    let mut db = Database::new("dblp");
    db.create_relation(
        RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .primary_key(&["AuthorId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Paper")
            .column("PaperId", ColumnType::Text)
            .column("PaperName", ColumnType::Text)
            .primary_key(&["PaperId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Writes")
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .primary_key(&["AuthorId", "PaperId"])
            .foreign_key(&["AuthorId"], "Author")
            .foreign_key(&["PaperId"], "Paper")
            .build()?,
    )?;
    // The paper singles out citation links as weaker than authorship links
    // ("the link between the Paper table and the Cites table … would have
    // a higher weight"): similarity 2 vs the default 1.
    db.create_relation(
        RelationSchema::builder("Cites")
            .column("Citing", ColumnType::Text)
            .column("Cited", ColumnType::Text)
            .primary_key(&["Citing", "Cited"])
            .foreign_key_with_similarity(&["Citing"], "Paper", 2.0)
            .foreign_key_with_similarity(&["Cited"], "Paper", 2.0)
            .build()?,
    )?;
    Ok(db)
}

/// Generate a full dataset.
pub fn generate(config: DblpConfig) -> StorageResult<DblpDataset> {
    let mut rng = Rng::new(config.seed);
    let mut db = dblp_schema()?;

    // ---- synthetic authors ----------------------------------------------
    let mut author_ids: Vec<String> = Vec::with_capacity(config.authors);
    for i in 0..config.authors {
        let id = format!("A{i:05}");
        let name = format!(
            "{} {}",
            rng.pick(FIRST_NAMES),
            LAST_NAMES[i % LAST_NAMES.len()]
        );
        db.insert("Author", vec![Value::text(&id), Value::text(name)])?;
        author_ids.push(id);
    }

    // ---- synthetic papers ------------------------------------------------
    let mut paper_ids: Vec<String> = Vec::with_capacity(config.papers);
    for i in 0..config.papers {
        let id = format!("P{i:05}");
        let n_words = rng.range(3, 8);
        let mut words: Vec<&str> = (0..n_words).map(|_| *rng.pick(TITLE_WORDS)).collect();
        words.dedup();
        let mut title = words.join(" ");
        // ~10% of titles carry a publication year token, feeding approx().
        if rng.chance(0.10) {
            title.push_str(&format!(" {}", 1975 + rng.range(0, 26)));
        }
        db.insert("Paper", vec![Value::text(&id), Value::text(title)])?;
        paper_ids.push(id);
    }

    // ---- synthetic authorship (Zipf-skewed) -------------------------------
    let author_zipf = Zipf::new(config.authors, config.author_skew);
    let mut writes_seen: HashSet<(usize, usize)> = HashSet::new();
    for (p_idx, paper) in paper_ids.iter().enumerate() {
        let n_authors = rng.range(1, 5);
        let mut chosen: Vec<usize> = Vec::with_capacity(n_authors);
        for _ in 0..n_authors {
            for _attempt in 0..8 {
                let a = author_zipf.sample(&mut rng);
                if !chosen.contains(&a) && !writes_seen.contains(&(a, p_idx)) {
                    chosen.push(a);
                    break;
                }
            }
        }
        for a in chosen {
            writes_seen.insert((a, p_idx));
            db.insert(
                "Writes",
                vec![Value::text(&author_ids[a]), Value::text(paper)],
            )?;
        }
    }

    // ---- synthetic citations (preferential by rank) -----------------------
    let cite_zipf = Zipf::new(config.papers, config.cite_skew);
    let mut cites_seen: HashSet<(usize, usize)> = HashSet::new();
    let mut cite_counts: Vec<usize> = vec![0; config.papers];
    let mut inserted = 0usize;
    let mut attempts = 0usize;
    while inserted < config.cites && attempts < config.cites * 4 {
        attempts += 1;
        let citing = rng.range(0, config.papers);
        let cited = cite_zipf.sample(&mut rng);
        if citing == cited || cites_seen.contains(&(citing, cited)) {
            continue;
        }
        cites_seen.insert((citing, cited));
        cite_counts[cited] += 1;
        db.insert(
            "Cites",
            vec![
                Value::text(&paper_ids[citing]),
                Value::text(&paper_ids[cited]),
            ],
        )?;
        inserted += 1;
    }
    drop(cite_counts);
    drop(cites_seen); // synthetic pairs cannot collide with planted ids

    // Prestige baseline: the highest *total* indegree over synthetic
    // papers (writes + citations made + citations received — BANKS
    // prestige counts every reference). Planted papers must beat it.
    let paper_rel = db.relation_id("Paper")?;
    let max_synth_indegree = db
        .table(paper_rel)
        .scan()
        .map(|(rid, _)| db.indegree(rid))
        .max()
        .unwrap_or(0);

    // ---- planted entities --------------------------------------------------
    let planted = plant(&mut db, &mut rng, &paper_ids, max_synth_indegree)?;

    Ok(DblpDataset {
        db,
        planted,
        config,
    })
}

/// Insert the anecdote entities and wire them into the synthetic corpus.
fn plant(
    db: &mut Database,
    rng: &mut Rng,
    paper_ids: &[String],
    max_synth_indegree: usize,
) -> StorageResult<DblpPlanted> {
    let add_author = |db: &mut Database, id: &str, name: &str| -> StorageResult<()> {
        db.insert("Author", vec![Value::text(id), Value::text(name)])?;
        Ok(())
    };
    for (id, name) in [
        ("MohanC", "C. Mohan"),
        ("MohanA", "Mohan Ahuja"),
        ("MohanK", "Mohan Kamat"),
        ("GrayJ", "Jim Gray"),
        ("ReuterA", "Andreas Reuter"),
        ("SoumenC", "Soumen Chakrabarti"),
        ("SunitaS", "Sunita Sarawagi"),
        ("ByronD", "Byron Dom"),
        ("StonebrakerM", "Michael Stonebraker"),
        ("SeltzerM", "Margo Seltzer"),
    ] {
        add_author(db, id, name)?;
    }

    let planted_papers: &[(&str, &str)] = &[
        (
            "GrayTransaction81",
            "The Transaction Concept Virtues and Limitations",
        ),
        (
            "GrayReuter93",
            "Transaction Processing Concepts and Techniques",
        ),
        (
            "ChakrabartiSD98",
            "Mining Surprising Patterns Using Temporal Description Length",
        ),
        ("SarawagiC00", "Scalable Mining of Surprising Sequences"),
        (
            "StonebrakerSeltzer93",
            "Transaction Support in Read Optimized File Systems",
        ),
        (
            "StonebrakerSarawagi98",
            "Efficient Organization of Large Multidimensional Arrays",
        ),
    ];
    for (id, title) in planted_papers {
        db.insert("Paper", vec![Value::text(*id), Value::text(*title)])?;
    }

    // Authorship of planted papers.
    for (author, paper) in [
        ("GrayJ", "GrayTransaction81"),
        ("GrayJ", "GrayReuter93"),
        ("ReuterA", "GrayReuter93"),
        ("SoumenC", "ChakrabartiSD98"),
        ("SunitaS", "ChakrabartiSD98"),
        ("ByronD", "ChakrabartiSD98"),
        ("SoumenC", "SarawagiC00"),
        ("SunitaS", "SarawagiC00"),
        ("StonebrakerM", "StonebrakerSeltzer93"),
        ("SeltzerM", "StonebrakerSeltzer93"),
        ("StonebrakerM", "StonebrakerSarawagi98"),
        ("SunitaS", "StonebrakerSarawagi98"),
    ] {
        db.insert("Writes", vec![Value::text(author), Value::text(paper)])?;
    }

    // Productivity plants: authorship of synthetic papers. C. Mohan's 20
    // papers beat Ahuja's 5 beat Kamat's 2 ("C. Mohan came out at the top
    // of the ranking … due to the prestige conferred by the writes
    // relation"); Stonebraker's 30 papers make his author→Writes backward
    // edges heavy (the log-scaling anecdote).
    let mut cursor = 0usize;
    let mut next_papers = |rng: &mut Rng, k: usize| -> Vec<usize> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k && cursor + 1 < paper_ids.len() {
            cursor += 1 + rng.range(0, 3);
            if cursor < paper_ids.len() {
                out.push(cursor);
            }
        }
        out
    };
    // Kamat planted before Ahuja before C. Mohan: with node weights
    // disabled (λ=0) every single-node answer ties, so emission order
    // falls back to node order — which is then the *wrong* order, as in
    // the paper's λ=0 error bars. Prestige must do the work.
    for (author, k) in [
        ("MohanK", 2usize),
        ("MohanA", 5),
        ("MohanC", 20),
        ("GrayJ", 5),
        ("StonebrakerM", 30),
        // Seltzer deliberately gets NO synthetic papers: her only link to
        // the corpus is the Stonebraker co-authorship, so "seltzer sunita"
        // must route through Stonebraker (the §5.1 anecdote).
        ("SoumenC", 3),
        ("SunitaS", 3),
        ("ByronD", 2),
    ] {
        for p in next_papers(rng, k) {
            db.insert(
                "Writes",
                vec![Value::text(author), Value::text(&paper_ids[p])],
            )?;
        }
    }

    // Citation plants: the transaction paper and book must out-rank every
    // synthetic paper on prestige; ChakrabartiSD98 gets a modest boost.
    let paper_count = paper_ids.len();
    let cite_from_distinct = |db: &mut Database, target: &str, count: usize| {
        let mut added = 0usize;
        let mut idx = 0usize;
        while added < count && idx < paper_count {
            db.insert(
                "Cites",
                vec![Value::text(&paper_ids[idx]), Value::text(target)],
            )
            .expect("planted cite");
            added += 1;
            idx += 1;
        }
        added
    };
    let boost_top = max_synth_indegree + max_synth_indegree / 5 + 4;
    let boost_second = max_synth_indegree + max_synth_indegree / 10 + 2;
    cite_from_distinct(db, "GrayTransaction81", boost_top);
    cite_from_distinct(db, "GrayReuter93", boost_second);
    // ChakrabartiSD98 gets a strong (but sub-book) boost so its prestige
    // puts the Figure 2 answer ahead of the lighter two-author tree.
    cite_from_distinct(db, "ChakrabartiSD98", max_synth_indegree * 3 / 5 + 5);

    Ok(DblpPlanted {
        mohan_c: "MohanC".into(),
        mohan_ahuja: "MohanA".into(),
        mohan_kamat: "MohanK".into(),
        gray: "GrayJ".into(),
        reuter: "ReuterA".into(),
        transaction_paper: "GrayTransaction81".into(),
        transaction_book: "GrayReuter93".into(),
        soumen: "SoumenC".into(),
        sunita: "SunitaS".into(),
        byron: "ByronD".into(),
        chakrabarti_sd98: "ChakrabartiSD98".into(),
        scalable_mining: "SarawagiC00".into(),
        stonebraker: "StonebrakerM".into(),
        seltzer: "SeltzerM".into(),
        stone_seltzer_paper: "StonebrakerSeltzer93".into(),
        stone_sunita_paper: "StonebrakerSarawagi98".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::stats::DatabaseStats;

    #[test]
    fn deterministic_generation() {
        let a = generate(DblpConfig::tiny(7)).unwrap();
        let b = generate(DblpConfig::tiny(7)).unwrap();
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.db.link_count(), b.db.link_count());
        let c = generate(DblpConfig::tiny(8)).unwrap();
        assert_ne!(
            (a.db.total_tuples(), a.db.link_count()),
            (c.db.total_tuples(), c.db.link_count()),
            "different seeds give different corpora"
        );
    }

    #[test]
    fn tiny_counts_in_expected_range() {
        let d = generate(DblpConfig::tiny(1)).unwrap();
        let stats = DatabaseStats::gather(&d.db);
        assert!(stats.total_tuples > 400, "got {}", stats.total_tuples);
        assert!(stats.total_tuples < 1200, "got {}", stats.total_tuples);
        // All four relations populated.
        for r in &stats.relations {
            assert!(r.tuples > 0, "{} empty", r.name);
        }
    }

    #[test]
    fn transaction_papers_are_most_prestigious() {
        let d = generate(DblpConfig::tiny(3)).unwrap();
        let paper = d.db.relation("Paper").unwrap();
        let indeg = |pid: &str| {
            let rid = paper.lookup_pk(&[Value::text(pid)]).unwrap();
            d.db.indegree(rid)
        };
        let top = indeg(&d.planted.transaction_paper);
        let second = indeg(&d.planted.transaction_book);
        assert!(top > second, "paper {top} vs book {second}");
        // beat every synthetic paper on total indegree (= BANKS prestige)
        let mut best_synth = 0;
        for (rid, t) in paper.scan() {
            let id = t.values()[0].as_text().unwrap();
            if id.starts_with('P') {
                best_synth = best_synth.max(d.db.indegree(rid));
            }
        }
        assert!(second > best_synth, "book {second} vs synth {best_synth}");
    }

    #[test]
    fn mohan_productivity_ordering() {
        let d = generate(DblpConfig::tiny(5)).unwrap();
        let author = d.db.relation("Author").unwrap();
        let writes_rel = d.db.relation_id("Writes").unwrap();
        let papers_of = |aid: &str| {
            let rid = author.lookup_pk(&[Value::text(aid)]).unwrap();
            d.db.indegree_from(rid, writes_rel)
        };
        let c = papers_of(&d.planted.mohan_c);
        let a = papers_of(&d.planted.mohan_ahuja);
        let k = papers_of(&d.planted.mohan_kamat);
        assert!(c > a && a > k, "C.Mohan {c}, Ahuja {a}, Kamat {k}");
    }

    #[test]
    fn seltzer_and_sunita_share_no_paper_but_share_stonebraker() {
        let d = generate(DblpConfig::tiny(11)).unwrap();
        let writes = d.db.relation("Writes").unwrap();
        let papers_of = |aid: &str| -> HashSet<String> {
            writes
                .scan()
                .filter(|(_, t)| t.values()[0].as_text() == Some(aid))
                .map(|(_, t)| t.values()[1].as_text().unwrap().to_string())
                .collect()
        };
        let seltzer = papers_of(&d.planted.seltzer);
        let sunita = papers_of(&d.planted.sunita);
        let stone = papers_of(&d.planted.stonebraker);
        assert!(seltzer.is_disjoint(&sunita), "no direct co-authorship");
        assert!(!seltzer.is_disjoint(&stone));
        assert!(!sunita.is_disjoint(&stone));
    }

    #[test]
    fn paper_scale_hits_100k_nodes_300k_edges() {
        // Generation at full scale is fast enough for a unit test guard,
        // but keep tolerance loose: the point is the order of magnitude
        // the paper quotes (§5.2).
        let d = generate(DblpConfig::paper_scale(1)).unwrap();
        let nodes = d.db.total_tuples();
        let edges = d.db.link_count() * 2;
        assert!((90_000..=115_000).contains(&nodes), "nodes {nodes}");
        assert!((250_000..=350_000).contains(&edges), "edges {edges}");
    }

    #[test]
    fn scaled_factor_shrinks_proportionally() {
        let full = DblpConfig::paper_scale(1);
        let tenth = DblpConfig::scaled(1, 0.1);
        assert_eq!(tenth.authors, full.authors / 10);
        assert_eq!(tenth.papers, full.papers / 10);
    }
}
