//! A tiny deterministic PRNG (SplitMix64).
//!
//! The generators must be byte-for-byte reproducible across runs and
//! platforms so that the evaluation harness's "ideal answers" stay valid;
//! a self-contained SplitMix64 keeps the whole pipeline dependency-free
//! and immune to upstream algorithm changes.

/// SplitMix64 state.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // spans ≪ 2^64 and irrelevant for data generation.
        let x = self.next_u64();
        lo + ((x as u128 * span as u128) >> 64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range(3, 13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit in 1000 draws");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range(5, 5);
    }
}
