//! Name and word pools for the synthetic databases.
//!
//! The pools deliberately avoid the tokens of planted anecdote entities
//! (mohan, gray, reuter, soumen, sunita, byron, chakrabarti, sarawagi,
//! dom, stonebraker, seltzer, sudarshan, aditya) so the §5.1 anecdote
//! queries match exactly the planted tuples.

/// First names for synthetic authors/students/faculty.
pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Benjamin", "Carla", "Daniel", "Elena", "Felix", "Grace", "Hector", "Irene", "Jorge",
    "Katrin", "Liam", "Mona", "Nikhil", "Olga", "Pavel", "Qing", "Rachel", "Stefan", "Tara",
    "Umberto", "Vera", "Walter", "Ximena", "Yusuf", "Zelda", "Anders", "Bridget", "Cesar", "Delia",
    "Edwin", "Farah", "Gunnar", "Hilda", "Ivan", "Jasmine", "Kenji", "Lucia", "Marcus", "Nadia",
    "Oscar", "Priya", "Quentin", "Rosa", "Sergei", "Tomas", "Ursula", "Viktor", "Wanda", "Xavier",
    "Yvonne", "Zachary", "Amara", "Boris", "Celine", "Dmitri", "Esther", "Fabio", "Greta",
    "Hassan",
];

/// Last names for synthetic authors/students/faculty.
pub const LAST_NAMES: &[&str] = &[
    "Abramov",
    "Bennett",
    "Castillo",
    "Dubois",
    "Eriksen",
    "Fischer",
    "Gallagher",
    "Hoffman",
    "Ibrahim",
    "Jankovic",
    "Kowalski",
    "Lindqvist",
    "Marchetti",
    "Novak",
    "Oliveira",
    "Petrov",
    "Quirke",
    "Rossi",
    "Schneider",
    "Takahashi",
    "Ulrich",
    "Vasquez",
    "Weber",
    "Xanthos",
    "Yamamoto",
    "Zimmerman",
    "Almeida",
    "Bergstrom",
    "Chandra",
    "Delgado",
    "Engel",
    "Fontaine",
    "Guerrero",
    "Haugen",
    "Iyer",
    "Jensen",
    "Kaplan",
    "Larsson",
    "Moreau",
    "Nielsen",
    "Okafor",
    "Pellegrini",
    "Quist",
    "Rahman",
    "Santos",
    "Tanaka",
    "Urbina",
    "Villanueva",
    "Wagner",
    "Xiang",
    "Young",
    "Zhukov",
    "Acosta",
    "Bianchi",
    "Cervantes",
    "Dietrich",
    "Espinoza",
    "Fjeld",
    "Gruber",
    "Horvath",
    "Ishikawa",
    "Joshi",
    "Klein",
    "Lombardi",
    "Mathur",
    "Nakamura",
    "Ostrowski",
    "Pires",
    "Quinn",
    "Rivera",
    "Sorensen",
    "Thorne",
    "Udell",
    "Varga",
    "Winter",
    "Xylander",
    "Yilmaz",
    "Zapata",
];

/// Topic words for synthetic paper/thesis titles.
pub const TITLE_WORDS: &[&str] = &[
    "adaptive",
    "aggregation",
    "algebra",
    "algorithms",
    "analysis",
    "approximate",
    "architecture",
    "association",
    "benchmarking",
    "buffering",
    "caching",
    "classification",
    "clustering",
    "compression",
    "concurrency",
    "consistency",
    "constraints",
    "cost",
    "cube",
    "data",
    "database",
    "decision",
    "declarative",
    "deductive",
    "dependencies",
    "design",
    "detection",
    "discovery",
    "distributed",
    "dynamic",
    "efficient",
    "estimation",
    "evaluation",
    "execution",
    "extraction",
    "federated",
    "filtering",
    "framework",
    "frequent",
    "functional",
    "graphs",
    "heterogeneous",
    "hierarchical",
    "incremental",
    "indexing",
    "inference",
    "integration",
    "interactive",
    "itemsets",
    "joins",
    "knowledge",
    "language",
    "learning",
    "locking",
    "logging",
    "maintenance",
    "materialized",
    "measurement",
    "mediators",
    "memory",
    "mining",
    "model",
    "monitoring",
    "multimedia",
    "networks",
    "normalization",
    "object",
    "online",
    "optimization",
    "parallel",
    "partitioning",
    "patterns",
    "performance",
    "persistent",
    "planning",
    "prediction",
    "processing",
    "protocols",
    "quality",
    "queries",
    "query",
    "ranking",
    "recovery",
    "relational",
    "replication",
    "retrieval",
    "rules",
    "sampling",
    "scalable",
    "scheduling",
    "schema",
    "search",
    "semantics",
    "semistructured",
    "sequences",
    "serializability",
    "similarity",
    "spatial",
    "statistics",
    "storage",
    "streams",
    "structures",
    "summarization",
    "systems",
    "techniques",
    "temporal",
    "transaction",
    "transformation",
    "trees",
    "tuning",
    "verification",
    "views",
    "visualization",
    "warehousing",
    "workflow",
    "workloads",
];

/// Department names for the thesis database (the planted "Computer Science
/// and Engineering" department is added separately by the generator).
pub const DEPARTMENTS: &[&str] = &[
    "Electrical Power Systems",
    "Mechanical Design",
    "Civil Structures",
    "Chemical Processes",
    "Aerospace Propulsion",
    "Metallurgy and Materials",
    "Industrial Management",
    "Applied Mathematics",
    "Physics of Semiconductors",
    "Environmental Sciences",
];

/// Degree programs for the thesis database.
pub const PROGRAMS: &[&str] = &["MTech", "PhD", "Dual Degree", "MS by Research"];

/// Part-name words for the TPC-D-style catalog.
pub const PART_WORDS: &[&str] = &[
    "anodized",
    "brushed",
    "burnished",
    "chocolate",
    "cornflower",
    "forest",
    "frosted",
    "lavender",
    "metallic",
    "midnight",
    "navajo",
    "polished",
    "powder",
    "rosy",
    "spring",
    "steel",
    "thistle",
    "turquoise",
];

/// Part-kind words for the TPC-D-style catalog.
pub const PART_KINDS: &[&str] = &[
    "bearing", "bolt", "bracket", "casing", "coupling", "flange", "gasket", "gear", "housing",
    "pin", "pulley", "rivet", "rotor", "shaft", "spring", "valve", "washer", "widget",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens reserved for planted anecdote entities must never appear in
    /// the random pools, or anecdote queries would match noise tuples.
    #[test]
    fn pools_avoid_planted_tokens() {
        let reserved = [
            "mohan",
            "ahuja",
            "kamat",
            "gray",
            "reuter",
            "soumen",
            "sunita",
            "byron",
            "chakrabarti",
            "sarawagi",
            "stonebraker",
            "seltzer",
            "sudarshan",
            "aditya",
            "surprising",
        ];
        let pools: Vec<&str> = FIRST_NAMES
            .iter()
            .chain(LAST_NAMES)
            .chain(TITLE_WORDS)
            .chain(DEPARTMENTS)
            .chain(PROGRAMS)
            .chain(PART_WORDS)
            .chain(PART_KINDS)
            .copied()
            .collect();
        for word in pools {
            let lower = word.to_lowercase();
            for r in reserved {
                assert!(
                    !lower.contains(r),
                    "pool word `{word}` collides with planted token `{r}`"
                );
            }
        }
    }

    #[test]
    fn pools_are_nonempty_and_unique() {
        fn assert_unique(pool: &[&str]) {
            let mut sorted: Vec<_> = pool.to_vec();
            sorted.sort();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(before, sorted.len());
            assert!(!pool.is_empty());
        }
        assert_unique(FIRST_NAMES);
        assert_unique(LAST_NAMES);
        assert_unique(TITLE_WORDS);
        assert_unique(DEPARTMENTS);
        assert_unique(PROGRAMS);
        assert_unique(PART_WORDS);
        assert_unique(PART_KINDS);
    }
}
