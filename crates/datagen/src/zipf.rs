//! Zipf-distributed sampling.
//!
//! Real bibliographic data is heavy-tailed: a few authors write very many
//! papers and a few papers collect very many citations. The paper's
//! prestige mechanism (§2.2) and hub discussion (§2.1) only matter on such
//! skewed data, so the synthetic DBLP draws author and citation choices
//! from Zipf distributions.

use crate::rng::Rng;

/// A Zipf(n, s) sampler over ranks `0..n` (rank 0 most popular), using a
/// precomputed cumulative table and binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite, ≥ 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.next_f64() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Expected probability of rank `k` (for tests).
    pub fn probability(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn samples_match_expected_head_mass() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Rng::new(11);
        let n = 20_000;
        let head_expected: f64 = (0..5).map(|k| z.probability(k)).sum();
        let mut head = 0usize;
        for _ in 0..n {
            if z.sample(&mut rng) < 5 {
                head += 1;
            }
        }
        let observed = head as f64 / n as f64;
        assert!(
            (observed - head_expected).abs() < 0.02,
            "observed {observed:.3}, expected {head_expected:.3}"
        );
    }

    #[test]
    fn sample_in_range() {
        let z = Zipf::new(7, 1.5);
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng::new(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.probability(0), 1.0);
    }
}
