//! Synthetic thesis database.
//!
//! Models the paper's second dataset: "information about Masters and Phd
//! dissertations in IIT Bombay, and its graph had thousands of nodes and
//! tens of thousands of edges" (§5). Schema: Department, Program, Faculty,
//! Student, Thesis; a thesis references its student author and its faculty
//! advisor, while students and faculty reference their department.
//!
//! Planted entities reproduce the §5.1 anecdotes:
//!
//! * the "Computer Science and Engineering" department, with more faculty
//!   and students than any other department, so that the query
//!   "computer engineering" ranks the department above theses whose titles
//!   merely contain the two words;
//! * faculty "S. Sudarshan" and student "B. Aditya" with a thesis advised
//!   by Sudarshan — the "sudarshan aditya" anecdote.

use crate::names::{DEPARTMENTS, FIRST_NAMES, LAST_NAMES, PROGRAMS, TITLE_WORDS};
use crate::rng::Rng;
use banks_storage::{ColumnType, Database, RelationSchema, StorageResult, Value};

/// Size knobs for the thesis database.
#[derive(Debug, Clone, PartialEq)]
pub struct ThesisConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Synthetic departments (the CSE department comes on top).
    pub departments: usize,
    /// Faculty members.
    pub faculty: usize,
    /// Students.
    pub students: usize,
    /// Theses (each by a distinct student).
    pub theses: usize,
    /// Fraction of everything assigned to the planted CSE department.
    pub cse_share: f64,
}

impl ThesisConfig {
    /// Unit-test scale (hundreds of tuples).
    pub fn tiny(seed: u64) -> ThesisConfig {
        ThesisConfig {
            seed,
            departments: 4,
            faculty: 20,
            students: 80,
            theses: 60,
            cse_share: 0.4,
        }
    }

    /// The paper's scale: "thousands of nodes and tens of thousands of
    /// edges".
    pub fn paper_scale(seed: u64) -> ThesisConfig {
        ThesisConfig {
            seed,
            departments: 10,
            faculty: 250,
            students: 2_000,
            theses: 1_600,
            cse_share: 0.3,
        }
    }
}

/// Planted entity ids for the thesis anecdotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThesisPlanted {
    /// Department id of "Computer Science and Engineering".
    pub cse_dept: String,
    /// Faculty id of S. Sudarshan.
    pub sudarshan: String,
    /// Student id of B. Aditya.
    pub aditya: String,
    /// Thesis id of Aditya's thesis (advised by Sudarshan).
    pub aditya_thesis: String,
}

/// A generated thesis database plus planted ground truth.
#[derive(Debug, Clone)]
pub struct ThesisDataset {
    /// The relational database.
    pub db: Database,
    /// Planted ids.
    pub planted: ThesisPlanted,
    /// Config used.
    pub config: ThesisConfig,
}

/// Create the thesis schema in a fresh database.
pub fn thesis_schema() -> StorageResult<Database> {
    let mut db = Database::new("thesis");
    db.create_relation(
        RelationSchema::builder("Department")
            .column("DeptId", ColumnType::Text)
            .column("DeptName", ColumnType::Text)
            .primary_key(&["DeptId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Program")
            .column("ProgramId", ColumnType::Text)
            .column("ProgramName", ColumnType::Text)
            .primary_key(&["ProgramId"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Faculty")
            .column("FacultyId", ColumnType::Text)
            .column("FacultyName", ColumnType::Text)
            .column("DeptId", ColumnType::Text)
            .primary_key(&["FacultyId"])
            .foreign_key(&["DeptId"], "Department")
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Student")
            .column("RollNo", ColumnType::Text)
            .column("StudentName", ColumnType::Text)
            .column("DeptId", ColumnType::Text)
            .column("ProgramId", ColumnType::Text)
            .primary_key(&["RollNo"])
            .foreign_key(&["DeptId"], "Department")
            .foreign_key(&["ProgramId"], "Program")
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Thesis")
            .column("ThesisId", ColumnType::Text)
            .column("Title", ColumnType::Text)
            .column("RollNo", ColumnType::Text)
            .column("Advisor", ColumnType::Text)
            .primary_key(&["ThesisId"])
            .foreign_key(&["RollNo"], "Student")
            .foreign_key(&["Advisor"], "Faculty")
            .build()?,
    )?;
    Ok(db)
}

/// Generate a full thesis dataset.
pub fn generate(config: ThesisConfig) -> StorageResult<ThesisDataset> {
    let mut rng = Rng::new(config.seed);
    let mut db = thesis_schema()?;

    // Departments: planted CSE first, then synthetic ones.
    let cse = "DEPTCSE".to_string();
    db.insert(
        "Department",
        vec![
            Value::text(&cse),
            Value::text("Computer Science and Engineering"),
        ],
    )?;
    let mut dept_ids = vec![cse.clone()];
    for i in 0..config.departments.saturating_sub(1) {
        let id = format!("DEPT{i:02}");
        db.insert(
            "Department",
            vec![
                Value::text(&id),
                Value::text(DEPARTMENTS[i % DEPARTMENTS.len()]),
            ],
        )?;
        dept_ids.push(id);
    }

    // Programs.
    let mut program_ids = Vec::new();
    for (i, name) in PROGRAMS.iter().enumerate() {
        let id = format!("PROG{i}");
        db.insert("Program", vec![Value::text(&id), Value::text(*name)])?;
        program_ids.push(id);
    }

    // The CSE department absorbs `cse_share` of faculty and students,
    // making it the hub the "computer engineering" anecdote needs.
    let pick_dept = |rng: &mut Rng| -> String {
        if rng.chance(config.cse_share) {
            dept_ids[0].clone()
        } else {
            dept_ids[rng.range(0, dept_ids.len())].clone()
        }
    };

    // Faculty (Sudarshan planted first, in CSE).
    let sudarshan = "FACSUDARSHAN".to_string();
    db.insert(
        "Faculty",
        vec![
            Value::text(&sudarshan),
            Value::text("S. Sudarshan"),
            Value::text(&cse),
        ],
    )?;
    let mut faculty_ids = vec![sudarshan.clone()];
    for i in 0..config.faculty.saturating_sub(1) {
        let id = format!("FAC{i:04}");
        let name = format!("{} {}", rng.pick(FIRST_NAMES), rng.pick(LAST_NAMES));
        let dept = pick_dept(&mut rng);
        db.insert(
            "Faculty",
            vec![Value::text(&id), Value::text(name), Value::text(dept)],
        )?;
        faculty_ids.push(id);
    }

    // Students (Aditya planted first, in CSE).
    let aditya = "ROLLADITYA".to_string();
    db.insert(
        "Student",
        vec![
            Value::text(&aditya),
            Value::text("B. Aditya"),
            Value::text(&cse),
            Value::text(&program_ids[1 % program_ids.len()]),
        ],
    )?;
    let mut student_ids = vec![aditya.clone()];
    for i in 0..config.students.saturating_sub(1) {
        let id = format!("ROLL{i:05}");
        let name = format!("{} {}", rng.pick(FIRST_NAMES), rng.pick(LAST_NAMES));
        let dept = pick_dept(&mut rng);
        let program = program_ids[rng.range(0, program_ids.len())].clone();
        db.insert(
            "Student",
            vec![
                Value::text(&id),
                Value::text(name),
                Value::text(dept),
                Value::text(program),
            ],
        )?;
        student_ids.push(id);
    }

    // Theses: Aditya's planted thesis first, then synthetic ones by
    // distinct students. ~8% of titles contain "computer" or
    // "engineering" so the anecdote query has title-only competitors.
    let aditya_thesis = "THADITYA".to_string();
    db.insert(
        "Thesis",
        vec![
            Value::text(&aditya_thesis),
            Value::text("Resource Scheduling for Database Query Processing"),
            Value::text(&aditya),
            Value::text(&sudarshan),
        ],
    )?;
    let count = config.theses.min(student_ids.len() - 1);
    for i in 0..count {
        let id = format!("TH{i:05}");
        let n_words = rng.range(3, 7);
        let mut words: Vec<&str> = (0..n_words).map(|_| *rng.pick(TITLE_WORDS)).collect();
        words.dedup();
        let mut title = words.join(" ");
        if rng.chance(0.05) {
            title = format!("computer {title}");
        } else if rng.chance(0.04) {
            title = format!("{title} engineering");
        }
        let student = &student_ids[i + 1]; // skip Aditya; one thesis each
        let advisor = &faculty_ids[rng.range(0, faculty_ids.len())];
        db.insert(
            "Thesis",
            vec![
                Value::text(&id),
                Value::text(title),
                Value::text(student),
                Value::text(advisor),
            ],
        )?;
    }

    Ok(ThesisDataset {
        db,
        planted: ThesisPlanted {
            cse_dept: cse,
            sudarshan,
            aditya,
            aditya_thesis,
        },
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(ThesisConfig::tiny(1)).unwrap();
        let b = generate(ThesisConfig::tiny(1)).unwrap();
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.db.link_count(), b.db.link_count());
    }

    #[test]
    fn cse_is_the_biggest_hub() {
        let d = generate(ThesisConfig::tiny(2)).unwrap();
        let dept = d.db.relation("Department").unwrap();
        let cse_rid = dept.lookup_pk(&[Value::text(&d.planted.cse_dept)]).unwrap();
        let cse_deg = d.db.indegree(cse_rid);
        for (rid, _) in dept.scan() {
            if rid != cse_rid {
                assert!(
                    d.db.indegree(rid) < cse_deg,
                    "CSE must out-rank every other department"
                );
            }
        }
    }

    #[test]
    fn aditya_thesis_wired_to_sudarshan() {
        let d = generate(ThesisConfig::tiny(3)).unwrap();
        let thesis = d.db.relation("Thesis").unwrap();
        let rid = thesis
            .lookup_pk(&[Value::text(&d.planted.aditya_thesis)])
            .unwrap();
        let t = d.db.tuple(rid).unwrap();
        assert_eq!(t.values()[2].as_text(), Some("ROLLADITYA"));
        assert_eq!(t.values()[3].as_text(), Some("FACSUDARSHAN"));
    }

    #[test]
    fn paper_scale_in_range() {
        let d = generate(ThesisConfig::paper_scale(1)).unwrap();
        let nodes = d.db.total_tuples();
        let edges = d.db.link_count() * 2;
        assert!((3_000..=6_000).contains(&nodes), "nodes {nodes}");
        assert!((10_000..=30_000).contains(&edges), "edges {edges}");
    }

    #[test]
    fn every_thesis_has_unique_student() {
        let d = generate(ThesisConfig::tiny(4)).unwrap();
        let thesis = d.db.relation("Thesis").unwrap();
        let mut students: Vec<String> = thesis
            .scan()
            .map(|(_, t)| t.values()[2].as_text().unwrap().to_string())
            .collect();
        let before = students.len();
        students.sort();
        students.dedup();
        assert_eq!(before, students.len());
    }
}
