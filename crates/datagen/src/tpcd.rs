//! A miniature TPC-D-style order database.
//!
//! §2.1 of the paper uses TPC-D to motivate prestige: "in a TPCD database
//! storing information about parts, suppliers, customers and orders, the
//! orders information contains references to parts, suppliers and
//! customers. As a result, if a query matches two parts (or suppliers, or
//! customers) the one with more orders would get a higher prestige."
//!
//! The generator plants two parts that share the name token `widget` —
//! one referenced by many line items, one by few — so that exact scenario
//! is testable.

use crate::names::{FIRST_NAMES, LAST_NAMES, PART_KINDS, PART_WORDS};
use crate::rng::Rng;
use crate::zipf::Zipf;
use banks_storage::{ColumnType, Database, RelationSchema, StorageResult, Value};

/// Size knobs for the TPC-D-style database.
#[derive(Debug, Clone, PartialEq)]
pub struct TpcdConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Part count.
    pub parts: usize,
    /// Supplier count.
    pub suppliers: usize,
    /// Customer count.
    pub customers: usize,
    /// Order count.
    pub orders: usize,
    /// Line items per order (upper bound; ≥ 1).
    pub max_lines: usize,
}

impl TpcdConfig {
    /// Unit-test scale.
    pub fn tiny(seed: u64) -> TpcdConfig {
        TpcdConfig {
            seed,
            parts: 40,
            suppliers: 12,
            customers: 30,
            orders: 120,
            max_lines: 4,
        }
    }
}

/// Planted ids for the prestige scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpcdPlanted {
    /// The `widget` part with many orders.
    pub popular_widget: String,
    /// The `widget` part with few orders.
    pub obscure_widget: String,
}

/// A generated database plus planted ground truth.
#[derive(Debug, Clone)]
pub struct TpcdDataset {
    /// The relational database.
    pub db: Database,
    /// Planted ids.
    pub planted: TpcdPlanted,
    /// Config used.
    pub config: TpcdConfig,
}

/// Create the schema in a fresh database.
pub fn tpcd_schema() -> StorageResult<Database> {
    let mut db = Database::new("tpcd");
    db.create_relation(
        RelationSchema::builder("Part")
            .column("PartKey", ColumnType::Text)
            .column("PartName", ColumnType::Text)
            .primary_key(&["PartKey"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Supplier")
            .column("SuppKey", ColumnType::Text)
            .column("SuppName", ColumnType::Text)
            .primary_key(&["SuppKey"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Customer")
            .column("CustKey", ColumnType::Text)
            .column("CustName", ColumnType::Text)
            .primary_key(&["CustKey"])
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("Orders")
            .column("OrderKey", ColumnType::Text)
            .column("CustKey", ColumnType::Text)
            .column("TotalPrice", ColumnType::Float)
            .primary_key(&["OrderKey"])
            .foreign_key(&["CustKey"], "Customer")
            .build()?,
    )?;
    db.create_relation(
        RelationSchema::builder("LineItem")
            .column("OrderKey", ColumnType::Text)
            .column("LineNo", ColumnType::Int)
            .column("PartKey", ColumnType::Text)
            .column("SuppKey", ColumnType::Text)
            .column("Quantity", ColumnType::Int)
            .primary_key(&["OrderKey", "LineNo"])
            .foreign_key(&["OrderKey"], "Orders")
            .foreign_key(&["PartKey"], "Part")
            .foreign_key(&["SuppKey"], "Supplier")
            .build()?,
    )?;
    Ok(db)
}

/// Generate a full dataset.
pub fn generate(config: TpcdConfig) -> StorageResult<TpcdDataset> {
    let mut rng = Rng::new(config.seed);
    let mut db = tpcd_schema()?;

    // Planted widgets first: the popular one is part rank 0 (most likely
    // to be ordered under the Zipf draw), the obscure one is the last rank.
    let popular = "PARTPOPW".to_string();
    let obscure = "PARTOBSW".to_string();
    db.insert(
        "Part",
        vec![Value::text(&popular), Value::text("anodized steel widget")],
    )?;
    let mut part_ids = vec![popular.clone()];
    for i in 0..config.parts.saturating_sub(2) {
        let id = format!("PART{i:04}");
        let name = format!(
            "{} {} {}",
            PART_WORDS[i % PART_WORDS.len()],
            rng.pick(PART_WORDS),
            PART_KINDS[i % (PART_KINDS.len() - 1)] // skip "widget"
        );
        db.insert("Part", vec![Value::text(&id), Value::text(name)])?;
        part_ids.push(id);
    }
    db.insert(
        "Part",
        vec![Value::text(&obscure), Value::text("frosted brass widget")],
    )?;
    part_ids.push(obscure.clone());

    let mut supplier_ids = Vec::with_capacity(config.suppliers);
    for i in 0..config.suppliers {
        let id = format!("SUPP{i:03}");
        let name = format!("{} {} Supply", rng.pick(FIRST_NAMES), rng.pick(LAST_NAMES));
        db.insert("Supplier", vec![Value::text(&id), Value::text(name)])?;
        supplier_ids.push(id);
    }

    let mut customer_ids = Vec::with_capacity(config.customers);
    for i in 0..config.customers {
        let id = format!("CUST{i:04}");
        let name = format!("{} {}", rng.pick(FIRST_NAMES), rng.pick(LAST_NAMES));
        db.insert("Customer", vec![Value::text(&id), Value::text(name)])?;
        customer_ids.push(id);
    }

    // Orders + line items; parts drawn Zipf by rank, so the popular widget
    // (rank 0) accumulates line items while the obscure one (last rank)
    // gets almost none.
    let part_zipf = Zipf::new(part_ids.len(), 1.0);
    for o in 0..config.orders {
        let order_id = format!("ORD{o:05}");
        let customer = rng.pick(&customer_ids).clone();
        let price = 50.0 + rng.next_f64() * 950.0;
        db.insert(
            "Orders",
            vec![
                Value::text(&order_id),
                Value::text(customer),
                Value::Float((price * 100.0).round() / 100.0),
            ],
        )?;
        let lines = rng.range(1, config.max_lines.max(2));
        for line in 0..lines {
            let part = &part_ids[part_zipf.sample(&mut rng)];
            let supplier = rng.pick(&supplier_ids).clone();
            db.insert(
                "LineItem",
                vec![
                    Value::text(&order_id),
                    Value::Int(line as i64),
                    Value::text(part),
                    Value::text(supplier),
                    Value::Int(rng.range(1, 50) as i64),
                ],
            )?;
        }
    }

    Ok(TpcdDataset {
        db,
        planted: TpcdPlanted {
            popular_widget: popular,
            obscure_widget: obscure,
        },
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(TpcdConfig::tiny(1)).unwrap();
        let b = generate(TpcdConfig::tiny(1)).unwrap();
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.db.link_count(), b.db.link_count());
    }

    #[test]
    fn popular_widget_has_more_orders() {
        let d = generate(TpcdConfig::tiny(2)).unwrap();
        let part = d.db.relation("Part").unwrap();
        let pop = part
            .lookup_pk(&[Value::text(&d.planted.popular_widget)])
            .unwrap();
        let obs = part
            .lookup_pk(&[Value::text(&d.planted.obscure_widget)])
            .unwrap();
        assert!(
            d.db.indegree(pop) > d.db.indegree(obs) + 3,
            "popular {} vs obscure {}",
            d.db.indegree(pop),
            d.db.indegree(obs)
        );
    }

    #[test]
    fn all_relations_populated() {
        let d = generate(TpcdConfig::tiny(3)).unwrap();
        for table in d.db.relations() {
            assert!(!table.is_empty(), "{} empty", table.schema().name);
        }
    }

    #[test]
    fn both_widgets_share_the_token() {
        let d = generate(TpcdConfig::tiny(4)).unwrap();
        let part = d.db.relation("Part").unwrap();
        let name_of = |key: &str| {
            let rid = part.lookup_pk(&[Value::text(key)]).unwrap();
            d.db.tuple(rid).unwrap().values()[1]
                .as_text()
                .unwrap()
                .to_string()
        };
        assert!(name_of(&d.planted.popular_widget).contains("widget"));
        assert!(name_of(&d.planted.obscure_widget).contains("widget"));
    }
}
