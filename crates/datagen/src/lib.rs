//! # banks-datagen
//!
//! Deterministic synthetic datasets for the BANKS reproduction.
//!
//! The original evaluation (§5) used two private datasets: a DBLP extract
//! (~100K graph nodes / ~300K edges) and the IIT-Bombay thesis database
//! (thousands of nodes / tens of thousands of edges), plus a TPC-D example
//! in the §2.1 motivation. None are redistributable, so this crate
//! regenerates structurally equivalent corpora:
//!
//! * [`dblp`] — Author/Paper/Writes/Cites with Zipf-skewed authorship,
//!   preferential-attachment citations, and *planted* entities for every
//!   §5.1 anecdote ("Mohan", "transaction", "soumen sunita",
//!   "seltzer sunita");
//! * [`thesis`] — Department/Program/Faculty/Student/Thesis with the
//!   planted CSE-department hub and the Sudarshan→Aditya advisor pair;
//! * [`tpcd`] — Part/Supplier/Customer/Orders/LineItem with a popular and
//!   an obscure "widget" part for the prestige example;
//! * [`stream`] — DBLP-shaped corpora of an *exact* total tuple count,
//!   written as shard files straight to disk with O(1) memory, for the
//!   out-of-core storage tests (`--tuples N` on the CLI).
//!
//! Everything is seeded ([`rng::Rng`] is a local SplitMix64) so evaluation
//! results are reproducible bit-for-bit.

pub mod dblp;
pub mod names;
pub mod rng;
pub mod stream;
pub mod thesis;
pub mod tpcd;
pub mod zipf;

pub use dblp::{DblpConfig, DblpDataset, DblpPlanted};
pub use stream::{StreamConfig, StreamCounts, StreamManifest};
pub use thesis::{ThesisConfig, ThesisDataset, ThesisPlanted};
pub use tpcd::{TpcdConfig, TpcdDataset, TpcdPlanted};
