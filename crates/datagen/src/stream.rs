//! Streaming DBLP-shaped corpus generation for out-of-core testing.
//!
//! [`dblp::generate`](crate::dblp::generate) builds the whole database in
//! memory, which caps it at what the build host can hold. The out-of-core
//! storage engine needs the opposite: corpora whose *decoded* size exceeds
//! the serving budget, produced on CI runners with ordinary RAM. This
//! module generates such corpora as **shard files written straight to
//! disk** — peak memory is one write buffer, independent of `--tuples N`.
//!
//! The trick is index-derived rows: every tuple is a pure function of
//! `(seed, table, row index)`, so the generator never holds cross-row
//! state (no id vectors, no dedup sets). Primary-key uniqueness is by
//! construction instead of by rejection:
//!
//! * `Writes` row `j` links paper `1 + j % (papers-1)` to the `k`-th
//!   author of that paper (`k = j / (papers-1)`), where a paper's author
//!   list is the arithmetic run `base(p) + k` through the synthetic
//!   author range — distinct by construction, skewed by drawing `base`
//!   from a quadratic ramp toward low indices.
//! * `Cites` row `i` makes paper `1 + i % (papers-1)` cite its `k`-th
//!   reference, the run `base'(p) + k` through the *other* synthetic
//!   papers (a `papers-2`-sized range remapped around the citing paper,
//!   so self-citations are impossible, again skew via the ramp base).
//!
//! Three planted authors (Soumen Chakrabarti, Sunita Sarawagi, C. Mohan)
//! and their co-authored paper occupy the first rows of their tables, so
//! the paper's §5.1 anecdote queries return stable, non-empty answers at
//! every scale — the memory-budget smoke job fingerprints those.
//!
//! On disk a corpus is a directory: `MANIFEST` (key=value header) plus
//! `shard-NNNNN.tsv` files of `Table\tvalue\tvalue` lines in deterministic
//! order. [`build_database`] streams the shards back into a
//! [`Database`]; [`for_each_row`] exposes the raw stream for consumers
//! that want to batch rows themselves.

use crate::names::{FIRST_NAMES, LAST_NAMES, TITLE_WORDS};
use crate::rng::Rng;
use banks_storage::{Database, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Manifest file name inside a stream-corpus directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// First line of a valid manifest.
pub const MANIFEST_MAGIC: &str = "banks-stream v1";
/// Default rows per shard file.
pub const DEFAULT_SHARD_TUPLES: u64 = 250_000;
/// Smallest total the proportional split supports.
pub const MIN_TUPLES: u64 = 64;

/// Size knobs for the streaming generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// PRNG seed; equal seeds give byte-identical shard files.
    pub seed: u64,
    /// Exact total tuple count across all four tables.
    pub tuples: u64,
    /// Rows per shard file (the last shard may be short).
    pub shard_tuples: u64,
}

impl StreamConfig {
    /// Config with the default shard size.
    pub fn new(seed: u64, tuples: u64) -> StreamConfig {
        StreamConfig {
            seed,
            tuples,
            shard_tuples: DEFAULT_SHARD_TUPLES,
        }
    }
}

/// Per-table row counts derived from a total. They always sum to the
/// requested total; `Writes` absorbs the rounding remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCounts {
    /// `Author` rows (first three are the planted anecdote authors).
    pub authors: u64,
    /// `Paper` rows (the first is the planted co-authored paper).
    pub papers: u64,
    /// `Writes` rows (the first two link the planted pair to paper 0).
    pub writes: u64,
    /// `Cites` rows.
    pub cites: u64,
}

impl StreamCounts {
    /// Split a total into the paper-scale table proportions
    /// (roughly 8% authors, 18% papers, 44% writes, 30% cites).
    pub fn for_tuples(tuples: u64) -> Result<StreamCounts, String> {
        if tuples < MIN_TUPLES {
            return Err(format!(
                "--tuples must be at least {MIN_TUPLES}, got {tuples}"
            ));
        }
        let authors = (tuples * 8 / 100).max(8);
        let papers = (tuples * 18 / 100).max(8);
        let cites = (tuples * 30 / 100).max(4);
        let writes = tuples - authors - papers - cites;
        let counts = StreamCounts {
            authors,
            papers,
            writes,
            cites,
        };
        // The arithmetic-run construction needs k to stay inside the
        // ranges it walks; at the fixed proportions k maxes out near 3,
        // but guard explicitly so hand-built configs fail loudly.
        if counts.writes / (counts.papers - 1) >= counts.authors - PLANTED_AUTHORS {
            return Err("writes-per-paper exceeds the author pool".into());
        }
        if counts.cites / (counts.papers - 1) >= counts.papers - 2 {
            return Err("cites-per-paper exceeds the paper pool".into());
        }
        Ok(counts)
    }

    /// Total rows across all tables.
    pub fn total(&self) -> u64 {
        self.authors + self.papers + self.writes + self.cites
    }
}

/// What `generate_to_dir` wrote (and `read_manifest` reads back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamManifest {
    /// Generation knobs.
    pub config: StreamConfig,
    /// Derived per-table counts.
    pub counts: StreamCounts,
    /// Number of shard files.
    pub shards: u64,
}

impl StreamManifest {
    /// Path of shard `i` under `dir`.
    pub fn shard_path(&self, dir: &Path, shard: u64) -> PathBuf {
        dir.join(format!("shard-{shard:05}.tsv"))
    }
}

const PLANTED_AUTHORS: u64 = 3;
const PLANTED_WRITES: u64 = 2;

/// Per-row deterministic PRNG: the SplitMix64 finalizer inside
/// [`Rng::next_u64`] decorrelates the structured key.
fn row_rng(seed: u64, table: u8, index: u64) -> Rng {
    Rng::new(
        seed ^ (table as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9),
    )
}

/// Quadratic ramp toward 0: a cheap stand-in for Zipf skew that keeps
/// popular authors/papers concentrated at low indices.
fn skewed_base(rng: &mut Rng, count: u64) -> u64 {
    let u = rng.next_f64();
    ((count as f64) * u * u) as u64
}

/// `Author` row `i` as `(AuthorId, AuthorName)`.
pub fn author_row(seed: u64, i: u64) -> (String, String) {
    match i {
        0 => ("SoumenC".into(), "Soumen Chakrabarti".into()),
        1 => ("SunitaS".into(), "Sunita Sarawagi".into()),
        2 => ("MohanC".into(), "C. Mohan".into()),
        _ => {
            let mut rng = row_rng(seed, b'A', i);
            let name = format!(
                "{} {}",
                rng.pick(FIRST_NAMES),
                LAST_NAMES[(i % LAST_NAMES.len() as u64) as usize]
            );
            (format!("A{i:07}"), name)
        }
    }
}

/// `Paper` row `i` as `(PaperId, PaperName)`.
pub fn paper_row(seed: u64, i: u64) -> (String, String) {
    if i == 0 {
        return (
            "ChakrabartiSD98".into(),
            "Enhanced Hypertext Categorization Using Hyperlinks".into(),
        );
    }
    let mut rng = row_rng(seed, b'P', i);
    let n_words = rng.range(3, 8);
    let mut words: Vec<&str> = (0..n_words).map(|_| *rng.pick(TITLE_WORDS)).collect();
    words.dedup();
    let mut title = words.join(" ");
    if rng.chance(0.10) {
        title.push_str(&format!(" {}", 1975 + rng.range(0, 26)));
    }
    (format!("P{i:07}"), title)
}

/// `Writes` row `j` as `(AuthorId, PaperId)`.
pub fn writes_row(seed: u64, counts: &StreamCounts, j: u64) -> (String, String) {
    if j == 0 {
        return ("SoumenC".into(), "ChakrabartiSD98".into());
    }
    if j == 1 {
        return ("SunitaS".into(), "ChakrabartiSD98".into());
    }
    let synth = j - PLANTED_WRITES;
    let paper = 1 + synth % (counts.papers - 1);
    let k = synth / (counts.papers - 1);
    let pool = counts.authors - PLANTED_AUTHORS;
    let mut rng = row_rng(seed, b'W', paper);
    let author = PLANTED_AUTHORS + (skewed_base(&mut rng, pool) + k) % pool;
    (author_row(seed, author).0, paper_row(seed, paper).0)
}

/// `Cites` row `i` as `(Citing, Cited)`.
pub fn cites_row(seed: u64, counts: &StreamCounts, i: u64) -> (String, String) {
    let citing = 1 + i % (counts.papers - 1);
    let k = i / (counts.papers - 1);
    // Walk a run through the other synthetic papers: a range of size
    // papers-2 remapped around `citing` so self-citation is impossible.
    let pool = counts.papers - 2;
    let mut rng = row_rng(seed, b'C', citing);
    let m = (skewed_base(&mut rng, pool) + k) % pool;
    let cited = if m >= citing - 1 { m + 2 } else { m + 1 };
    (paper_row(seed, citing).0, paper_row(seed, cited).0)
}

/// Global row `i` (over the concatenated table order Author, Paper,
/// Writes, Cites) as `(table, column 0, column 1)`.
pub fn global_row(seed: u64, counts: &StreamCounts, i: u64) -> (&'static str, String, String) {
    let mut at = i;
    if at < counts.authors {
        let (a, b) = author_row(seed, at);
        return ("Author", a, b);
    }
    at -= counts.authors;
    if at < counts.papers {
        let (a, b) = paper_row(seed, at);
        return ("Paper", a, b);
    }
    at -= counts.papers;
    if at < counts.writes {
        let (a, b) = writes_row(seed, counts, at);
        return ("Writes", a, b);
    }
    at -= counts.writes;
    let (a, b) = cites_row(seed, counts, at);
    ("Cites", a, b)
}

/// Generate the corpus into `dir` (created if missing), writing shard
/// files and the manifest. Peak memory is one `BufWriter`, regardless of
/// `config.tuples`.
pub fn generate_to_dir(config: &StreamConfig, dir: &Path) -> Result<StreamManifest, String> {
    if config.shard_tuples == 0 {
        return Err("shard_tuples must be positive".into());
    }
    let counts = StreamCounts::for_tuples(config.tuples)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let shards = config.tuples.div_ceil(config.shard_tuples);
    let manifest = StreamManifest {
        config: config.clone(),
        counts,
        shards,
    };

    let mut row = 0u64;
    for shard in 0..shards {
        let path = manifest.shard_path(dir, shard);
        let file =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let mut out = BufWriter::new(file);
        let end = ((shard + 1) * config.shard_tuples).min(config.tuples);
        while row < end {
            let (table, a, b) = global_row(config.seed, &counts, row);
            writeln!(out, "{table}\t{a}\t{b}")
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            row += 1;
        }
        out.flush()
            .map_err(|e| format!("flush {}: {e}", path.display()))?;
    }

    let mut text = String::new();
    text.push_str(MANIFEST_MAGIC);
    text.push('\n');
    for (key, value) in [
        ("seed", config.seed),
        ("tuples", config.tuples),
        ("shard_tuples", config.shard_tuples),
        ("authors", counts.authors),
        ("papers", counts.papers),
        ("writes", counts.writes),
        ("cites", counts.cites),
        ("shards", shards),
    ] {
        text.push_str(&format!("{key}={value}\n"));
    }
    std::fs::write(dir.join(MANIFEST_FILE), text).map_err(|e| format!("write manifest: {e}"))?;
    Ok(manifest)
}

/// True if `path` looks like a stream-corpus directory (has a manifest
/// starting with the magic line).
pub fn is_stream_dir(path: &Path) -> bool {
    std::fs::read_to_string(path.join(MANIFEST_FILE))
        .map(|text| text.starts_with(MANIFEST_MAGIC))
        .unwrap_or(false)
}

/// Read and validate the manifest of a stream-corpus directory.
pub fn read_manifest(dir: &Path) -> Result<StreamManifest, String> {
    let path = dir.join(MANIFEST_FILE);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(format!("{}: not a banks-stream manifest", path.display()));
    }
    let mut get = |key: &str| -> Result<u64, String> {
        lines
            .next()
            .and_then(|line| line.strip_prefix(key))
            .and_then(|rest| rest.strip_prefix('='))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{}: missing or malformed `{key}`", path.display()))
    };
    let config = StreamConfig {
        seed: get("seed")?,
        tuples: get("tuples")?,
        shard_tuples: get("shard_tuples")?,
    };
    let counts = StreamCounts {
        authors: get("authors")?,
        papers: get("papers")?,
        writes: get("writes")?,
        cites: get("cites")?,
    };
    let shards = get("shards")?;
    if counts.total() != config.tuples {
        return Err(format!("{}: counts do not sum to tuples", path.display()));
    }
    Ok(StreamManifest {
        config,
        counts,
        shards,
    })
}

/// Stream every row of the corpus under `dir`, one shard at a time, in
/// generation order. The callback gets `(table, column 0, column 1)`.
pub fn for_each_row<F>(dir: &Path, manifest: &StreamManifest, mut f: F) -> Result<(), String>
where
    F: FnMut(&str, &str, &str) -> Result<(), String>,
{
    let mut rows = 0u64;
    for shard in 0..manifest.shards {
        let path = manifest.shard_path(dir, shard);
        let file =
            std::fs::File::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(table), Some(a), Some(b)) => f(table, a, b)?,
                _ => return Err(format!("{}: malformed row `{line}`", path.display())),
            }
            rows += 1;
        }
    }
    if rows != manifest.config.tuples {
        return Err(format!(
            "{}: shards hold {rows} rows, manifest says {}",
            dir.display(),
            manifest.config.tuples
        ));
    }
    Ok(())
}

/// Load a stream corpus into a fresh Fig. 1 database by replaying its
/// shards one at a time.
pub fn build_database(dir: &Path) -> Result<Database, String> {
    let manifest = read_manifest(dir)?;
    let mut db = crate::dblp::dblp_schema().map_err(|e| e.to_string())?;
    for_each_row(dir, &manifest, |table, a, b| {
        db.insert(table, vec![Value::text(a), Value::text(b)])
            .map(|_| ())
            .map_err(|e| format!("insert into {table}: {e}"))
    })?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "banks_stream_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn counts_sum_exactly_and_tiny_totals_are_rejected() {
        for tuples in [MIN_TUPLES, 100, 12_345, 1_000_000] {
            let counts = StreamCounts::for_tuples(tuples).unwrap();
            assert_eq!(counts.total(), tuples, "total {tuples}");
        }
        assert!(StreamCounts::for_tuples(MIN_TUPLES - 1).is_err());
    }

    #[test]
    fn rows_are_deterministic_and_keys_unique() {
        let counts = StreamCounts::for_tuples(5_000).unwrap();
        let mut writes = HashSet::new();
        for j in 0..counts.writes {
            let row = writes_row(7, &counts, j);
            assert_eq!(row, writes_row(7, &counts, j), "write {j} deterministic");
            assert!(writes.insert(row.clone()), "duplicate write {row:?}");
        }
        let mut cites = HashSet::new();
        for i in 0..counts.cites {
            let (citing, cited) = cites_row(7, &counts, i);
            assert_ne!(citing, cited, "self-citation at {i}");
            assert!(cites.insert((citing, cited)), "duplicate cite {i}");
        }
        // A different seed actually changes content.
        assert_ne!(paper_row(7, 5).1, paper_row(8, 5).1);
    }

    #[test]
    fn shards_roundtrip_into_a_database() {
        let dir = tmp_dir("roundtrip");
        let config = StreamConfig {
            seed: 3,
            tuples: 400,
            shard_tuples: 150,
        };
        let manifest = generate_to_dir(&config, &dir).unwrap();
        assert_eq!(manifest.shards, 3);
        assert!(is_stream_dir(&dir));
        assert_eq!(read_manifest(&dir).unwrap(), manifest);

        let db = build_database(&dir).unwrap();
        assert_eq!(db.total_tuples() as u64, config.tuples);
        // Planted entities present.
        let authors = db.relation("Author").unwrap();
        let names: Vec<String> = authors
            .scan()
            .map(|(_, t)| t.values()[1].as_text().unwrap().to_string())
            .collect();
        assert!(names.iter().any(|n| n == "Soumen Chakrabarti"));
        assert!(names.iter().any(|n| n == "C. Mohan"));

        // Same seed → byte-identical shards.
        let dir2 = tmp_dir("roundtrip2");
        generate_to_dir(&config, &dir2).unwrap();
        for shard in 0..manifest.shards {
            assert_eq!(
                std::fs::read(manifest.shard_path(&dir, shard)).unwrap(),
                std::fs::read(manifest.shard_path(&dir2, shard)).unwrap(),
                "shard {shard}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn corrupt_manifest_and_short_shards_are_rejected() {
        let dir = tmp_dir("corrupt");
        let config = StreamConfig {
            seed: 1,
            tuples: 100,
            shard_tuples: 60,
        };
        let manifest = generate_to_dir(&config, &dir).unwrap();

        // Truncate the last shard: depending on where the cut lands this
        // trips the row-count check, the row parser, or a dangling
        // foreign key — any of the three rejects the corpus.
        let last = manifest.shard_path(&dir, manifest.shards - 1);
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() / 2]).unwrap();
        let err = build_database(&dir).unwrap_err();
        assert!(
            err.contains("manifest says") || err.contains("malformed") || err.contains("insert"),
            "{err}"
        );

        // Garbage manifest: magic check trips.
        std::fs::write(dir.join(MANIFEST_FILE), "not a manifest\n").unwrap();
        assert!(!is_stream_dir(&dir));
        assert!(read_manifest(&dir).unwrap_err().contains("manifest"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
