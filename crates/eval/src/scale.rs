//! EXP-SCALE: how build time, memory, and query latency grow with corpus
//! size — the quantitative backing for the paper's conclusion that "it is
//! feasible to use BANKS for moderately large databases".

use crate::workload::{dblp_eval_config, dblp_workload};
use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig};
use std::time::Instant;

/// One corpus size's measurements.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Scale factor relative to the paper's 100K-node corpus.
    pub factor: f64,
    /// Graph nodes.
    pub nodes: usize,
    /// Directed graph edges.
    pub edges: usize,
    /// Milliseconds to build indexes + graph (the "load" phase).
    pub load_ms: f64,
    /// Graph + index memory in bytes.
    pub memory_bytes: usize,
    /// Median workload-query latency (ms), metadata query excluded.
    pub median_query_ms: f64,
    /// The metadata query's latency (ms) — the §7 worst case.
    pub metadata_query_ms: f64,
}

/// Run the sweep over the given scale factors.
pub fn run_scale_sweep(seed: u64, factors: &[f64]) -> Vec<ScalePoint> {
    factors
        .iter()
        .map(|&factor| {
            let dataset = generate(DblpConfig::scaled(seed, factor)).expect("generation");
            let t = Instant::now();
            let banks =
                Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds");
            let load_ms = t.elapsed().as_secs_f64() * 1e3;
            let nodes = banks.tuple_graph().node_count();
            let edges = banks.tuple_graph().graph().edge_count();
            let memory_bytes = banks.memory_bytes();
            let mut latencies = Vec::new();
            let mut metadata_query_ms = 0.0;
            for query in dblp_workload(&dataset.planted) {
                let t = Instant::now();
                let _ = banks.search(query.text).expect("query runs");
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if query.id == "Q6-metadata" {
                    metadata_query_ms = ms;
                } else {
                    latencies.push(ms);
                }
            }
            latencies.sort_by(f64::total_cmp);
            ScalePoint {
                factor,
                nodes,
                edges,
                load_ms,
                memory_bytes,
                median_query_ms: latencies[latencies.len() / 2],
                metadata_query_ms,
            }
        })
        .collect()
}

/// Pretty-print the sweep.
pub fn format_sweep(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "factor   nodes     edges     load_ms   mem_mb   median_q_ms   metadata_q_ms\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<8} {:<9} {:<9} {:<9.1} {:<8.2} {:<13.2} {:<10.2}\n",
            p.factor,
            p.nodes,
            p.edges,
            p.load_ms,
            p.memory_bytes as f64 / 1e6,
            p.median_query_ms,
            p.metadata_query_ms
        ));
    }
    out
}

banks_util::json_struct!(ScalePoint {
    factor,
    nodes,
    edges,
    load_ms,
    memory_bytes,
    median_query_ms,
    metadata_query_ms,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grows_monotonically() {
        let points = run_scale_sweep(1, &[0.02, 0.05]);
        assert_eq!(points.len(), 2);
        assert!(points[1].nodes > points[0].nodes);
        assert!(points[1].memory_bytes > points[0].memory_bytes);
        for p in &points {
            assert!(p.median_query_ms >= 0.0);
            assert!(p.edges > p.nodes, "DBLP graphs have more edges than nodes");
        }
    }

    #[test]
    fn sweep_formats() {
        let points = run_scale_sweep(2, &[0.02]);
        let text = format_sweep(&points);
        assert!(text.contains("factor"));
        assert_eq!(text.lines().count(), 2);
    }
}
