//! Figure 5 reproduction: average scaled error vs (λ, EdgeLog), plus the
//! §5.3 side claims (combination mode and node-log scaling have almost no
//! ranking impact) and the ABL-HEAP ablation (output-heap size).

use crate::error_score::{average_scaled_error, score_query, QueryError};
use crate::workload::{dblp_eval_config, dblp_workload, WorkloadQuery};
use banks_core::{Banks, CombineMode, EdgeScoreMode, NodeScoreMode, ScoreParams, SearchStrategy};
use banks_datagen::dblp::DblpDataset;

/// The λ values swept in Figure 5.
pub const LAMBDAS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

/// Per-query result inside a cell.
#[derive(Debug, Clone)]
pub struct PerQuery {
    /// Query id.
    pub id: String,
    /// Scaled error for this query.
    pub scaled: f64,
    /// Actual ranks of the ideals (11 = missing).
    pub ranks: Vec<usize>,
}

/// One parameter setting's measurement.
#[derive(Debug, Clone)]
pub struct Fig5Cell {
    /// λ (node-weight factor).
    pub lambda: f64,
    /// Edge score log scaling (the EdgeLog axis of Figure 5).
    pub edge_log: bool,
    /// Node score log scaling.
    pub node_log: bool,
    /// Multiplicative (vs additive) combination.
    pub multiplicative: bool,
    /// Average scaled error over the workload.
    pub avg_scaled_error: f64,
    /// Per-query breakdown.
    pub per_query: Vec<PerQuery>,
}

/// The whole report.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Swept cells (the Figure 5 surface; all retained combinations under
    /// `--full`).
    pub cells: Vec<Fig5Cell>,
    /// Max |error(additive) − error(multiplicative)| over matched settings
    /// (paper: "almost no impact").
    pub combination_mode_max_delta: f64,
    /// Max |error(node-log) − error(node-linear)| over matched settings
    /// (paper: "log scaling gave the same ranking").
    pub node_log_max_delta: f64,
}

fn eval_params(
    banks: &Banks,
    workload: &[WorkloadQuery],
    params: ScoreParams,
) -> (f64, Vec<PerQuery>, Vec<QueryError>) {
    let mut config = banks.config().clone();
    config.score = params;
    let mut errors = Vec::with_capacity(workload.len());
    for query in workload {
        let outcome = banks
            .search_with(query.text, SearchStrategy::Backward, &config)
            .expect("workload queries parse");
        errors.push(score_query(banks, query, &outcome.answers));
    }
    let avg = average_scaled_error(&errors);
    let per_query = errors
        .iter()
        .map(|e| PerQuery {
            id: e.query.clone(),
            scaled: e.scaled,
            ranks: e.actual_ranks.clone(),
        })
        .collect();
    (avg, per_query, errors)
}

fn params(lambda: f64, edge_log: bool, node_log: bool, multiplicative: bool) -> ScoreParams {
    ScoreParams {
        lambda,
        edge_score: if edge_log {
            EdgeScoreMode::Log
        } else {
            EdgeScoreMode::Linear
        },
        node_score: if node_log {
            NodeScoreMode::Log
        } else {
            NodeScoreMode::Linear
        },
        combine: if multiplicative {
            CombineMode::Multiplicative
        } else {
            CombineMode::Additive
        },
    }
}

/// Run the Figure 5 sweep.
///
/// `full = false` sweeps the figure's two axes (λ × EdgeLog, node score
/// linear, additive). `full = true` additionally sweeps the retained
/// combinations of §2.3 and fills in the side-claim deltas.
pub fn run_fig5(dataset: &DblpDataset, full: bool) -> Fig5Report {
    let banks = Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("valid dataset");
    let workload = dblp_workload(&dataset.planted);

    let mut cells = Vec::new();
    for &lambda in &LAMBDAS {
        for edge_log in [false, true] {
            let p = params(lambda, edge_log, false, false);
            let (avg, per_query, _) = eval_params(&banks, &workload, p);
            cells.push(Fig5Cell {
                lambda,
                edge_log,
                node_log: false,
                multiplicative: false,
                avg_scaled_error: avg,
                per_query,
            });
        }
    }

    let mut combination_mode_max_delta = 0.0f64;
    let mut node_log_max_delta = 0.0f64;
    if full {
        for &lambda in &LAMBDAS {
            // Combination-mode claim: compare additive vs multiplicative
            // with linear scaling (the retained multiplicative combos).
            let (add, ..) = eval_params(&banks, &workload, params(lambda, false, false, false));
            let (mul, per_query, _) =
                eval_params(&banks, &workload, params(lambda, false, false, true));
            combination_mode_max_delta = combination_mode_max_delta.max((add - mul).abs());
            cells.push(Fig5Cell {
                lambda,
                edge_log: false,
                node_log: false,
                multiplicative: true,
                avg_scaled_error: mul,
                per_query,
            });
            // Node-log claim: additive, edge log, node log vs linear.
            let (nlin, ..) = eval_params(&banks, &workload, params(lambda, true, false, false));
            let (nlog, per_query, _) =
                eval_params(&banks, &workload, params(lambda, true, true, false));
            node_log_max_delta = node_log_max_delta.max((nlin - nlog).abs());
            cells.push(Fig5Cell {
                lambda,
                edge_log: true,
                node_log: true,
                multiplicative: false,
                avg_scaled_error: nlog,
                per_query,
            });
        }
    }

    Fig5Report {
        cells,
        combination_mode_max_delta,
        node_log_max_delta,
    }
}

/// ABL-HEAP: average scaled error as a function of the output-heap size,
/// at the paper-best score parameters. Validates the §3 claim that the
/// fixed-size-heap heuristic "works well even with a reasonably small
/// heap size".
#[derive(Debug, Clone)]
pub struct HeapSweepRow {
    /// Output-heap capacity.
    pub heap_size: usize,
    /// Average scaled error at the default score parameters.
    pub avg_scaled_error: f64,
}

/// Run the heap-size ablation.
pub fn run_heap_sweep(dataset: &DblpDataset, sizes: &[usize]) -> Vec<HeapSweepRow> {
    let banks = Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("valid dataset");
    let workload = dblp_workload(&dataset.planted);
    sizes
        .iter()
        .map(|&heap_size| {
            let mut config = banks.config().clone();
            config.search.output_heap_size = heap_size;
            let mut errors = Vec::new();
            for query in &workload {
                let outcome = banks
                    .search_with(query.text, SearchStrategy::Backward, &config)
                    .expect("workload queries parse");
                errors.push(score_query(&banks, query, &outcome.answers));
            }
            HeapSweepRow {
                heap_size,
                avg_scaled_error: average_scaled_error(&errors),
            }
        })
        .collect()
}

/// Pretty-print the main Figure 5 table.
pub fn format_table(report: &Fig5Report) -> String {
    let mut out = String::new();
    out.push_str("lambda  edge_log  node_log  mult  avg_scaled_error\n");
    for cell in &report.cells {
        out.push_str(&format!(
            "{:<7} {:<9} {:<9} {:<5} {:>8.2}\n",
            cell.lambda,
            cell.edge_log as u8,
            cell.node_log as u8,
            cell.multiplicative as u8,
            cell.avg_scaled_error
        ));
    }
    out
}

/// Locate a main-axis cell.
pub fn cell(report: &Fig5Report, lambda: f64, edge_log: bool) -> Option<&Fig5Cell> {
    report
        .cells
        .iter()
        .find(|c| c.lambda == lambda && c.edge_log == edge_log && !c.node_log && !c.multiplicative)
}

banks_util::json_struct!(PerQuery { id, scaled, ranks });
banks_util::json_struct!(Fig5Cell {
    lambda,
    edge_log,
    node_log,
    multiplicative,
    avg_scaled_error,
    per_query,
});
banks_util::json_struct!(Fig5Report {
    cells,
    combination_mode_max_delta,
    node_log_max_delta,
});
banks_util::json_struct!(HeapSweepRow {
    heap_size,
    avg_scaled_error
});

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::dblp::{generate, DblpConfig};

    fn dataset() -> DblpDataset {
        generate(DblpConfig::tiny(1)).unwrap()
    }

    #[test]
    fn sweep_covers_main_axes() {
        let report = run_fig5(&dataset(), false);
        assert_eq!(report.cells.len(), LAMBDAS.len() * 2);
        for &lambda in &LAMBDAS {
            for edge_log in [false, true] {
                assert!(cell(&report, lambda, edge_log).is_some());
            }
        }
    }

    #[test]
    fn errors_bounded_zero_to_hundred() {
        let report = run_fig5(&dataset(), false);
        for c in &report.cells {
            assert!(
                (0.0..=100.0).contains(&c.avg_scaled_error),
                "cell {c:?} out of range"
            );
            assert_eq!(c.per_query.len(), 7);
        }
    }

    /// The paper's headline finding: λ = 0.2 with log-scaled edges does
    /// best; λ = 1 (ignore edge weights) does worst.
    #[test]
    fn paper_shape_best_and_worst() {
        let report = run_fig5(&dataset(), false);
        let best = cell(&report, 0.2, true).unwrap().avg_scaled_error;
        for c in &report.cells {
            assert!(
                best <= c.avg_scaled_error + 1e-9,
                "λ=0.2+log ({best:.2}) beaten by λ={} log={} ({:.2})",
                c.lambda,
                c.edge_log,
                c.avg_scaled_error
            );
        }
        let worst_lambda1 = cell(&report, 1.0, true)
            .unwrap()
            .avg_scaled_error
            .min(cell(&report, 1.0, false).unwrap().avg_scaled_error);
        assert!(
            worst_lambda1 >= best,
            "ignoring edge weights must not beat the best setting"
        );
    }

    #[test]
    fn format_table_readable() {
        let report = run_fig5(&dataset(), false);
        let table = format_table(&report);
        assert!(table.contains("lambda"));
        assert_eq!(table.lines().count(), 1 + report.cells.len());
    }

    #[test]
    fn heap_sweep_runs() {
        let rows = run_heap_sweep(&dataset(), &[1, 5, 30]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!((0.0..=100.0).contains(&row.avg_scaled_error));
        }
    }
}
