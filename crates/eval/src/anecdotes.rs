//! §5.1 reproduction: the six anecdotal queries.
//!
//! Each anecdote runs a query against the appropriate synthetic dataset
//! and checks the paper's reported behaviour structurally.

use crate::workload::dblp_eval_config;
use banks_core::{Answer, Banks};
use banks_datagen::dblp::{self, DblpConfig};
use banks_datagen::thesis::{self, ThesisConfig};
use banks_storage::Value;

/// One anecdote's outcome.
#[derive(Debug, Clone)]
pub struct AnecdoteOutcome {
    /// Anecdote id (A1…A6).
    pub id: String,
    /// Which dataset it runs on.
    pub dataset: String,
    /// The query text.
    pub query: String,
    /// What the paper reports.
    pub expectation: String,
    /// Whether our system reproduces it.
    pub passed: bool,
    /// Rendered top answers (up to 3), Figure 2 style.
    pub top: Vec<String>,
}

fn node_of(banks: &Banks, relation: &str, key: &str) -> banks_graph::NodeId {
    let rid = banks
        .db()
        .relation(relation)
        .expect("relation exists")
        .lookup_pk(&[Value::text(key)])
        .expect("planted tuple exists");
    banks
        .tuple_graph()
        .node(rid)
        .expect("tuple is in the graph")
}

fn contains_all(banks: &Banks, answer: &Answer, tuples: &[(&str, &str)]) -> bool {
    let nodes = answer.tree.nodes();
    tuples
        .iter()
        .all(|(rel, key)| nodes.contains(&node_of(banks, rel, key)))
}

fn render_top(banks: &Banks, answers: &[Answer]) -> Vec<String> {
    answers
        .iter()
        .take(3)
        .map(|a| banks.render_answer(a))
        .collect()
}

/// Run all six anecdotes at the given seed (tiny-scale datasets).
pub fn run_anecdotes(seed: u64) -> Vec<AnecdoteOutcome> {
    let dblp = dblp::generate(DblpConfig::tiny(seed)).expect("dblp generates");
    let dblp_banks = Banks::with_config(dblp.db.clone(), dblp_eval_config()).expect("banks builds");
    let thesis = thesis::generate(ThesisConfig::tiny(seed)).expect("thesis generates");
    let thesis_banks = Banks::new(thesis.db.clone()).expect("banks builds");
    let p = &dblp.planted;
    let tp = &thesis.planted;
    let mut out = Vec::new();

    // A1 — "Mohan": C. Mohan first by prestige, then Ahuja, then Kamat.
    {
        let answers = dblp_banks.search("mohan").expect("query runs");
        let pos = |key: &str| {
            let node = node_of(&dblp_banks, "Author", key);
            answers.iter().position(|a| a.tree.root == node)
        };
        let passed = match (pos(&p.mohan_c), pos(&p.mohan_ahuja), pos(&p.mohan_kamat)) {
            (Some(c), Some(a), Some(k)) => c == 0 && c < a && a < k,
            _ => false,
        };
        out.push(AnecdoteOutcome {
            id: "A1".into(),
            dataset: "dblp".into(),
            query: "mohan".into(),
            expectation: "C. Mohan at the top, Mohan Ahuja and Mohan Kamat following".into(),
            passed,
            top: render_top(&dblp_banks, &answers),
        });
    }

    // A2 — "transaction": Gray's classic paper and the Gray&Reuter book as
    // the top two answers.
    {
        let answers = dblp_banks.search("transaction").expect("query runs");
        let paper = node_of(&dblp_banks, "Paper", &p.transaction_paper);
        let book = node_of(&dblp_banks, "Paper", &p.transaction_book);
        let passed =
            answers.len() >= 2 && answers[0].tree.root == paper && answers[1].tree.root == book;
        out.push(AnecdoteOutcome {
            id: "A2".into(),
            dataset: "dblp".into(),
            query: "transaction".into(),
            expectation: "Jim Gray's classic paper and the Gray&Reuter book as the top two".into(),
            passed,
            top: render_top(&dblp_banks, &answers),
        });
    }

    // A3 — "computer engineering": the CSE department beats theses whose
    // titles contain the words, thanks to its node weight.
    {
        let answers = thesis_banks
            .search("computer engineering")
            .expect("query runs");
        let cse = node_of(&thesis_banks, "Department", &tp.cse_dept);
        let passed = answers.first().is_some_and(|a| a.tree.root == cse);
        out.push(AnecdoteOutcome {
            id: "A3".into(),
            dataset: "thesis".into(),
            query: "computer engineering".into(),
            expectation: "the Computer Science and Engineering department ranked first".into(),
            passed,
            top: render_top(&thesis_banks, &answers),
        });
    }

    // A4 — "sudarshan aditya": the thesis written by Aditya and advised by
    // Sudarshan.
    {
        let answers = thesis_banks.search("sudarshan aditya").expect("query runs");
        let passed = answers.first().is_some_and(|a| {
            contains_all(
                &thesis_banks,
                a,
                &[
                    ("Thesis", &tp.aditya_thesis),
                    ("Student", &tp.aditya),
                    ("Faculty", &tp.sudarshan),
                ],
            )
        });
        out.push(AnecdoteOutcome {
            id: "A4".into(),
            dataset: "thesis".into(),
            query: "sudarshan aditya".into(),
            expectation: "a thesis written by Aditya whose advisor is Sudarshan".into(),
            passed,
            top: render_top(&thesis_banks, &answers),
        });
    }

    // A5 — "soumen sunita": the Figure 2 answer (ChakrabartiSD98) first.
    {
        let answers = dblp_banks.search("soumen sunita").expect("query runs");
        let passed = answers.first().is_some_and(|a| {
            contains_all(
                &dblp_banks,
                a,
                &[
                    ("Paper", &p.chakrabarti_sd98),
                    ("Author", &p.soumen),
                    ("Author", &p.sunita),
                ],
            )
        });
        out.push(AnecdoteOutcome {
            id: "A5".into(),
            dataset: "dblp".into(),
            query: "soumen sunita".into(),
            expectation: "the Figure 2 answer: their co-authored paper connecting both".into(),
            passed,
            top: render_top(&dblp_banks, &answers),
        });
    }

    // A6 — "seltzer sunita": Stonebraker as the root, connecting both
    // through separately co-authored papers.
    {
        let answers = dblp_banks.search("seltzer sunita").expect("query runs");
        let stonebraker = node_of(&dblp_banks, "Author", &p.stonebraker);
        let passed = answers.first().is_some_and(|a| {
            a.tree.root == stonebraker
                && contains_all(
                    &dblp_banks,
                    a,
                    &[("Author", &p.seltzer), ("Author", &p.sunita)],
                )
        });
        out.push(AnecdoteOutcome {
            id: "A6".into(),
            dataset: "dblp".into(),
            query: "seltzer sunita".into(),
            expectation: "Stonebraker as the root, connected to Sunita and Seltzer".into(),
            passed,
            top: render_top(&dblp_banks, &answers),
        });
    }

    out
}

/// Pretty-print the outcomes.
pub fn format_outcomes(outcomes: &[AnecdoteOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!(
            "[{}] {} — \"{}\" on {}\n  expectation: {}\n",
            if o.passed { "PASS" } else { "FAIL" },
            o.id,
            o.query,
            o.dataset,
            o.expectation
        ));
        for (i, answer) in o.top.iter().enumerate() {
            out.push_str(&format!("  answer {}:\n", i + 1));
            for line in answer.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        out.push('\n');
    }
    out
}

banks_util::json_struct!(AnecdoteOutcome {
    id,
    dataset,
    query,
    expectation,
    passed,
    top
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_anecdotes_reproduce() {
        let outcomes = run_anecdotes(1);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(
                o.passed,
                "anecdote {} ({}) failed:\n{}",
                o.id,
                o.query,
                o.top.join("\n---\n")
            );
        }
    }

    #[test]
    fn outcomes_format() {
        let outcomes = run_anecdotes(2);
        let text = format_outcomes(&outcomes);
        assert!(text.contains("A1"));
        assert!(text.contains("expectation"));
    }
}
