//! The §5.3 error metric.
//!
//! "For each query, for each parameter setting, we computed the absolute
//! value of the rank difference of the ideal answers with their rank in
//! the answers for that parameter setting. The sum of these rank
//! differences gives the raw error score for that parameter setting. We
//! scaled the scores to set the worst possible error score to 100. …
//! For answers that were missing at a parameter setting, the rank
//! difference was assumed to be 11 (one more than the number of answers
//! examined)."

use crate::workload::WorkloadQuery;
use banks_core::{Answer, Banks};

/// Number of answers examined per query (the paper stops at 10).
pub const ANSWERS_EXAMINED: usize = 10;

/// Rank assigned to an ideal answer missing from the top
/// [`ANSWERS_EXAMINED`] (one past the end).
pub const MISSING_RANK: usize = ANSWERS_EXAMINED + 1;

/// Error of a single query at one parameter setting.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// Query id.
    pub query: String,
    /// Raw error: Σ |ideal rank − actual rank|.
    pub raw: f64,
    /// Raw error of the worst possible ranking (all ideals missing).
    pub worst: f64,
    /// `100 × raw / worst`.
    pub scaled: f64,
    /// Actual 1-based ranks found per ideal ([`MISSING_RANK`] = missing).
    pub actual_ranks: Vec<usize>,
}

/// Score one ranked answer list against a query's ideals.
pub fn score_query(banks: &Banks, query: &WorkloadQuery, answers: &[Answer]) -> QueryError {
    let examined = &answers[..answers.len().min(ANSWERS_EXAMINED)];
    let mut used = vec![false; examined.len()];
    let mut actual_ranks = Vec::with_capacity(query.ideals.len());
    let mut raw = 0f64;
    let mut worst = 0f64;
    for (i, ideal) in query.ideals.iter().enumerate() {
        let ideal_rank = i + 1;
        // First unclaimed answer matching this ideal; each answer can
        // satisfy only one ideal.
        let actual = examined
            .iter()
            .enumerate()
            .find(|(pos, a)| !used[*pos] && ideal.matcher.matches(banks, a))
            .map(|(pos, _)| {
                used[pos] = true;
                pos + 1
            })
            .unwrap_or(MISSING_RANK);
        actual_ranks.push(actual);
        raw += (actual as f64 - ideal_rank as f64).abs();
        worst += (MISSING_RANK - ideal_rank) as f64;
    }
    let scaled = if worst > 0.0 {
        100.0 * raw / worst
    } else {
        0.0
    };
    QueryError {
        query: query.id.to_string(),
        raw,
        worst,
        scaled,
        actual_ranks,
    }
}

/// Average scaled error over a workload.
pub fn average_scaled_error(errors: &[QueryError]) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().map(|e| e.scaled).sum::<f64>() / errors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{dblp_workload, AnswerMatcher, IdealAnswer, QueryClass};
    use banks_core::{Answer, ConnectionTree};
    use banks_datagen::dblp::{generate, DblpConfig};
    use banks_storage::Value;

    fn banks() -> (Banks, banks_datagen::DblpPlanted) {
        let d = generate(DblpConfig::tiny(1)).unwrap();
        (Banks::new(d.db).unwrap(), d.planted)
    }

    fn single_node_answer(banks: &Banks, relation: &str, key: &str) -> Answer {
        let rid = banks
            .db()
            .relation(relation)
            .unwrap()
            .lookup_pk(&[Value::text(key)])
            .unwrap();
        let node = banks.tuple_graph().node(rid).unwrap();
        Answer {
            tree: ConnectionTree::new(node, vec![node], vec![]),
            relevance: 1.0,
        }
    }

    fn mohan_query(planted: &banks_datagen::DblpPlanted) -> WorkloadQuery {
        dblp_workload(planted)
            .into_iter()
            .find(|q| q.id == "Q5-single-author")
            .unwrap()
    }

    #[test]
    fn perfect_ranking_scores_zero() {
        let (banks, planted) = banks();
        let q = mohan_query(&planted);
        let answers = vec![
            single_node_answer(&banks, "Author", &planted.mohan_c),
            single_node_answer(&banks, "Author", &planted.mohan_ahuja),
            single_node_answer(&banks, "Author", &planted.mohan_kamat),
        ];
        let err = score_query(&banks, &q, &answers);
        assert_eq!(err.raw, 0.0);
        assert_eq!(err.scaled, 0.0);
        assert_eq!(err.actual_ranks, vec![1, 2, 3]);
    }

    #[test]
    fn all_missing_scores_hundred() {
        let (banks, planted) = banks();
        let q = mohan_query(&planted);
        let err = score_query(&banks, &q, &[]);
        assert_eq!(err.scaled, 100.0);
        assert_eq!(err.actual_ranks, vec![11, 11, 11]);
        // worst = (11-1) + (11-2) + (11-3) = 27
        assert_eq!(err.worst, 27.0);
    }

    #[test]
    fn swapped_ranks_accumulate() {
        let (banks, planted) = banks();
        let q = mohan_query(&planted);
        let answers = vec![
            single_node_answer(&banks, "Author", &planted.mohan_kamat),
            single_node_answer(&banks, "Author", &planted.mohan_ahuja),
            single_node_answer(&banks, "Author", &planted.mohan_c),
        ];
        let err = score_query(&banks, &q, &answers);
        // C.Mohan at 3 (|1-3|=2), Ahuja at 2 (0), Kamat at 1 (|3-1|=2).
        assert_eq!(err.raw, 4.0);
        assert!((err.scaled - 100.0 * 4.0 / 27.0).abs() < 1e-9);
    }

    #[test]
    fn one_answer_cannot_satisfy_two_ideals() {
        let (banks, planted) = banks();
        // Craft a query where both ideals match the same answer.
        let q = WorkloadQuery {
            id: "dup",
            text: "x",
            class: QueryClass::SingleAuthor,
            ideals: vec![
                IdealAnswer {
                    description: "first".into(),
                    matcher: AnswerMatcher::SingleNode {
                        relation: "Author".into(),
                        key: vec![Value::text(&planted.mohan_c)],
                    },
                },
                IdealAnswer {
                    description: "second (same tuple)".into(),
                    matcher: AnswerMatcher::SingleNode {
                        relation: "Author".into(),
                        key: vec![Value::text(&planted.mohan_c)],
                    },
                },
            ],
        };
        let answers = vec![single_node_answer(&banks, "Author", &planted.mohan_c)];
        let err = score_query(&banks, &q, &answers);
        assert_eq!(err.actual_ranks, vec![1, MISSING_RANK]);
    }

    #[test]
    fn average_over_queries() {
        let a = QueryError {
            query: "a".into(),
            raw: 0.0,
            worst: 10.0,
            scaled: 0.0,
            actual_ranks: vec![],
        };
        let b = QueryError {
            query: "b".into(),
            raw: 5.0,
            worst: 10.0,
            scaled: 50.0,
            actual_ranks: vec![],
        };
        assert_eq!(average_scaled_error(&[a, b]), 25.0);
        assert_eq!(average_scaled_error(&[]), 0.0);
    }
}
