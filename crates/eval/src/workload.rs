//! The §5.3 query workload.
//!
//! "Our performance evaluation was conducted using 7 different queries
//! whose form was outlined earlier … (e.g. keywords from two authors who
//! are coauthors, authors who have a common coauthor, an author and a
//! title, keywords from titles alone, and so on). For each query we chose
//! answers that we felt were the most meaningful, and we call these the
//! ideal answers; there were an average of 4 such answers per query."
//!
//! Our seven queries instantiate the same classes against the synthetic
//! DBLP corpus, with ideal answers defined structurally over the planted
//! entities (so they remain valid for every seed).

use banks_core::{Answer, Banks, BanksConfig};
use banks_datagen::DblpPlanted;
use banks_storage::Value;

/// The BANKS configuration used for all DBLP experiments: the paper's
/// default parameters plus the §2.1 root restriction ("we may exclude the
/// nodes corresponding to the tuples from a specified set of relations,
/// such as Writes, which we believe are not meaningful root nodes") —
/// link relations (Writes, Cites) may not serve as information nodes.
pub fn dblp_eval_config() -> BanksConfig {
    let mut config = BanksConfig::default();
    config.search.excluded_root_relations = vec!["Writes".into(), "Cites".into()];
    config
}

/// The query classes named in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Keywords from two authors who are co-authors.
    CoAuthors,
    /// Two authors who share a co-author but no paper.
    CommonCoAuthor,
    /// An author plus a title word.
    AuthorTitle,
    /// Keywords from titles alone.
    TitleOnly,
    /// A single author keyword (prestige ranking).
    SingleAuthor,
    /// A metadata keyword plus a data keyword.
    Metadata,
    /// Three author keywords.
    ThreeKeyword,
}

/// Structural matcher for an ideal answer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerMatcher {
    /// The answer is exactly one tuple (single-node tree).
    SingleNode {
        /// Relation name of the tuple.
        relation: String,
        /// Primary key of the tuple.
        key: Vec<Value>,
    },
    /// The answer's tree contains all the listed tuples (by relation name
    /// and primary key) — roots may differ, matching the paper's "answers
    /// are the same if their trees are the same".
    ContainsAll(Vec<(String, Vec<Value>)>),
}

impl AnswerMatcher {
    /// Whether `answer` satisfies this matcher under `banks`' database.
    pub fn matches(&self, banks: &Banks, answer: &Answer) -> bool {
        match self {
            AnswerMatcher::SingleNode { relation, key } => {
                if !answer.tree.edges.is_empty() {
                    return false;
                }
                let Some(node) = lookup_node(banks, relation, key) else {
                    return false;
                };
                answer.tree.root == node
            }
            AnswerMatcher::ContainsAll(tuples) => {
                let nodes = answer.tree.nodes();
                tuples.iter().all(|(relation, key)| {
                    lookup_node(banks, relation, key)
                        .map(|n| nodes.contains(&n))
                        .unwrap_or(false)
                })
            }
        }
    }
}

fn lookup_node(banks: &Banks, relation: &str, key: &[Value]) -> Option<banks_graph::NodeId> {
    let rid = banks.db().relation(relation).ok()?.lookup_pk(key)?;
    banks.tuple_graph().node(rid)
}

/// One ideal answer: a description plus its matcher. Position in the
/// query's ideal list is its ideal rank (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct IdealAnswer {
    /// Human-readable description (for reports).
    pub description: String,
    /// Structural matcher.
    pub matcher: AnswerMatcher,
}

/// One workload query.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// Short id (used in reports, e.g. `Q1-coauthors`).
    pub id: &'static str,
    /// The query text submitted to BANKS.
    pub text: &'static str,
    /// Class of the query.
    pub class: QueryClass,
    /// Ideal answers in ideal rank order.
    pub ideals: Vec<IdealAnswer>,
}

fn single(relation: &str, key: &str) -> AnswerMatcher {
    AnswerMatcher::SingleNode {
        relation: relation.to_string(),
        key: vec![Value::text(key)],
    }
}

fn contains(tuples: &[(&str, &str)]) -> AnswerMatcher {
    AnswerMatcher::ContainsAll(
        tuples
            .iter()
            .map(|(rel, key)| (rel.to_string(), vec![Value::text(*key)]))
            .collect(),
    )
}

/// Build the seven-query workload for a planted DBLP corpus.
pub fn dblp_workload(planted: &DblpPlanted) -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "Q1-coauthors",
            text: "soumen sunita",
            class: QueryClass::CoAuthors,
            ideals: vec![
                IdealAnswer {
                    description: "ChakrabartiSD98 connecting Soumen and Sunita".into(),
                    matcher: contains(&[
                        ("Paper", &planted.chakrabarti_sd98),
                        ("Author", &planted.soumen),
                        ("Author", &planted.sunita),
                    ]),
                },
                IdealAnswer {
                    description: "their second co-authored paper".into(),
                    matcher: contains(&[
                        ("Paper", &planted.scalable_mining),
                        ("Author", &planted.soumen),
                        ("Author", &planted.sunita),
                    ]),
                },
            ],
        },
        WorkloadQuery {
            id: "Q2-common-coauthor",
            text: "seltzer sunita",
            class: QueryClass::CommonCoAuthor,
            ideals: vec![IdealAnswer {
                description: "Stonebraker as the root connecting Seltzer and Sunita".into(),
                matcher: contains(&[
                    ("Author", &planted.stonebraker),
                    ("Author", &planted.seltzer),
                    ("Author", &planted.sunita),
                ]),
            }],
        },
        WorkloadQuery {
            id: "Q3-author-title",
            text: "gray transaction",
            class: QueryClass::AuthorTitle,
            ideals: vec![
                IdealAnswer {
                    description: "Gray with his classic transaction paper".into(),
                    matcher: contains(&[
                        ("Author", &planted.gray),
                        ("Paper", &planted.transaction_paper),
                    ]),
                },
                IdealAnswer {
                    description: "Gray with the Gray&Reuter book".into(),
                    matcher: contains(&[
                        ("Author", &planted.gray),
                        ("Paper", &planted.transaction_book),
                    ]),
                },
            ],
        },
        WorkloadQuery {
            id: "Q4-title-only",
            text: "surprising temporal",
            class: QueryClass::TitleOnly,
            ideals: vec![IdealAnswer {
                description: "ChakrabartiSD98, whose title has both words".into(),
                matcher: single("Paper", &planted.chakrabarti_sd98),
            }],
        },
        WorkloadQuery {
            id: "Q5-single-author",
            text: "mohan",
            class: QueryClass::SingleAuthor,
            ideals: vec![
                IdealAnswer {
                    description: "C. Mohan (most papers)".into(),
                    matcher: single("Author", &planted.mohan_c),
                },
                IdealAnswer {
                    description: "Mohan Ahuja".into(),
                    matcher: single("Author", &planted.mohan_ahuja),
                },
                IdealAnswer {
                    description: "Mohan Kamat".into(),
                    matcher: single("Author", &planted.mohan_kamat),
                },
            ],
        },
        WorkloadQuery {
            id: "Q6-metadata",
            text: "author sunita",
            class: QueryClass::Metadata,
            ideals: vec![IdealAnswer {
                description: "the Sunita author tuple itself".into(),
                matcher: single("Author", &planted.sunita),
            }],
        },
        WorkloadQuery {
            id: "Q7-three-keywords",
            text: "soumen sunita byron",
            class: QueryClass::ThreeKeyword,
            ideals: vec![IdealAnswer {
                description: "ChakrabartiSD98 with all three authors".into(),
                matcher: contains(&[
                    ("Paper", &planted.chakrabarti_sd98),
                    ("Author", &planted.soumen),
                    ("Author", &planted.sunita),
                    ("Author", &planted.byron),
                ]),
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::dblp::{generate, DblpConfig};

    #[test]
    fn workload_has_seven_queries_average_ideals() {
        let d = generate(DblpConfig::tiny(1)).unwrap();
        let w = dblp_workload(&d.planted);
        assert_eq!(w.len(), 7, "the paper used 7 queries");
        let ideals: usize = w.iter().map(|q| q.ideals.len()).sum();
        assert!(ideals >= 7, "every query has at least one ideal answer");
    }

    #[test]
    fn matchers_resolve_against_default_banks() {
        let d = generate(DblpConfig::tiny(2)).unwrap();
        let banks = Banks::with_config(d.db, dblp_eval_config()).unwrap();
        let w = dblp_workload(&d.planted);
        // Q1's first ideal must match the actual top answer under the
        // paper-best default parameters.
        let q1 = &w[0];
        let answers = banks.search(q1.text).unwrap();
        assert!(!answers.is_empty());
        let matched = answers
            .iter()
            .any(|a| q1.ideals[0].matcher.matches(&banks, a));
        assert!(matched, "ChakrabartiSD98 tree must appear in the top 10");
    }

    #[test]
    fn single_node_matcher_rejects_trees() {
        let d = generate(DblpConfig::tiny(3)).unwrap();
        let banks = Banks::new(d.db).unwrap();
        let answers = banks.search("soumen sunita").unwrap();
        let matcher = single("Author", &d.planted.sunita);
        for a in &answers {
            assert!(
                !matcher.matches(&banks, a),
                "multi-node trees cannot match a single-node ideal"
            );
        }
    }
}
