//! EXP-F5: regenerate the paper's Figure 5 (average scaled error versus
//! λ and edge-log scaling), with optional full-combination sweep and the
//! ABL-HEAP output-heap ablation.
//!
//! ```text
//! cargo run -p banks-eval --release --bin fig5 -- [--scale tiny|small|paper]
//!     [--seed N] [--full] [--heap-sweep] [--json PATH]
//! ```

use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::fig5::{cell, format_table, run_fig5, run_heap_sweep, LAMBDAS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "small".to_string();
    let mut seed = 1u64;
    let mut full = false;
    let mut heap_sweep = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1);
                i += 1;
            }
            "--full" => full = true,
            "--heap-sweep" => heap_sweep = true,
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let config = match scale.as_str() {
        "tiny" => DblpConfig::tiny(seed),
        "small" => DblpConfig::small(seed),
        "paper" => DblpConfig::paper_scale(seed),
        other => {
            eprintln!("unknown scale `{other}` (tiny|small|paper)");
            std::process::exit(2);
        }
    };

    eprintln!("generating dblp ({scale}, seed {seed})…");
    let dataset = generate(config).expect("generation succeeds");
    eprintln!(
        "corpus: {} tuples, {} links",
        dataset.db.total_tuples(),
        dataset.db.link_count()
    );

    let report = run_fig5(&dataset, full);
    println!("== Figure 5: average scaled error vs (lambda, EdgeLog) ==");
    print!("{}", format_table(&report));

    let best = cell(&report, 0.2, true).expect("swept").avg_scaled_error;
    let worst = LAMBDAS
        .iter()
        .flat_map(|&l| [cell(&report, l, false), cell(&report, l, true)])
        .flatten()
        .map(|c| c.avg_scaled_error)
        .fold(0.0f64, f64::max);
    println!("\npaper-shape check: λ=0.2+log error {best:.2} (best expected), max {worst:.2}");
    if full {
        println!(
            "combination mode max Δ: {:.3} (paper: almost no impact)",
            report.combination_mode_max_delta
        );
        println!(
            "node-log max Δ:        {:.3} (paper: same ranking)",
            report.node_log_max_delta
        );
    }

    if heap_sweep {
        println!("\n== ABL-HEAP: output-heap size vs error ==");
        println!("heap_size  avg_scaled_error");
        for row in run_heap_sweep(&dataset, &[1, 5, 10, 30, 100]) {
            println!("{:<10} {:>8.2}", row.heap_size, row.avg_scaled_error);
        }
    }

    if let Some(path) = json_path {
        let json = banks_util::json::to_string_pretty(&report);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
