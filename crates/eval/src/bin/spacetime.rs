//! EXP-S52: regenerate the §5.2 space/time measurements (memory, graph
//! load time, query latency).
//!
//! ```text
//! cargo run -p banks-eval --release --bin spacetime -- [--scale tiny|small|paper]
//!     [--seed N] [--json PATH]
//! ```
//!
//! At `--scale paper` the corpus matches the paper's ~100K nodes / ~300K
//! edges.

use banks_datagen::dblp::DblpConfig;
use banks_eval::spacetime::{format_report, run_spacetime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "paper".to_string();
    let mut seed = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1);
                i += 1;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let config = match scale.as_str() {
        "tiny" => DblpConfig::tiny(seed),
        "small" => DblpConfig::small(seed),
        "paper" => DblpConfig::paper_scale(seed),
        other => {
            eprintln!("unknown scale `{other}` (tiny|small|paper)");
            std::process::exit(2);
        }
    };
    eprintln!("running §5.2 space/time at scale {scale} (seed {seed})…");
    let report = run_spacetime(config);
    print!("{}", format_report(&report));
    if let Some(path) = json_path {
        let json = banks_util::json::to_string_pretty(&report);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
