//! EXP-SCALE: build time, memory and query latency as the corpus grows
//! toward (and past) the paper's 100K-node scale.
//!
//! ```text
//! cargo run --release -p banks-eval --bin scale_sweep -- [--seed N] [--full] [--json PATH]
//! ```
//!
//! Default factors stop at 0.5× (≈50K nodes) for a quick run; `--full`
//! sweeps up to 1× (the paper's scale).

use banks_eval::scale::{format_sweep, run_scale_sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut full = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1);
                i += 1;
            }
            "--full" => full = true,
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let factors: &[f64] = if full {
        &[0.05, 0.1, 0.25, 0.5, 1.0]
    } else {
        &[0.05, 0.1, 0.25, 0.5]
    };
    eprintln!("sweeping scale factors {factors:?} (seed {seed})…");
    let points = run_scale_sweep(seed, factors);
    print!("{}", format_sweep(&points));
    if let Some(path) = json_path {
        let json = banks_util::json::to_string_pretty(&points);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
