//! EXP-A1…A6: regenerate the §5.1 anecdotes, printing the top answers in
//! the Figure 2 rendering.
//!
//! ```text
//! cargo run -p banks-eval --release --bin anecdotes -- [--seed N] [--json PATH]
//! ```

use banks_eval::anecdotes::{format_outcomes, run_anecdotes};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1);
                i += 1;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let outcomes = run_anecdotes(seed);
    print!("{}", format_outcomes(&outcomes));
    let failed = outcomes.iter().filter(|o| !o.passed).count();
    println!(
        "{} of {} anecdotes reproduced",
        outcomes.len() - failed,
        outcomes.len()
    );
    if let Some(path) = json_path {
        let json = banks_util::json::to_string_pretty(&outcomes);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
