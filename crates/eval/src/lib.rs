//! # banks-eval
//!
//! The evaluation harness reproducing §5 of *Keyword Searching and
//! Browsing in Databases using BANKS* (ICDE 2002):
//!
//! | experiment | paper artifact | module / binary |
//! |---|---|---|
//! | EXP-F5 | Figure 5 (error vs λ, EdgeLog) | [`fig5`], `cargo run -p banks-eval --bin fig5` |
//! | EXP-F5b | §5.3 side claims (combination mode, node log) | [`fig5`] with `--full` |
//! | EXP-S52-* | §5.2 space & time | [`spacetime`], `--bin spacetime` |
//! | EXP-A1…A6 | §5.1 anecdotes | [`anecdotes`], `--bin anecdotes` |
//! | ABL-HEAP | §3 output-heap heuristic | [`fig5::run_heap_sweep`] |
//! | EXP-SCALE | scaling toward/past 100K nodes | [`scale`], `--bin scale_sweep` |
//!
//! The workload ([`workload`]) instantiates the paper's seven query
//! classes against the synthetic corpora of `banks-datagen`; the error
//! metric ([`error_score`]) is the paper's scaled rank-difference score.

pub mod anecdotes;
pub mod error_score;
pub mod fig5;
pub mod scale;
pub mod spacetime;
pub mod workload;

pub use anecdotes::{run_anecdotes, AnecdoteOutcome};
pub use error_score::{average_scaled_error, score_query, QueryError, ANSWERS_EXAMINED};
pub use fig5::{run_fig5, run_heap_sweep, Fig5Cell, Fig5Report, HeapSweepRow};
pub use scale::{run_scale_sweep, ScalePoint};
pub use spacetime::{run_spacetime, QueryTiming, SpaceTimeReport};
pub use workload::{dblp_workload, AnswerMatcher, IdealAnswer, QueryClass, WorkloadQuery};
