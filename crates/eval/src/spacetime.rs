//! §5.2 reproduction: space and time.
//!
//! The paper reports, for a bibliographic database with 100K nodes and
//! 300K edges: ~120 MB of memory (Java), ~2 minutes of initial graph
//! load, and queries taking "about a second to a few seconds". This
//! module measures the same quantities for our implementation at a
//! configurable scale.

use crate::workload::{dblp_eval_config, dblp_workload};
use banks_core::{Banks, TupleGraph};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_storage::{MetadataIndex, TextIndex, Tokenizer};
use std::time::Instant;

/// Timing of one workload query.
#[derive(Debug, Clone)]
pub struct QueryTiming {
    /// Query id.
    pub id: String,
    /// Query text.
    pub text: String,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// Answers returned.
    pub answers: usize,
    /// Nodes settled across all iterators.
    pub pops: usize,
    /// Iterators created (Σ|Sᵢ|).
    pub iterators: usize,
}

/// The full §5.2 report.
#[derive(Debug, Clone)]
pub struct SpaceTimeReport {
    /// Graph node count (tuples).
    pub nodes: usize,
    /// Directed graph edge count.
    pub edges: usize,
    /// Milliseconds to generate the synthetic database.
    pub datagen_ms: f64,
    /// Milliseconds to build the in-memory graph (the paper's "graph
    /// load" phase).
    pub graph_build_ms: f64,
    /// Milliseconds to build the keyword + metadata indexes.
    pub index_build_ms: f64,
    /// Graph memory (bytes) — comparable to the paper's 120 MB figure.
    pub graph_bytes: usize,
    /// Inverted-index memory (bytes); the paper kept these on disk.
    pub text_index_bytes: usize,
    /// Per-query timings over the 7-query workload.
    pub queries: Vec<QueryTiming>,
}

impl SpaceTimeReport {
    /// Median query latency in milliseconds.
    pub fn median_query_ms(&self) -> f64 {
        let mut times: Vec<f64> = self.queries.iter().map(|q| q.millis).collect();
        times.sort_by(f64::total_cmp);
        if times.is_empty() {
            return 0.0;
        }
        times[times.len() / 2]
    }
}

/// Run the space/time measurement at the given scale.
pub fn run_spacetime(config: DblpConfig) -> SpaceTimeReport {
    let t0 = Instant::now();
    let dataset = generate(config).expect("generation succeeds");
    let datagen_ms = t0.elapsed().as_secs_f64() * 1e3;

    let tokenizer = Tokenizer::new();
    let t1 = Instant::now();
    let text_index = TextIndex::build(&dataset.db, &tokenizer);
    let _metadata_index = MetadataIndex::build(&dataset.db, &tokenizer);
    let index_build_ms = t1.elapsed().as_secs_f64() * 1e3;
    let text_index_bytes = text_index.memory_bytes();
    drop(text_index);

    let t2 = Instant::now();
    let tuple_graph = TupleGraph::build(&dataset.db, &banks_core::GraphConfig::default())
        .expect("graph build succeeds");
    let graph_build_ms = t2.elapsed().as_secs_f64() * 1e3;
    let nodes = tuple_graph.node_count();
    let edges = tuple_graph.graph().edge_count();
    let graph_bytes = tuple_graph.memory_bytes();
    drop(tuple_graph);

    let banks = Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds");
    let workload = dblp_workload(&dataset.planted);
    let mut queries = Vec::with_capacity(workload.len());
    for query in &workload {
        let t = Instant::now();
        let outcome = banks.search_outcome(query.text).expect("query runs");
        let millis = t.elapsed().as_secs_f64() * 1e3;
        queries.push(QueryTiming {
            id: query.id.to_string(),
            text: query.text.to_string(),
            millis,
            answers: outcome.answers.len(),
            pops: outcome.stats.pops,
            iterators: outcome.stats.iterators,
        });
    }

    SpaceTimeReport {
        nodes,
        edges,
        datagen_ms,
        graph_build_ms,
        index_build_ms,
        graph_bytes,
        text_index_bytes,
        queries,
    }
}

/// Pretty-print a report.
pub fn format_report(r: &SpaceTimeReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph: {} nodes, {} edges\n", r.nodes, r.edges));
    out.push_str(&format!(
        "memory: graph {:.2} MB (paper: ~120 MB for 100K/300K), text index {:.2} MB\n",
        r.graph_bytes as f64 / 1e6,
        r.text_index_bytes as f64 / 1e6
    ));
    out.push_str(&format!(
        "build: datagen {:.0} ms, graph {:.0} ms (paper: ~2 min), indexes {:.0} ms\n",
        r.datagen_ms, r.graph_build_ms, r.index_build_ms
    ));
    out.push_str("query                     ms      answers  pops      iterators\n");
    for q in &r.queries {
        out.push_str(&format!(
            "{:<24} {:>8.2} {:>8} {:>9} {:>9}\n",
            q.id, q.millis, q.answers, q.pops, q.iterators
        ));
    }
    out.push_str(&format!("median query: {:.2} ms\n", r.median_query_ms()));
    out
}

banks_util::json_struct!(QueryTiming {
    id,
    text,
    millis,
    answers,
    pops,
    iterators
});
banks_util::json_struct!(SpaceTimeReport {
    nodes,
    edges,
    datagen_ms,
    graph_build_ms,
    index_build_ms,
    graph_bytes,
    text_index_bytes,
    queries,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_complete() {
        let r = run_spacetime(DblpConfig::tiny(1));
        assert!(r.nodes > 400);
        assert!(r.edges > 800);
        assert!(r.graph_bytes > 0);
        assert!(r.text_index_bytes > 0);
        assert_eq!(r.queries.len(), 7);
        for q in &r.queries {
            assert!(q.answers > 0, "query {} returned no answers", q.id);
        }
        assert!(r.median_query_ms() >= 0.0);
    }

    #[test]
    fn report_formats() {
        let r = run_spacetime(DblpConfig::tiny(2));
        let text = format_report(&r);
        assert!(text.contains("nodes"));
        assert!(text.contains("median query"));
        assert!(text.lines().count() >= 11);
    }
}
