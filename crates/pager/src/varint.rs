//! LEB128 variable-length integers — the compression primitive of the
//! segment codec.
//!
//! Adjacency targets are stored as deltas between consecutive (sorted)
//! ids, and deltas in a DBLP-shaped graph are overwhelmingly small, so
//! most edges cost one or two bytes instead of four.

/// Append `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint from `bytes` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncation or a varint
/// longer than 10 bytes (which cannot be a valid `u64`).
#[inline]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow past 64 bits
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_and_overflow_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        // Truncated in the middle of a multi-byte varint.
        let mut pos = 0;
        assert_eq!(read_u64(&buf[..buf.len() - 1], &mut pos), None);
        // 11 continuation bytes can never be a u64.
        let over = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&over, &mut pos), None);
        // Empty input.
        let mut pos = 0;
        assert_eq!(read_u64(&[], &mut pos), None);
    }
}
