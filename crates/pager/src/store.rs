//! [`PagedGraphStore`]: the out-of-core [`GraphStore`] backend.
//!
//! The store keeps only the blob *directory* (32 bytes per segment), the
//! node-weight lane (8 bytes per node), and a budget-bounded cache of
//! decoded segments in memory. Adjacency requests page the owning
//! segment in on first touch — one positioned read, a checksum, and a
//! varint decode — and an LRU sweep evicts cold segments whenever the
//! decoded-resident total passes the configured memory budget.
//!
//! # Pinning
//!
//! A quarter of the budget is reserved for a *pinned hot set* of
//! segments that are never evicted. The initial set is chosen by node
//! prestige (segments whose node-weight mass is largest — in BANKS,
//! high-prestige nodes are exactly the ones backward expansion keeps
//! revisiting); thereafter, every 1024 evictions the set is re-derived
//! from observed access counters, so a workload whose hot set drifts
//! away from prestige re-pins itself.
//!
//! # Why the adjacency slices are sound
//!
//! [`GraphStore`] methods hand out `&[u32]`/`&[f64]` borrowed, morally,
//! from a cache entry that eviction could free. The store prevents that
//! with a per-thread **keep-alive ring**: every adjacency access parks
//! an `Arc` of the decoded segment in a 64-slot thread-local ring
//! before returning, so the segment's arrays outlive the returned
//! slices for at least the next 63 adjacency accesses on that thread
//! regardless of what the shared cache does. This is the bounded
//! lifetime contract documented in `banks_graph::store`; the `unsafe`
//! below is exactly the lifetime extension that contract licenses.

use crate::blob::{
    encode_paged_blob, read_layout, seg_count_for, seg_edges, seg_range, segment_checksum,
    ByteSource, DEFAULT_SEG_SPAN,
};
use crate::budget::SharedBudget;
use crate::codec::{decode_segment, encode_segment, DecodedSegment};
use crate::error::PagerError;
use banks_graph::store::{GraphStore, StorageStats};
use banks_graph::{FxHashMap, FxHashSet, Graph, GraphPatch};
use std::cell::RefCell;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Slots in the per-thread keep-alive ring; a returned adjacency slice
/// stays valid for `RING_SLOTS − 1` further accesses on its thread.
const RING_SLOTS: usize = 64;

/// Evictions between re-derivations of the pinned set from access
/// counters.
const REPIN_EVERY: u64 = 1024;

/// Fraction of the memory budget reserved for the pinned hot set
/// (budget / PIN_FRACTION).
const PIN_FRACTION: usize = 4;

thread_local! {
    static KEEPALIVE: RefCell<(usize, Vec<Option<Arc<DecodedSegment>>>)> =
        RefCell::new((0, vec![None; RING_SLOTS]));
}

/// Park `seg` in this thread's keep-alive ring.
fn keep_alive(seg: &Arc<DecodedSegment>) {
    KEEPALIVE.with(|cell| {
        let (next, ring) = &mut *cell.borrow_mut();
        ring[*next] = Some(Arc::clone(seg));
        *next = (*next + 1) % RING_SLOTS;
    });
}

/// Extend a slice's lifetime to the caller's choosing.
///
/// # Safety
///
/// The slice's backing storage must be kept alive by an external
/// mechanism for as long as the caller is permitted (by the documented
/// contract) to use it — here, the keep-alive ring.
unsafe fn extend_slice<'a, T>(s: &[T]) -> &'a [T] {
    std::slice::from_raw_parts(s.as_ptr(), s.len())
}

/// Where one segment's encoded bytes live, plus its directory row.
#[derive(Debug, Clone)]
struct SegMeta {
    src: ByteSource,
    offset: u64,
    len: u32,
    slot_start: u32,
    min_pos_weight: f64,
    checksum: u64,
    /// Estimated decoded size (used by the pinning policy before the
    /// segment has ever been decoded).
    est_bytes: usize,
}

#[derive(Debug)]
struct CacheEntry {
    seg: Arc<DecodedSegment>,
    bytes: usize,
    last_use: u64,
}

/// All mutable paging state, under one lock.
#[derive(Debug)]
struct SegCache {
    /// Resident decoded segments, keyed by `dir * seg_count + seg`.
    map: FxHashMap<u32, CacheEntry>,
    /// Pin flags and access counters, indexed like `map`'s keys.
    pinned: Vec<bool>,
    access: Vec<u32>,
    resident_bytes: usize,
    tick: u64,
    evictions_since_repin: u64,
}

/// A segment-paged, budget-bounded graph store over a paged blob (see
/// [`crate::blob`] for the on-disk layout).
#[derive(Debug)]
pub struct PagedGraphStore {
    node_count: u32,
    edge_count: u32,
    seg_span: u32,
    seg_count: u32,
    node_weights: Box<[f64]>,
    min_edge_weight: f64,
    max_node_weight: f64,
    /// Forward then reverse metadata, `seg_count` entries each.
    metas: Vec<SegMeta>,
    /// Shared with the paged tuple store of the same snapshot, so
    /// `--memory-budget` bounds graph segments + tuple blocks together.
    budget: Arc<SharedBudget>,
    cache: Mutex<SegCache>,
    page_ins: AtomicU64,
    evictions: AtomicU64,
    decode_nanos: AtomicU64,
}

/// Estimated decoded size of a segment: local offsets + ids + weights
/// (+ the escore lane for forward segments).
fn est_decoded(span: u32, edges: u32, with_escores: bool) -> usize {
    (span as usize + 1) * 4 + edges as usize * (4 + 8 + if with_escores { 8 } else { 0 })
}

impl PagedGraphStore {
    /// Open a paged blob living at `[base, base + len)` of `file`.
    ///
    /// Reads and verifies the header, node-weight lane, and segment
    /// directories (rejecting torn or corrupt directories with a typed
    /// error); segment payloads stay on disk until first touch.
    pub fn open_file(
        file: Arc<File>,
        base: u64,
        len: u64,
        budget: usize,
    ) -> Result<Arc<PagedGraphStore>, PagerError> {
        PagedGraphStore::open_source(ByteSource::File { file, base, len }, SharedBudget::new(budget))
    }

    /// [`PagedGraphStore::open_file`] drawing from an existing shared
    /// budget (the bundle open path, where the tuple store draws from
    /// the same pool).
    pub fn open_file_shared(
        file: Arc<File>,
        base: u64,
        len: u64,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedGraphStore>, PagerError> {
        PagedGraphStore::open_source(ByteSource::File { file, base, len }, budget)
    }

    /// Open an in-memory paged blob (used for re-encoded epochs and
    /// tests; the *encoded* bytes stay resident, decoded segments are
    /// still paged and budgeted).
    pub fn open_mem(bytes: Arc<[u8]>, budget: usize) -> Result<Arc<PagedGraphStore>, PagerError> {
        PagedGraphStore::open_source(ByteSource::Mem(bytes), SharedBudget::new(budget))
    }

    /// [`PagedGraphStore::open_mem`] drawing from an existing shared
    /// budget (epoch re-encodes keep the snapshot-wide pool).
    pub fn open_mem_shared(
        bytes: Arc<[u8]>,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedGraphStore>, PagerError> {
        PagedGraphStore::open_source(ByteSource::Mem(bytes), budget)
    }

    /// Open a blob from any [`ByteSource`].
    pub fn open_source(
        src: ByteSource,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedGraphStore>, PagerError> {
        let layout = read_layout(&src)?;
        let seg_count = seg_count_for(layout.node_count, layout.seg_span);
        let mut metas = Vec::with_capacity(seg_count as usize * 2);
        for (dir, entries) in [(0u8, &layout.fwd), (1u8, &layout.rev)] {
            for (i, e) in entries.iter().enumerate() {
                let (first, end) = seg_range(i as u32, layout.seg_span, layout.node_count);
                metas.push(SegMeta {
                    src: src.clone(),
                    offset: e.offset,
                    len: e.len,
                    slot_start: e.slot_start,
                    min_pos_weight: e.min_pos_weight,
                    checksum: e.checksum,
                    est_bytes: est_decoded(
                        end - first,
                        seg_edges(entries, i, layout.edge_count),
                        dir == 0,
                    ),
                });
            }
        }
        let min_edge_weight = layout
            .fwd
            .iter()
            .map(|e| e.min_pos_weight)
            .fold(f64::INFINITY, f64::min);
        let max_node_weight = layout.node_weights.iter().copied().fold(0.0f64, f64::max);
        Ok(Arc::new(PagedGraphStore::assemble(
            layout.node_count,
            layout.edge_count as u32,
            layout.seg_span,
            layout.node_weights.into_boxed_slice(),
            min_edge_weight,
            max_node_weight,
            metas,
            budget,
        )))
    }

    /// Shared constructor: derives the initial prestige-pinned set and
    /// the empty cache.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        node_count: u32,
        edge_count: u32,
        seg_span: u32,
        node_weights: Box<[f64]>,
        min_edge_weight: f64,
        max_node_weight: f64,
        metas: Vec<SegMeta>,
        budget: Arc<SharedBudget>,
    ) -> PagedGraphStore {
        let seg_count = seg_count_for(node_count, seg_span);
        debug_assert_eq!(metas.len(), seg_count as usize * 2);

        // Initial pinned set: rank segments by node-prestige mass and
        // pin (both directions of) the heaviest until the estimated
        // pinned footprint reaches budget / PIN_FRACTION.
        let mut pinned = vec![false; metas.len()];
        let pin_target = budget.total() / PIN_FRACTION;
        let mut order: Vec<u32> = (0..seg_count).collect();
        let mass = |s: u32| -> f64 {
            let (first, end) = seg_range(s, seg_span, node_count);
            node_weights[first as usize..end as usize].iter().sum()
        };
        order.sort_by(|&a, &b| mass(b).total_cmp(&mass(a)).then(a.cmp(&b)));
        let mut pinned_est = 0usize;
        'pin: for s in order {
            for dir in 0..2u32 {
                let key = (dir * seg_count + s) as usize;
                let est = metas[key].est_bytes;
                if pinned_est + est > pin_target {
                    break 'pin;
                }
                pinned[key] = true;
                pinned_est += est;
            }
        }

        PagedGraphStore {
            node_count,
            edge_count,
            seg_span,
            seg_count,
            node_weights,
            min_edge_weight,
            max_node_weight,
            metas,
            budget,
            cache: Mutex::new(SegCache {
                map: FxHashMap::default(),
                pinned,
                access: vec![0; seg_count as usize * 2],
                resident_bytes: 0,
                tick: 0,
                evictions_since_repin: 0,
            }),
            page_ins: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            decode_nanos: AtomicU64::new(0),
        }
    }

    /// The configured memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget.total()
    }

    /// The shared budget pool this store draws from.
    pub fn shared_budget(&self) -> &Arc<SharedBudget> {
        &self.budget
    }

    /// The segment span this store was encoded with.
    pub fn seg_span(&self) -> u32 {
        self.seg_span
    }

    /// Fully decode the blob behind `src` into an in-RAM [`Graph`] —
    /// the non-paged bundle load path. Only forward segments are
    /// decoded; the reverse CSR (and the escore lane) are re-derived by
    /// [`Graph::from_csr`], exactly as the snapshot reader does.
    pub fn decode_full(src: &ByteSource) -> Result<Graph, PagerError> {
        let layout = read_layout(src)?;
        let n = layout.node_count;
        let m = layout.edge_count as usize;
        let mut fwd_offsets = Vec::with_capacity(n as usize + 1);
        fwd_offsets.push(0u32);
        let mut fwd_targets: Vec<u32> = Vec::with_capacity(m);
        let mut fwd_weights: Vec<f64> = Vec::with_capacity(m);
        for (i, entry) in layout.fwd.iter().enumerate() {
            let (first, end) = seg_range(i as u32, layout.seg_span, n);
            let edges = seg_edges(&layout.fwd, i, layout.edge_count);
            let mut payload = vec![0u8; entry.len as usize];
            src.read_at(entry.offset, &mut payload)?;
            if segment_checksum(&payload) != entry.checksum {
                return Err(PagerError::BadSegmentChecksum {
                    direction: "fwd",
                    segment: i as u32,
                });
            }
            let seg = decode_segment(
                &payload,
                end - first,
                edges,
                first,
                entry.slot_start,
                n,
                f64::NAN,
                false,
            )?;
            for node in first..end {
                let (_, ids, weights) = seg.adjacency(node);
                fwd_targets.extend_from_slice(ids);
                fwd_weights.extend_from_slice(weights);
                fwd_offsets.push(fwd_targets.len() as u32);
            }
        }
        if fwd_targets.len() != m {
            return Err(PagerError::Malformed(
                "segments disagree with edge count".to_string(),
            ));
        }
        Ok(Graph::from_csr(
            layout.node_weights,
            fwd_offsets,
            fwd_targets,
            fwd_weights,
        ))
    }

    /// Fetch (paging in if needed) the decoded segment `seg` of
    /// direction `dir` (0 = forward, 1 = reverse).
    ///
    /// # Panics
    ///
    /// On I/O failure or a payload checksum/structure failure — the
    /// adjacency accessors have no error channel. Directory-level
    /// corruption is caught (typed) at open instead.
    fn segment(&self, dir: u32, seg: u32) -> Arc<DecodedSegment> {
        let key = dir * self.seg_count + seg;
        let mut cache = self.cache.lock().expect("segment cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        cache.access[key as usize] = cache.access[key as usize].saturating_add(1);
        if let Some(entry) = cache.map.get_mut(&key) {
            entry.last_use = tick;
            return Arc::clone(&entry.seg);
        }

        // Page-in. Decoding under the lock serializes concurrent
        // faults, which also guarantees each segment is decoded once.
        let meta = &self.metas[key as usize];
        let start = Instant::now();
        banks_util::fault::maybe_fault("pager.page_in")
            .unwrap_or_else(|e| panic!("paged graph read failed: {e}"));
        let mut payload = vec![0u8; meta.len as usize];
        meta.src
            .read_at(meta.offset, &mut payload)
            .unwrap_or_else(|e| panic!("paged graph read failed: {e}"));
        let direction = if dir == 0 { "fwd" } else { "rev" };
        if segment_checksum(&payload) != meta.checksum {
            panic!(
                "{}",
                PagerError::BadSegmentChecksum {
                    direction,
                    segment: seg,
                }
            );
        }
        let (first, end) = seg_range(seg, self.seg_span, self.node_count);
        let edges = self.seg_edge_count(dir, seg);
        let decoded = decode_segment(
            &payload,
            end - first,
            edges,
            first,
            meta.slot_start,
            self.node_count,
            self.min_edge_weight,
            dir == 0,
        )
        .unwrap_or_else(|e| panic!("paged graph {direction} segment {seg}: {e}"));
        self.decode_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.page_ins.fetch_add(1, Ordering::Relaxed);

        let seg_arc = Arc::new(decoded);
        let bytes = seg_arc.bytes();
        cache.map.insert(
            key,
            CacheEntry {
                seg: Arc::clone(&seg_arc),
                bytes,
                last_use: tick,
            },
        );
        cache.resident_bytes += bytes;
        self.budget.add(bytes);
        self.evict_to_budget(&mut cache, key);
        seg_arc
    }

    /// Edge count of segment `seg` in direction `dir` per the directory.
    fn seg_edge_count(&self, dir: u32, seg: u32) -> u32 {
        let base = (dir * self.seg_count) as usize;
        let entries = &self.metas[base..base + self.seg_count as usize];
        let next = entries
            .get(seg as usize + 1)
            .map(|m| m.slot_start)
            .unwrap_or(self.edge_count);
        next - entries[seg as usize].slot_start
    }

    /// Evict LRU unpinned segments (never `just_inserted`) until the
    /// resident total fits the budget; periodically re-derive the
    /// pinned set from access counters.
    fn evict_to_budget(&self, cache: &mut SegCache, just_inserted: u32) {
        while self.budget.over() {
            let victim = cache
                .map
                .iter()
                .filter(|(&k, _)| k != just_inserted && !cache.pinned[k as usize])
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k);
            let Some(key) = victim else { break };
            let entry = cache.map.remove(&key).expect("victim present");
            cache.resident_bytes -= entry.bytes;
            self.budget.sub(entry.bytes);
            cache.evictions_since_repin += 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if cache.evictions_since_repin >= REPIN_EVERY {
            cache.evictions_since_repin = 0;
            self.repin_from_access(cache);
        }
    }

    /// Re-derive the pinned set: greedily pin the most-accessed
    /// segments until the estimated pinned footprint reaches
    /// budget / PIN_FRACTION, unpinning everything else.
    fn repin_from_access(&self, cache: &mut SegCache) {
        let pin_target = self.budget.total() / PIN_FRACTION;
        let mut order: Vec<usize> = (0..cache.access.len()).collect();
        order.sort_by_key(|&k| (std::cmp::Reverse(cache.access[k]), k));
        cache.pinned.fill(false);
        let mut pinned_est = 0usize;
        for k in order {
            if cache.access[k] == 0 {
                break;
            }
            let est = self.metas[k].est_bytes;
            if pinned_est + est > pin_target {
                continue;
            }
            cache.pinned[k] = true;
            pinned_est += est;
        }
        // Decay counters so the next window reflects fresh traffic.
        for a in &mut cache.access {
            *a /= 2;
        }
    }

    /// Adjacency of `node` in direction `dir`, with the keep-alive
    /// lifetime extension the module docs describe.
    fn adjacency(&self, dir: u32, node: u32) -> (u32, &[u32], &[f64]) {
        assert!(node < self.node_count, "node out of range");
        let seg = self.segment(dir, node / self.seg_span);
        keep_alive(&seg);
        let (slot, ids, weights) = seg.adjacency(node);
        // SAFETY: `seg` was just parked in this thread's keep-alive
        // ring, so its arrays outlive the returned slices for the next
        // RING_SLOTS − 1 adjacency accesses on this thread — the
        // documented contract of `banks_graph::store`.
        unsafe { (slot, extend_slice(ids), extend_slice(weights)) }
    }

    /// Owning segment index (within a direction's directory) of a
    /// global CSR slot.
    fn seg_of_slot(&self, dir: u32, slot: u32) -> u32 {
        let base = (dir * self.seg_count) as usize;
        let entries = &self.metas[base..base + self.seg_count as usize];
        (entries.partition_point(|m| m.slot_start <= slot) - 1) as u32
    }

    /// Copy-on-write patch application: see [`GraphStore::apply_patch`].
    fn apply_patch_cow(&self, patch: &GraphPatch) -> Option<Graph> {
        if !patch.remap_is_identity_extend() {
            return None;
        }
        let old_n = self.node_count;
        let new_n = u32::try_from(patch.new_node_weights().len()).ok()?;
        debug_assert!(new_n >= old_n);
        let span = self.seg_span;
        let new_seg_count = seg_count_for(new_n, span);

        // Segments whose payload must be re-encoded: those owning a
        // dirty pair's endpoint, plus every segment whose node range
        // includes appended nodes (their spans grew).
        let mut fwd_dirty: FxHashSet<u32> = FxHashSet::default();
        let mut rev_dirty: FxHashSet<u32> = FxHashSet::default();
        for (f, t) in patch.dirty() {
            debug_assert!(f < new_n && t < new_n);
            fwd_dirty.insert(f / span);
            rev_dirty.insert(t / span);
        }
        if new_n > old_n {
            for s in (old_n / span)..new_seg_count {
                fwd_dirty.insert(s);
                rev_dirty.insert(s);
            }
        }

        // Replacements re-sorted by (to, from) for reverse-direction
        // merging; `patch.apply` normalized the (from, to) order.
        let repl = patch.replacements();
        let mut rev_repl: Vec<(u32, u32, f64)> = repl.iter().map(|&(f, t, w)| (t, f, w)).collect();
        rev_repl.sort_unstable_by_key(|a| (a.0, a.1));

        let mut metas = Vec::with_capacity(new_seg_count as usize * 2);
        let mut totals = [0u64; 2];
        for dir in 0..2u32 {
            let dirty = if dir == 0 { &fwd_dirty } else { &rev_dirty };
            let mut slot_start = 0u64;
            for s in 0..new_seg_count {
                if !dirty.contains(&s) {
                    // Clean segment: share the encoded bytes; only its
                    // slot_start can shift.
                    let old = &self.metas[(dir * self.seg_count + s) as usize];
                    let edges = self.seg_edge_count(dir, s);
                    metas.push(SegMeta {
                        slot_start: u32::try_from(slot_start).ok()?,
                        ..old.clone()
                    });
                    slot_start += u64::from(edges);
                    continue;
                }
                let (first, end) = seg_range(s, span, new_n);
                let mut lists: Vec<(Vec<u32>, Vec<f64>)> =
                    Vec::with_capacity((end - first) as usize);
                for node in first..end {
                    lists.push(self.merge_node(dir, node, old_n, patch, repl, &rev_repl));
                }
                let borrowed: Vec<(&[u32], &[f64])> = lists
                    .iter()
                    .map(|(ids, ws)| (ids.as_slice(), ws.as_slice()))
                    .collect();
                let mut payload = Vec::new();
                let min_pos = encode_segment(&borrowed, &mut payload);
                let edges: usize = lists.iter().map(|(ids, _)| ids.len()).sum();
                let (first_new, end_new) = (first, end);
                metas.push(SegMeta {
                    checksum: segment_checksum(&payload),
                    len: u32::try_from(payload.len()).ok()?,
                    src: ByteSource::Mem(payload.into()),
                    offset: 0,
                    slot_start: u32::try_from(slot_start).ok()?,
                    min_pos_weight: min_pos,
                    est_bytes: est_decoded(end_new - first_new, edges as u32, dir == 0),
                });
                slot_start += edges as u64;
            }
            totals[dir as usize] = slot_start;
        }
        debug_assert_eq!(totals[0], totals[1], "fwd/rev edge totals diverge");
        let new_m = u32::try_from(totals[0]).ok()?;

        let min_edge_weight = metas[..new_seg_count as usize]
            .iter()
            .map(|m| m.min_pos_weight)
            .fold(f64::INFINITY, f64::min);
        let node_weights: Box<[f64]> = patch.new_node_weights().into();
        let max_node_weight = node_weights.iter().copied().fold(0.0f64, f64::max);

        Some(Graph::from_store(Arc::new(PagedGraphStore::assemble(
            new_n,
            new_m,
            span,
            node_weights,
            min_edge_weight,
            max_node_weight,
            metas,
            Arc::clone(&self.budget),
        ))))
    }

    /// The patched adjacency list of one node: the old list minus dirty
    /// pairs, merged (by neighbor id) with the replacement edges aimed
    /// at this node. `repl` is sorted by `(from, to)` and `rev_repl` by
    /// `(to, from)`, so each node's replacements are a contiguous run.
    fn merge_node(
        &self,
        dir: u32,
        node: u32,
        old_n: u32,
        patch: &GraphPatch,
        repl: &[(u32, u32, f64)],
        rev_repl: &[(u32, u32, f64)],
    ) -> (Vec<u32>, Vec<f64>) {
        let keyed = if dir == 0 { repl } else { rev_repl };
        let lo = keyed.partition_point(|&(a, _, _)| a < node);
        let hi = keyed.partition_point(|&(a, _, _)| a <= node);
        let mine = &keyed[lo..hi];

        let mut ids = Vec::new();
        let mut weights = Vec::new();
        let mut r = 0usize;
        if node < old_n {
            let seg = self.segment(dir, node / self.seg_span);
            let (_, old_ids, old_ws) = seg.adjacency(node);
            for (&other, &w) in old_ids.iter().zip(old_ws) {
                let live = if dir == 0 {
                    !patch.is_dirty(node, other)
                } else {
                    !patch.is_dirty(other, node)
                };
                if !live {
                    continue;
                }
                while r < mine.len() && mine[r].1 < other {
                    ids.push(mine[r].1);
                    weights.push(mine[r].2);
                    r += 1;
                }
                debug_assert!(
                    r >= mine.len() || mine[r].1 != other,
                    "replacement edges must target dirty pairs only"
                );
                ids.push(other);
                weights.push(w);
            }
        }
        for &(_, other, w) in &mine[r..] {
            ids.push(other);
            weights.push(w);
        }
        (ids, weights)
    }
}

impl GraphStore for PagedGraphStore {
    fn node_count(&self) -> usize {
        self.node_count as usize
    }

    fn edge_count(&self) -> usize {
        self.edge_count as usize
    }

    #[inline]
    fn node_weight(&self, node: u32) -> f64 {
        self.node_weights[node as usize]
    }

    fn min_edge_weight(&self) -> f64 {
        self.min_edge_weight
    }

    fn max_node_weight(&self) -> f64 {
        self.max_node_weight
    }

    fn out_adjacency_slots(&self, node: u32) -> (u32, &[u32], &[f64]) {
        self.adjacency(0, node)
    }

    fn in_adjacency_slots(&self, node: u32) -> (u32, &[u32], &[f64]) {
        self.adjacency(1, node)
    }

    fn out_escores(&self, node: u32) -> &[f64] {
        assert!(node < self.node_count, "node out of range");
        let seg = self.segment(0, node / self.seg_span);
        keep_alive(&seg);
        let escores = seg.escores_of(node);
        // SAFETY: as in `adjacency` — the segment was just parked in
        // the keep-alive ring.
        unsafe { extend_slice(escores) }
    }

    fn fwd_weight_at(&self, slot: u32) -> f64 {
        let seg = self.seg_of_slot(0, slot);
        self.segment(0, seg).weight_at(slot)
    }

    fn rev_weight_at(&self, slot: u32) -> f64 {
        let seg = self.seg_of_slot(1, slot);
        self.segment(1, seg).weight_at(slot)
    }

    fn memory_bytes(&self) -> usize {
        let cache = self.cache.lock().expect("segment cache poisoned");
        self.node_weights.len() * 8
            + self.metas.len() * std::mem::size_of::<SegMeta>()
            + cache.resident_bytes
    }

    fn storage_stats(&self) -> StorageStats {
        let cache = self.cache.lock().expect("segment cache poisoned");
        let pinned_resident: usize = cache
            .map
            .iter()
            .filter(|(&k, _)| cache.pinned[k as usize])
            .map(|(_, e)| e.bytes)
            .sum();
        StorageStats {
            resident_bytes: cache.resident_bytes,
            pinned_bytes: pinned_resident,
            budget_bytes: self.budget.total(),
            segment_count: self.metas.len(),
            resident_segments: cache.map.len(),
            pinned_segments: cache.pinned.iter().filter(|&&p| p).count(),
            page_ins: self.page_ins.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            decode_nanos: self.decode_nanos.load(Ordering::Relaxed),
        }
    }

    fn apply_patch(&self, patch: &GraphPatch) -> Option<Graph> {
        self.apply_patch_cow(patch)
    }

    fn reencode(&self, graph: &Graph) -> Option<Arc<dyn GraphStore>> {
        let blob = encode_paged_blob(graph, self.seg_span);
        let store = PagedGraphStore::open_mem_shared(blob.into(), Arc::clone(&self.budget))
            .expect("freshly encoded blob must be valid");
        Some(store)
    }
}

impl Drop for PagedGraphStore {
    fn drop(&mut self) {
        // Return this store's resident bytes to the shared pool so a
        // dropped epoch doesn't starve the stores that replaced it.
        let resident = self.cache.get_mut().map(|c| c.resident_bytes).unwrap_or(0);
        self.budget.sub(resident);
    }
}

/// Encode `graph` and reopen it as a paged store with the given budget
/// — the one-call path tests and tools use.
pub fn page_graph(
    graph: &Graph,
    seg_span: Option<u32>,
    budget: usize,
) -> Result<Arc<PagedGraphStore>, PagerError> {
    let blob = encode_paged_blob(graph, seg_span.unwrap_or(DEFAULT_SEG_SPAN));
    PagedGraphStore::open_mem(blob.into(), budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, NodeId};

    /// A deterministic pseudo-random graph with a few distinct weights
    /// (dictionary-friendly, like real schema-derived weights).
    fn scrambled_graph(n: u32, edges_per_node: u32, seed: u64) -> Graph {
        let mut b = GraphBuilder::with_capacity(n as usize, (n * edges_per_node) as usize);
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(1.0 + (i % 7) as f64)).collect();
        let weights = [0.5, 1.0, 2.0, 3.5];
        for i in 0..n {
            for _ in 0..edges_per_node {
                let to = next() % n;
                let w = weights[(next() % 4) as usize];
                b.add_edge(ids[i as usize], ids[to as usize], w);
            }
        }
        b.build()
    }

    fn assert_graphs_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.min_edge_weight().to_bits(), b.min_edge_weight().to_bits());
        assert_eq!(a.max_node_weight().to_bits(), b.max_node_weight().to_bits());
        for v in a.nodes() {
            assert_eq!(a.node_weight(v).to_bits(), b.node_weight(v).to_bits());
            let (alo, at, aw) = a.out_adjacency_slots(v);
            let (blo, bt, bw) = b.out_adjacency_slots(v);
            assert_eq!((alo, at.to_vec()), (blo, bt.to_vec()));
            assert_eq!(
                aw.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                bw.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                a.out_escores(v)
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                b.out_escores(v)
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>()
            );
            let (rlo, rs, rw) = a.in_adjacency_slots(v);
            let (blo2, bs, bw2) = b.in_adjacency_slots(v);
            assert_eq!((rlo, rs.to_vec()), (blo2, bs.to_vec()));
            assert_eq!(
                rw.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                bw2.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            );
        }
        for slot in 0..a.edge_count() as u32 {
            assert_eq!(
                a.fwd_weight_at(slot).to_bits(),
                b.fwd_weight_at(slot).to_bits()
            );
            assert_eq!(
                a.rev_weight_at(slot).to_bits(),
                b.rev_weight_at(slot).to_bits()
            );
        }
    }

    #[test]
    fn paged_accessors_match_in_ram_under_tiny_budget() {
        let g = scrambled_graph(500, 3, 42);
        // Span 16 → ~32 segments per direction; a 16 KB budget forces
        // constant eviction while the comparison sweeps every node.
        let store = page_graph(&g, Some(16), 16 << 10).unwrap();
        let paged = Graph::from_store(store.clone());
        assert_graphs_identical(&g, &paged);
        let stats = store.storage_stats();
        assert!(stats.page_ins > 0, "no page-ins recorded");
        assert!(stats.evictions > 0, "tiny budget must evict");
        assert!(stats.decode_nanos > 0);
        assert_eq!(stats.budget_bytes, 16 << 10);
        // Resident never exceeds budget by more than one segment (the
        // just-inserted one is never its own victim).
        let largest = (0..stats.segment_count).map(|_| 0usize).max().unwrap_or(0);
        let _ = largest;
        assert!(
            stats.resident_bytes <= stats.budget_bytes + 16 * 1024,
            "resident {} way past budget {}",
            stats.resident_bytes,
            stats.budget_bytes
        );
    }

    #[test]
    fn decode_full_round_trips() {
        let g = scrambled_graph(200, 4, 7);
        let blob = encode_paged_blob(&g, 32);
        let src = ByteSource::Mem(blob.into());
        let back = PagedGraphStore::decode_full(&src).unwrap();
        assert_graphs_identical(&g, &back);
        assert!(back.store().is_none(), "decode_full yields in-RAM");
    }

    #[test]
    fn open_file_pages_from_disk() {
        let g = scrambled_graph(120, 3, 3);
        let blob = encode_paged_blob(&g, 16);
        let dir = std::env::temp_dir().join(format!(
            "banks_pager_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.pgr");
        std::fs::write(&path, &blob).unwrap();
        let file = Arc::new(File::open(&path).unwrap());
        let store = PagedGraphStore::open_file(file, 0, blob.len() as u64, 1 << 20).unwrap();
        assert_graphs_identical(&g, &Graph::from_store(store));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_corrupt_directory_rejected_with_typed_error() {
        let g = scrambled_graph(100, 3, 9);
        let blob = encode_paged_blob(&g, 16);

        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        match PagedGraphStore::open_mem(bad.into(), 1 << 20) {
            Err(PagerError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }

        // A flipped byte inside the directory (node-weight lane or
        // entries) must surface as a checksum mismatch.
        let mut torn = blob.clone();
        torn[40] ^= 0x01;
        match PagedGraphStore::open_mem(torn.into(), 1 << 20) {
            Err(
                PagerError::BadDirectoryChecksum | PagerError::Malformed(_) | PagerError::Truncated,
            ) => {}
            other => panic!("expected typed directory error, got {other:?}"),
        }

        // Truncated mid-directory.
        let cut = blob[..64].to_vec();
        match PagedGraphStore::open_mem(cut.into(), 1 << 20) {
            Err(PagerError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_segment_payload_detected_on_full_decode() {
        let g = scrambled_graph(100, 3, 11);
        let mut blob = encode_paged_blob(&g, 16);
        // Flip a byte provably inside a forward segment payload (the
        // ones decode_full actually reads) by consulting the directory.
        let layout = crate::blob::read_layout(&ByteSource::Mem(blob.clone().into())).unwrap();
        let target = layout.fwd[0].offset as usize + 2;
        blob[target] ^= 0x40;
        let src = ByteSource::Mem(blob.into());
        match PagedGraphStore::decode_full(&src) {
            Err(PagerError::BadSegmentChecksum { .. }) => {}
            other => panic!("expected BadSegmentChecksum, got {other:?}"),
        }
    }

    #[test]
    fn cow_patch_matches_in_ram_patch() {
        let g = scrambled_graph(300, 3, 21);
        let paged = Graph::from_store(page_graph(&g, Some(16), 1 << 20).unwrap());

        // Identity remap + two appended nodes, edits spread across
        // segments.
        let old_n = g.node_count();
        let remap: Vec<Option<u32>> = (0..old_n as u32).map(Some).collect();
        let mut weights: Vec<f64> = g.nodes().map(|v| g.node_weight(v)).collect();
        weights.push(5.0);
        weights.push(6.0);
        let build_patch = || {
            let mut p = GraphPatch::new(remap.clone(), weights.clone());
            p.set_edge(NodeId(3), NodeId(250), 0.25);
            p.mark_dirty(NodeId(10), NodeId(11));
            p.set_edge(NodeId(old_n as u32), NodeId(0), 1.5);
            p.set_edge(NodeId(17), NodeId(old_n as u32 + 1), 2.5);
            // Touch an existing pair too: replace whatever 40→? had.
            let (targets, _) = g.out_adjacency(NodeId(40));
            if let Some(&t) = targets.first() {
                p.set_edge(NodeId(40), NodeId(t), 0.125);
            }
            p
        };
        let expect = build_patch().apply(&g);
        let got = build_patch().apply(&paged);
        assert!(got.store().is_some(), "COW result must stay paged");
        assert_graphs_identical(&expect, &got);
    }

    #[test]
    fn non_identity_remap_falls_back_to_reencode() {
        let g = scrambled_graph(120, 3, 33);
        let paged = Graph::from_store(page_graph(&g, Some(16), 1 << 20).unwrap());
        // Remove node 5: ids shift, the COW fast path must decline.
        let remap: Vec<Option<u32>> = (0..g.node_count() as u32)
            .map(|i| match i.cmp(&5) {
                std::cmp::Ordering::Less => Some(i),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(i - 1),
            })
            .collect();
        let weights: Vec<f64> = g
            .nodes()
            .filter(|v| v.0 != 5)
            .map(|v| g.node_weight(v))
            .collect();
        let expect = GraphPatch::new(remap.clone(), weights.clone()).apply(&g);
        let got = GraphPatch::new(remap, weights).apply(&paged);
        assert!(got.store().is_some(), "fallback must re-encode to paged");
        assert_graphs_identical(&expect, &got);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let store = page_graph(&g, None, 0).unwrap();
        let paged = Graph::from_store(store);
        assert_eq!(paged.node_count(), 0);
        assert_eq!(paged.edge_count(), 0);
        assert!(paged.min_edge_weight().is_infinite());
        assert_eq!(paged.max_node_weight(), 0.0);
    }
}
