//! Typed failures of the paged store.

use std::io;

/// Errors raised while opening a paged blob or paging in a segment.
///
/// The open path (`PagedGraphStore::open_*`) validates the header and
/// segment directory eagerly, so a torn or corrupted directory is
/// rejected before the store is ever handed out; segment payloads are
/// only checksummed on first touch, and a payload failure surfaces as a
/// panic carrying [`PagerError::BadSegmentChecksum`]'s message (the
/// store cannot return partial adjacency).
#[derive(Debug)]
pub enum PagerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a paged graph blob (bad magic), or an incompatible version.
    BadMagic,
    /// The blob is shorter than its header + directory claim.
    Truncated,
    /// The header/directory checksum does not match: the segment
    /// directory is torn or corrupted.
    BadDirectoryChecksum,
    /// A segment payload failed its checksum at page-in time.
    BadSegmentChecksum {
        /// `"fwd"` or `"rev"`.
        direction: &'static str,
        /// Segment index within that direction.
        segment: u32,
    },
    /// Structurally invalid content (offsets out of range, degrees
    /// inconsistent with the directory, malformed varints, …).
    Malformed(String),
}

impl std::fmt::Display for PagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagerError::Io(e) => write!(f, "io error: {e}"),
            PagerError::BadMagic => write!(f, "not a BANKS paged graph blob"),
            PagerError::Truncated => write!(f, "paged graph blob is truncated"),
            PagerError::BadDirectoryChecksum => {
                write!(f, "paged graph segment directory checksum mismatch")
            }
            PagerError::BadSegmentChecksum { direction, segment } => {
                write!(f, "checksum mismatch in {direction} segment {segment}")
            }
            PagerError::Malformed(m) => write!(f, "malformed paged graph blob: {m}"),
        }
    }
}

impl std::error::Error for PagerError {}

impl From<io::Error> for PagerError {
    fn from(e: io::Error) -> Self {
        PagerError::Io(e)
    }
}
