//! [`PagedTupleStore`]: the out-of-core [`TupleStore`] backend.
//!
//! The v3 DATA section (see `banks_storage::blocks`) keeps tuples in
//! fixed-span slot blocks behind a checksummed directory. Opening the
//! store reads and verifies only the directory and the per-relation
//! PK→slot lanes — O(blocks) work — while tuple blocks stay on disk
//! until an answer rendering, `/node` browse, or PK confirmation first
//! touches them: one positioned read, a checksum, and a varint decode.
//!
//! Residency is bounded by the [`SharedBudget`] the paged *graph* store
//! uses too, so `--memory-budget` caps graph segments and tuple blocks
//! together. Eviction is LRU with an access-pinned hot set re-derived
//! every [`REPIN_EVERY`] evictions, mirroring the graph store's policy.
//!
//! The borrow-soundness story is identical to the graph store's: lazy
//! `Database` accessors park the decoded block `Arc` in a per-thread
//! keep-alive ring (owned by `banks_storage::blocks`) before handing
//! out `&Tuple` / `&[BackRef]` borrows.

use crate::blob::ByteSource;
use crate::budget::SharedBudget;
use crate::error::PagerError;
use banks_graph::FxHashMap;
use banks_storage::blocks::{checksum64, decode_block, lane_candidates, DataLayout};
use banks_storage::bundle::schema_from_text;
use banks_storage::{StorageError, TupleBlock, TupleStore, TupleStoreStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Evictions between re-derivations of the pinned set from access
/// counters (same cadence as the graph store).
const REPIN_EVERY: u64 = 1024;

/// Fraction of the budget the pinned hot set may occupy.
const PIN_FRACTION: usize = 4;

#[derive(Debug)]
struct CacheEntry {
    block: Arc<TupleBlock>,
    bytes: usize,
    last_use: u64,
}

/// All mutable paging state, under one lock. Keys are
/// `rel << 32 | block`.
#[derive(Debug, Default)]
struct BlockCache {
    map: FxHashMap<u64, CacheEntry>,
    access: FxHashMap<u64, u32>,
    pinned: FxHashMap<u64, ()>,
    resident_bytes: usize,
    tick: u64,
    evictions_since_repin: u64,
}

fn cache_key(rel: u32, block: u32) -> u64 {
    (u64::from(rel) << 32) | u64::from(block)
}

/// A block-paged, budget-bounded tuple store over a v3 DATA section.
#[derive(Debug)]
pub struct PagedTupleStore {
    src: ByteSource,
    layout: DataLayout,
    /// Resident PK lanes, one per relation (12 bytes per live keyed
    /// tuple — the lane is the point-lookup index, it stays hot).
    lanes: Vec<Arc<[u8]>>,
    /// Tuple arity per relation, from the recorded schema.
    arities: Vec<usize>,
    budget: Arc<SharedBudget>,
    cache: Mutex<BlockCache>,
    page_ins: AtomicU64,
    evictions: AtomicU64,
    decode_nanos: AtomicU64,
}

fn malformed(e: StorageError) -> PagerError {
    PagerError::Malformed(e.to_string())
}

impl PagedTupleStore {
    /// Open a v3 DATA section living at `[base, base + len)` of `file`.
    pub fn open_file(
        file: Arc<std::fs::File>,
        base: u64,
        len: u64,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedTupleStore>, PagerError> {
        PagedTupleStore::open_source(ByteSource::File { file, base, len }, budget)
    }

    /// Open an in-memory v3 DATA section (re-encoded epochs and tests).
    pub fn open_mem(
        bytes: Arc<[u8]>,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedTupleStore>, PagerError> {
        PagedTupleStore::open_source(ByteSource::Mem(bytes), budget)
    }

    /// Open a section from any [`ByteSource`]: read and verify the
    /// checksummed directory and the PK lanes (typed errors), leave
    /// every tuple block on disk.
    pub fn open_source(
        src: ByteSource,
        budget: Arc<SharedBudget>,
    ) -> Result<Arc<PagedTupleStore>, PagerError> {
        let mut prefix = [0u8; banks_storage::blocks::HEADER_PREFIX];
        if src.len() < prefix.len() as u64 {
            return Err(PagerError::Truncated);
        }
        src.read_at(0, &mut prefix)?;
        let span = DataLayout::header_span(&prefix).map_err(malformed)?;
        if src.len() < (prefix.len() + span) as u64 {
            return Err(PagerError::Truncated);
        }
        let mut header = vec![0u8; prefix.len() + span];
        src.read_at(0, &mut header)?;
        let layout = DataLayout::parse(&header).map_err(malformed)?;
        let arities: Vec<usize> = {
            let db = schema_from_text(&layout.schema_text).map_err(malformed)?;
            db.relations().map(|t| t.schema().arity()).collect()
        };
        if arities.len() != layout.relations.len() {
            return Err(PagerError::Malformed(format!(
                "schema declares {} relations, directory {}",
                arities.len(),
                layout.relations.len()
            )));
        }
        let mut lanes = Vec::with_capacity(layout.relations.len());
        for (i, rel) in layout.relations.iter().enumerate() {
            if rel.pk_lane.offset + rel.pk_lane.len > src.len() {
                return Err(PagerError::Truncated);
            }
            let mut lane = vec![0u8; rel.pk_lane.len as usize];
            src.read_at(rel.pk_lane.offset, &mut lane)?;
            if checksum64(&lane) != rel.pk_lane.checksum {
                return Err(PagerError::Malformed(format!(
                    "pk lane checksum mismatch in relation #{i}"
                )));
            }
            lanes.push(lane.into());
        }
        Ok(Arc::new(PagedTupleStore {
            src,
            layout,
            lanes,
            arities,
            budget,
            cache: Mutex::new(BlockCache::default()),
            page_ins: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            decode_nanos: AtomicU64::new(0),
        }))
    }

    /// The parsed directory (replica bootstrap and `snapshot inspect`
    /// read per-relation live counts straight from it).
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// The shared budget this store draws from.
    pub fn shared_budget(&self) -> &Arc<SharedBudget> {
        &self.budget
    }

    /// Evict LRU unpinned blocks (never `just_inserted`) until the
    /// *shared* total fits the budget or nothing local is evictable;
    /// periodically re-derive the pinned set from access counters.
    fn evict_to_budget(&self, cache: &mut BlockCache, just_inserted: u64) {
        while self.budget.over() {
            let victim = cache
                .map
                .iter()
                .filter(|(&k, _)| k != just_inserted && !cache.pinned.contains_key(&k))
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k);
            let Some(key) = victim else { break };
            let entry = cache.map.remove(&key).expect("victim present");
            cache.resident_bytes -= entry.bytes;
            self.budget.sub(entry.bytes);
            cache.evictions_since_repin += 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if cache.evictions_since_repin >= REPIN_EVERY {
            cache.evictions_since_repin = 0;
            self.repin_from_access(cache);
        }
    }

    /// Re-derive the pinned set: greedily pin the most-accessed blocks
    /// until the estimated pinned footprint reaches
    /// budget / PIN_FRACTION. Estimates use the encoded length (a
    /// lower bound on the decoded size — close enough for a cap).
    fn repin_from_access(&self, cache: &mut BlockCache) {
        let pin_target = self.budget.total() / PIN_FRACTION;
        let mut order: Vec<(u64, u32)> = cache
            .access
            .iter()
            .map(|(&k, &count)| (k, count))
            .collect();
        order.sort_by_key(|&(k, count)| (std::cmp::Reverse(count), k));
        cache.pinned.clear();
        let mut pinned_est = 0usize;
        for (key, count) in order {
            if count == 0 {
                break;
            }
            let (rel, block) = ((key >> 32) as u32, key as u32);
            let est = self.layout.relations[rel as usize].blocks[block as usize].len as usize;
            if pinned_est + est > pin_target {
                continue;
            }
            cache.pinned.insert(key, ());
            pinned_est += est;
        }
        for count in cache.access.values_mut() {
            *count /= 2;
        }
    }
}

impl TupleStore for PagedTupleStore {
    fn relation_count(&self) -> usize {
        self.layout.relations.len()
    }

    fn block_span(&self) -> u32 {
        self.layout.block_span
    }

    fn slot_count(&self, rel: u32) -> u32 {
        self.layout.relations[rel as usize].slot_count
    }

    fn live_count(&self, rel: u32) -> usize {
        self.layout.relations[rel as usize].live_count as usize
    }

    fn link_count(&self) -> u64 {
        self.layout.link_count
    }

    fn is_live(&self, rel: u32, slot: u32) -> bool {
        self.layout.relations[rel as usize].is_live(slot)
    }

    /// Fetch (paging in if needed) block `block` of relation `rel`.
    ///
    /// # Panics
    ///
    /// On I/O failure or a payload checksum/structure failure — the
    /// tuple accessors have no error channel (same contract as the
    /// paged graph store). Directory corruption is caught, typed, at
    /// open instead.
    fn block(&self, rel: u32, block: u32) -> Arc<TupleBlock> {
        let key = cache_key(rel, block);
        let mut cache = self.cache.lock().expect("tuple block cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        let counter = cache.access.entry(key).or_insert(0);
        *counter = counter.saturating_add(1);
        if let Some(entry) = cache.map.get_mut(&key) {
            entry.last_use = tick;
            return Arc::clone(&entry.block);
        }

        // Page-in. Decoding under the lock serializes concurrent
        // faults, which also guarantees each block is decoded once.
        let meta = self.layout.relations[rel as usize].blocks[block as usize];
        let start = Instant::now();
        banks_util::fault::maybe_fault("data.block.read")
            .unwrap_or_else(|e| panic!("paged tuple read failed: {e}"));
        let mut payload = vec![0u8; meta.len as usize];
        self.src
            .read_at(meta.offset, &mut payload)
            .unwrap_or_else(|e| panic!("paged tuple read failed: {e}"));
        if checksum64(&payload) != meta.checksum {
            panic!("tuple block {block} of relation #{rel} failed its checksum");
        }
        let span = self.layout.block_span;
        let first = block * span;
        let slots = self.layout.relations[rel as usize]
            .slot_count
            .min(first.saturating_add(span))
            - first;
        let decoded = decode_block(&payload, first, slots, self.arities[rel as usize])
            .unwrap_or_else(|e| panic!("tuple block {block} of relation #{rel}: {e}"));
        self.decode_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.page_ins.fetch_add(1, Ordering::Relaxed);

        let block_arc = Arc::new(decoded);
        let bytes = block_arc.bytes;
        cache.map.insert(
            key,
            CacheEntry {
                block: Arc::clone(&block_arc),
                bytes,
                last_use: tick,
            },
        );
        cache.resident_bytes += bytes;
        self.budget.add(bytes);
        self.evict_to_budget(&mut cache, key);
        block_arc
    }

    fn pk_candidates(&self, rel: u32, hash: u64) -> Vec<u32> {
        lane_candidates(&self.lanes[rel as usize], hash)
    }

    fn raw_block(&self, rel: u32, block: u32) -> banks_storage::StorageResult<(Vec<u8>, u64)> {
        let meta = self.layout.relations[rel as usize].blocks[block as usize];
        let mut payload = vec![0u8; meta.len as usize];
        self.src.read_at(meta.offset, &mut payload).map_err(|e| {
            StorageError::Corrupt(format!("tuple block {block} of relation #{rel}: {e}"))
        })?;
        Ok((payload, meta.checksum))
    }

    fn raw_pk_lane(&self, rel: u32) -> banks_storage::StorageResult<(Vec<u8>, u64, u64)> {
        let lane = &self.layout.relations[rel as usize].pk_lane;
        Ok((
            self.lanes[rel as usize].to_vec(),
            lane.checksum,
            lane.entries,
        ))
    }

    fn stats(&self) -> TupleStoreStats {
        let cache = self.cache.lock().expect("tuple block cache poisoned");
        let pinned_resident: usize = cache
            .map
            .iter()
            .filter(|(k, _)| cache.pinned.contains_key(k))
            .map(|(_, e)| e.bytes)
            .sum();
        TupleStoreStats {
            resident_bytes: cache.resident_bytes,
            pinned_bytes: pinned_resident,
            budget_bytes: self.budget.total(),
            block_count: self.layout.relations.iter().map(|r| r.blocks.len()).sum(),
            resident_blocks: cache.map.len(),
            pinned_blocks: cache.pinned.len(),
            page_ins: self.page_ins.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            decode_nanos: self.decode_nanos.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PagedTupleStore {
    fn drop(&mut self) {
        // Return this store's resident bytes to the shared pool so a
        // dropped epoch doesn't starve the stores that replaced it.
        let resident = self.cache.get_mut().map(|c| c.resident_bytes).unwrap_or(0);
        self.budget.sub(resident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::blocks::encode_database_v3_with_span;
    use banks_storage::{ColumnType, Database, RelationSchema, Rid, Value};

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new("paged-tuples");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Title", ColumnType::Text)
                .nullable_column("Year", ColumnType::Int)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("A", ColumnType::Text)
                .column("P", ColumnType::Text)
                .primary_key(&["A", "P"])
                .foreign_key(&["A"], "Author")
                .foreign_key(&["P"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..rows {
            db.insert(
                "Author",
                vec![Value::text(format!("a{i}")), Value::text(format!("Author {i}"))],
            )
            .unwrap();
            db.insert(
                "Paper",
                vec![
                    Value::text(format!("p{i}")),
                    Value::text(format!("A Treatise Numbered {i}")),
                    Value::Int(1980 + (i % 40)),
                ],
            )
            .unwrap();
            db.insert(
                "Writes",
                vec![Value::text(format!("a{i}")), Value::text(format!("p{}", i / 2))],
            )
            .unwrap();
        }
        // Tombstones.
        let w = db
            .relation("Writes")
            .unwrap()
            .lookup_pk(&[Value::text("a9"), Value::text("p4")])
            .unwrap();
        db.delete(w).unwrap();
        db
    }

    fn assert_dbs_equal(a: &Database, b: &Database) {
        assert_eq!(a.total_tuples(), b.total_tuples());
        assert_eq!(a.link_count(), b.link_count());
        for (ta, tb) in a.relations().zip(b.relations()) {
            assert_eq!(ta.slot_count(), tb.slot_count());
            assert_eq!(ta.len(), tb.len());
            for slot in 0..ta.slot_count() as u32 {
                assert_eq!(
                    ta.get(slot).cloned(),
                    tb.get(slot).cloned(),
                    "slot {slot} of {}",
                    ta.schema().name
                );
                let rid = Rid::new(ta.id(), slot);
                assert_eq!(a.referencing(rid).to_vec(), b.referencing(rid).to_vec());
            }
        }
    }

    #[test]
    fn lazy_database_matches_eager_under_tiny_budget() {
        let db = sample_db(60);
        let bytes = encode_database_v3_with_span(&db, 8).unwrap();
        // ~1 KB budget with 8-slot blocks: constant eviction.
        let store =
            PagedTupleStore::open_mem(bytes.into(), SharedBudget::new(1 << 10)).unwrap();
        let layout_schema = store.layout().schema_text.clone();
        let lazy = Database::open_lazy(&layout_schema, store.clone()).unwrap();
        assert_eq!(lazy.name(), db.name());
        assert_dbs_equal(&db, &lazy);
        // PK lookups agree (lane → candidate → confirm path).
        for probe in ["a0", "a33", "a59", "missing"] {
            assert_eq!(
                db.relation("Author").unwrap().lookup_pk(&[Value::text(probe)]),
                lazy.relation("Author").unwrap().lookup_pk(&[Value::text(probe)]),
            );
        }
        let stats = store.stats();
        assert!(stats.page_ins > 0);
        assert!(stats.evictions > 0, "tiny budget must evict");
        assert!(
            stats.resident_bytes <= stats.budget_bytes + 4096,
            "resident {} way past budget {}",
            stats.resident_bytes,
            stats.budget_bytes
        );
    }

    #[test]
    fn overlay_mutations_and_cow_reencode_round_trip() {
        let mut eager = sample_db(40);
        let bytes = encode_database_v3_with_span(&eager, 8).unwrap();
        let store =
            PagedTupleStore::open_mem(bytes.clone().into(), SharedBudget::new(1 << 20)).unwrap();
        let schema_text = store.layout().schema_text.clone();
        let mut lazy = Database::open_lazy(&schema_text, store).unwrap();

        // Apply the same epoch to both: delete, update, insert.
        for db in [&mut eager, &mut lazy] {
            let w = db
                .relation("Writes")
                .unwrap()
                .lookup_pk(&[Value::text("a3"), Value::text("p1")])
                .unwrap();
            db.delete(w).unwrap();
            let p = db
                .relation("Paper")
                .unwrap()
                .lookup_pk(&[Value::text("p7")])
                .unwrap();
            db.update(p, 2, Value::Int(2002)).unwrap();
            db.insert(
                "Author",
                vec![Value::text("fresh"), Value::text("Fresh Author")],
            )
            .unwrap();
            db.insert(
                "Writes",
                vec![Value::text("fresh"), Value::text("p7")],
            )
            .unwrap();
        }
        assert_dbs_equal(&eager, &lazy);

        // COW re-encode: only touched blocks rewrite, bytes must decode
        // back to the same database.
        let reencoded = encode_database_v3_with_span(&lazy, 8).unwrap();
        let store2 =
            PagedTupleStore::open_mem(reencoded.into(), SharedBudget::new(1 << 20)).unwrap();
        let lazy2 = Database::open_lazy(&schema_text, store2).unwrap();
        assert_dbs_equal(&eager, &lazy2);
    }

    #[test]
    fn cow_reuses_untouched_block_bytes() {
        let db = sample_db(40);
        let bytes = encode_database_v3_with_span(&db, 8).unwrap();
        let store =
            PagedTupleStore::open_mem(bytes.clone().into(), SharedBudget::new(1 << 20)).unwrap();
        let schema_text = store.layout().schema_text.clone();
        let lazy = Database::open_lazy(&schema_text, store).unwrap();
        // No mutations → byte-identical re-encode, zero block decodes.
        let reencoded = encode_database_v3_with_span(&lazy, 8).unwrap();
        assert_eq!(bytes, reencoded);
        assert_eq!(lazy.tuple_store_stats().unwrap().page_ins, 0);
    }

    #[test]
    fn budget_is_shared_between_stores() {
        let db = sample_db(60);
        let bytes = encode_database_v3_with_span(&db, 8).unwrap();
        let budget = SharedBudget::new(1 << 10);
        let store = PagedTupleStore::open_mem(bytes.into(), Arc::clone(&budget)).unwrap();
        // Another participant hogs the whole budget: the tuple store
        // must keep evicting itself down to (nearly) nothing.
        budget.add(1 << 10);
        let schema_text = store.layout().schema_text.clone();
        let lazy = Database::open_lazy(&schema_text, store.clone()).unwrap();
        for table in lazy.relations() {
            for slot in 0..table.slot_count() as u32 {
                let _ = table.get(slot).cloned();
            }
        }
        let stats = store.stats();
        // Everything unpinned was evicted on the way out; at most the
        // just-inserted block stays.
        assert!(
            stats.resident_blocks <= 1,
            "resident_blocks = {}",
            stats.resident_blocks
        );
        budget.sub(1 << 10);
    }

    #[test]
    fn corrupt_directory_and_lane_are_typed_errors() {
        let db = sample_db(20);
        let bytes = encode_database_v3_with_span(&db, 8).unwrap();
        let budget = || SharedBudget::new(1 << 20);

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            PagedTupleStore::open_mem(bad.into(), budget()),
            Err(PagerError::Malformed(_))
        ));

        let mut torn = bytes.clone();
        torn[20] ^= 0x01;
        assert!(matches!(
            PagedTupleStore::open_mem(torn.into(), budget()),
            Err(PagerError::Malformed(_))
        ));

        assert!(matches!(
            PagedTupleStore::open_mem(bytes[..8].to_vec().into(), budget()),
            Err(PagerError::Truncated)
        ));
    }

    #[test]
    fn corrupt_block_payload_panics_at_decode() {
        let db = sample_db(20);
        let mut bytes = encode_database_v3_with_span(&db, 8).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x08;
        let store =
            PagedTupleStore::open_mem(bytes.into(), SharedBudget::new(1 << 20)).unwrap();
        let schema_text = store.layout().schema_text.clone();
        let lazy = Database::open_lazy(&schema_text, store).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for table in lazy.relations() {
                for slot in 0..table.slot_count() as u32 {
                    let _ = table.get(slot).cloned();
                }
            }
        }));
        assert!(result.is_err(), "corrupt block must fail loudly");
    }
}
