//! The paged graph blob: an mmap-able on-disk layout for a CSR graph.
//!
//! ```text
//! magic        "BNKSPGR1"                      8 bytes
//! node_count   u32
//! edge_count   u64
//! seg_span     u32      nodes per segment
//! seg_count    u32      segments per direction (= ceil(n / span))
//! node_weights [f64; node_count]               raw LE lane
//! fwd dir      [SegEntry; seg_count]           32 bytes each
//! rev dir      [SegEntry; seg_count]
//! dir_checksum u64      FxHasher over everything above
//! …padding to a 64-byte boundary…
//! payloads     each segment payload starts 64-byte aligned
//!
//! SegEntry = { offset u64 (from blob start), len u32, slot_start u32,
//!              min_pos_weight f64, checksum u64 }
//! ```
//!
//! Everything before the payloads — the *directory* — is small
//! (32 bytes per segment plus 8 per node) and is read eagerly and
//! checksum-verified at open; payloads are only touched when a segment
//! pages in, each guarded by its own checksum. Offsets are relative to
//! the blob start so the blob embeds unchanged at any (page-aligned)
//! offset inside a bundle file: a reader may equally `mmap` the region
//! and slice payloads out of it, which is what the layout is shaped
//! for — the `std`-only store uses positioned reads instead.
//!
//! The per-segment `min_pos_weight` makes the store-level `w_min`
//! normalizer an O(segments) fold (min of forward minima), which is
//! also what lets copy-on-write patching recompute `w_min` without
//! decoding clean segments.

use crate::codec::encode_segment;
use crate::error::PagerError;
use banks_graph::fxhash::FxHasher;
use banks_graph::{Graph, NodeId};
use std::fs::File;
use std::hash::Hasher;
use std::sync::Arc;

/// File format magic (the trailing `1` is the version).
pub const MAGIC: &[u8; 8] = b"BNKSPGR1";

/// Default nodes-per-segment span: with DBLP-shaped degrees (~3 edges
/// per node) a segment decodes to roughly 64–128 KB — large enough to
/// amortize a positioned read, small enough that a tight memory budget
/// still holds hundreds of segments.
pub const DEFAULT_SEG_SPAN: u32 = 2048;

/// Alignment of each segment payload within the blob.
pub const SEG_ALIGN: usize = 64;

const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;
const SEG_ENTRY_LEN: usize = 8 + 4 + 4 + 8 + 8;

/// One segment's directory entry.
#[derive(Debug, Clone, Copy)]
pub struct SegEntry {
    /// Payload offset from the blob start.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Global CSR slot of the segment's first edge.
    pub slot_start: u32,
    /// Smallest strictly-positive weight in the segment (∞ if none).
    pub min_pos_weight: f64,
    /// FxHasher checksum of the payload bytes.
    pub checksum: u64,
}

/// The eagerly-read portion of a blob: header fields, the node-weight
/// lane, and both segment directories.
#[derive(Debug)]
pub struct Layout {
    /// Number of nodes.
    pub node_count: u32,
    /// Number of directed edges.
    pub edge_count: u64,
    /// Nodes per segment.
    pub seg_span: u32,
    /// Forward directory, `ceil(node_count / seg_span)` entries.
    pub fwd: Vec<SegEntry>,
    /// Reverse directory, same length.
    pub rev: Vec<SegEntry>,
    /// Node prestige weights (kept fully in RAM; 8 bytes per node).
    pub node_weights: Vec<f64>,
}

/// Where a blob's bytes live. Cloning shares the underlying handle.
#[derive(Debug, Clone)]
pub enum ByteSource {
    /// A region `[base, base + len)` of an open file.
    File {
        /// Shared read handle.
        file: Arc<File>,
        /// Offset of the blob within the file.
        base: u64,
        /// Length of the blob region.
        len: u64,
    },
    /// An in-memory blob (or a single re-encoded segment).
    Mem(Arc<[u8]>),
}

impl ByteSource {
    /// Length of the region in bytes.
    pub fn len(&self) -> u64 {
        match self {
            ByteSource::File { len, .. } => *len,
            ByteSource::Mem(bytes) => bytes.len() as u64,
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `buf.len()` bytes at `offset` (relative to the region
    /// start). Errors on short reads past the region end.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PagerError> {
        if offset
            .checked_add(buf.len() as u64)
            .is_none_or(|end| end > self.len())
        {
            return Err(PagerError::Truncated);
        }
        match self {
            ByteSource::File { file, base, .. } => {
                use std::os::unix::fs::FileExt;
                file.read_exact_at(buf, base + offset)?;
                Ok(())
            }
            ByteSource::Mem(bytes) => {
                let start = offset as usize;
                buf.copy_from_slice(&bytes[start..start + buf.len()]);
                Ok(())
            }
        }
    }
}

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    while !buf.len().is_multiple_of(align) {
        buf.push(0);
    }
}

/// Checksum of a segment payload.
pub fn segment_checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

/// Number of segments needed for `node_count` nodes at `seg_span`.
pub fn seg_count_for(node_count: u32, seg_span: u32) -> u32 {
    node_count.div_ceil(seg_span)
}

/// The node range `[first, end)` of segment `seg`.
pub fn seg_range(seg: u32, seg_span: u32, node_count: u32) -> (u32, u32) {
    let first = seg * seg_span;
    (first, (first + seg_span).min(node_count))
}

/// Encode `graph` into a paged blob. Works against any backend (a paged
/// `graph` decodes while re-encoding), but is typically fed the in-RAM
/// graph at bundle-write time.
///
/// # Panics
///
/// If the graph has more than `u32::MAX` edges (the CSR itself already
/// guarantees this) or `seg_span` is zero.
pub fn encode_paged_blob(graph: &Graph, seg_span: u32) -> Vec<u8> {
    assert!(seg_span > 0, "segment span must be positive");
    let n = u32::try_from(graph.node_count()).expect("more than u32::MAX nodes");
    let m = graph.edge_count();
    assert!(m <= u32::MAX as usize, "more than u32::MAX edges");
    let seg_count = seg_count_for(n, seg_span);

    // Encode every segment payload first; directory offsets depend on
    // the directory size, which depends only on seg_count.
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(seg_count as usize * 2);
    let mut entries: Vec<SegEntry> = Vec::with_capacity(seg_count as usize * 2);
    for dir in 0..2u8 {
        let mut slot_start = 0u32;
        for seg in 0..seg_count {
            let (first, end) = seg_range(seg, seg_span, n);
            let mut lists: Vec<(&[u32], &[f64])> = Vec::with_capacity((end - first) as usize);
            let mut edges = 0u32;
            for node in first..end {
                let (ids, weights) = if dir == 0 {
                    graph.out_adjacency(NodeId(node))
                } else {
                    graph.in_adjacency(NodeId(node))
                };
                edges += ids.len() as u32;
                lists.push((ids, weights));
            }
            let mut payload = Vec::new();
            let min_pos = encode_segment(&lists, &mut payload);
            entries.push(SegEntry {
                offset: 0, // patched below once the directory size is known
                len: payload.len() as u32,
                slot_start,
                min_pos_weight: min_pos,
                checksum: segment_checksum(&payload),
            });
            payloads.push(payload);
            slot_start += edges;
        }
    }

    let dir_end = HEADER_LEN + graph.node_count() * 8 + entries.len() * SEG_ENTRY_LEN + 8; // dir_checksum
    let mut offset = dir_end.next_multiple_of(SEG_ALIGN) as u64;
    for (entry, payload) in entries.iter_mut().zip(&payloads) {
        entry.offset = offset;
        offset = (offset + payload.len() as u64).next_multiple_of(SEG_ALIGN as u64);
    }

    let mut blob = Vec::with_capacity(offset as usize);
    let mut h = FxHasher::default();
    // Hash field-by-field with the exact chunking the reader uses
    // (FxHasher's fold depends on write boundaries: 4-byte fields hash
    // as their own zero-padded word, the weight lane as one bulk write).
    let mut put = |blob: &mut Vec<u8>, bytes: &[u8]| {
        h.write(bytes);
        blob.extend_from_slice(bytes);
    };
    put(&mut blob, MAGIC);
    put(&mut blob, &n.to_le_bytes());
    put(&mut blob, &(m as u64).to_le_bytes());
    put(&mut blob, &seg_span.to_le_bytes());
    put(&mut blob, &seg_count.to_le_bytes());
    let mut lane = Vec::with_capacity(graph.node_count() * 8);
    for node in graph.nodes() {
        lane.extend_from_slice(&graph.node_weight(node).to_le_bytes());
    }
    put(&mut blob, &lane);
    for entry in &entries {
        put(&mut blob, &entry.offset.to_le_bytes());
        put(&mut blob, &entry.len.to_le_bytes());
        put(&mut blob, &entry.slot_start.to_le_bytes());
        put(&mut blob, &entry.min_pos_weight.to_le_bytes());
        put(&mut blob, &entry.checksum.to_le_bytes());
    }
    blob.extend_from_slice(&h.finish().to_le_bytes());
    debug_assert_eq!(blob.len(), dir_end);

    for payload in &payloads {
        pad_to(&mut blob, SEG_ALIGN);
        blob.extend_from_slice(payload);
    }
    pad_to(&mut blob, SEG_ALIGN);
    blob
}

struct Cursor<'s> {
    src: &'s ByteSource,
    pos: u64,
    hasher: FxHasher,
}

impl Cursor<'_> {
    fn read(&mut self, buf: &mut [u8]) -> Result<(), PagerError> {
        self.src.read_at(self.pos, buf)?;
        self.pos += buf.len() as u64;
        self.hasher.write(buf);
        Ok(())
    }

    fn read_u32(&mut self) -> Result<u32, PagerError> {
        let mut b = [0u8; 4];
        self.read(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, PagerError> {
        let mut b = [0u8; 8];
        self.read(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_f64(&mut self) -> Result<f64, PagerError> {
        Ok(f64::from_bits(self.read_u64()?))
    }
}

/// Read and verify a blob's header, node-weight lane, and segment
/// directories. Fails with a typed error on truncation, bad magic, a
/// directory checksum mismatch (torn write), or structurally
/// inconsistent entries — payloads are *not* touched.
pub fn read_layout(src: &ByteSource) -> Result<Layout, PagerError> {
    let mut cur = Cursor {
        src,
        pos: 0,
        hasher: FxHasher::default(),
    };
    let mut magic = [0u8; 8];
    cur.read(&mut magic).map_err(|_| PagerError::Truncated)?;
    if &magic != MAGIC {
        return Err(PagerError::BadMagic);
    }
    let node_count = cur.read_u32()?;
    let edge_count = cur.read_u64()?;
    let seg_span = cur.read_u32()?;
    let seg_count = cur.read_u32()?;
    let malformed = |m: &str| PagerError::Malformed(m.to_string());
    if seg_span == 0 {
        return Err(malformed("zero segment span"));
    }
    if seg_count != seg_count_for(node_count, seg_span) {
        return Err(malformed("segment count disagrees with node count"));
    }
    if edge_count > u64::from(u32::MAX) {
        return Err(malformed("edge count overflows u32 slots"));
    }

    let mut node_weights = Vec::with_capacity(node_count as usize);
    {
        // Bulk-read the lane; hash in one pass (FxHasher folds 8-byte
        // words, and the lane is a whole number of them).
        let mut bytes = vec![0u8; node_count as usize * 8];
        cur.read(&mut bytes)?;
        node_weights.extend(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
    }

    let blob_len = src.len();
    let read_dir = |cur: &mut Cursor| -> Result<Vec<SegEntry>, PagerError> {
        let mut entries = Vec::with_capacity(seg_count as usize);
        let mut prev_slot = 0u32;
        for i in 0..seg_count {
            let entry = SegEntry {
                offset: cur.read_u64()?,
                len: cur.read_u32()?,
                slot_start: cur.read_u32()?,
                min_pos_weight: cur.read_f64()?,
                checksum: cur.read_u64()?,
            };
            if entry
                .offset
                .checked_add(u64::from(entry.len))
                .is_none_or(|end| end > blob_len)
            {
                return Err(malformed("segment payload outside blob"));
            }
            if i == 0 && entry.slot_start != 0 {
                return Err(malformed("first segment slot_start nonzero"));
            }
            if entry.slot_start < prev_slot {
                return Err(malformed("segment slot_starts not monotone"));
            }
            prev_slot = entry.slot_start;
            entries.push(entry);
        }
        if u64::from(prev_slot) > edge_count {
            return Err(malformed("segment slots exceed edge count"));
        }
        Ok(entries)
    };
    let fwd = read_dir(&mut cur)?;
    let rev = read_dir(&mut cur)?;

    let expect = cur.hasher.finish();
    let mut sum = [0u8; 8];
    src.read_at(cur.pos, &mut sum)
        .map_err(|_| PagerError::Truncated)?;
    if u64::from_le_bytes(sum) != expect {
        return Err(PagerError::BadDirectoryChecksum);
    }

    Ok(Layout {
        node_count,
        edge_count,
        seg_span,
        fwd,
        rev,
        node_weights,
    })
}

/// Edge count of segment `seg` according to a directory (the difference
/// of consecutive `slot_start`s, closed by the global edge count).
pub fn seg_edges(entries: &[SegEntry], seg: usize, edge_count: u64) -> u32 {
    let next = entries
        .get(seg + 1)
        .map(|e| u64::from(e.slot_start))
        .unwrap_or(edge_count);
    (next - u64::from(entries[seg].slot_start)) as u32
}
