//! # banks-pager
//!
//! Out-of-core graph storage for BANKS, following EMBANKS (disk-based
//! BANKS): the CSR graph is serialized as an mmap-able *paged blob* —
//! delta-varint–compressed adjacency segments behind a checksummed
//! segment directory — and served through [`PagedGraphStore`], a
//! [`banks_graph::GraphStore`] backend that decodes segments lazily on
//! first touch and keeps the decoded-resident total under a memory
//! budget with a prestige/access-pinned hot set plus an LRU sweep.
//!
//! A cold open reads only the directory (O(segments), independent of
//! corpus size); bit-identical search answers to the in-RAM backend are
//! a format invariant (weights round-trip as raw bits, the log-score
//! lane is recomputed from the identical `w_min`), proptest-verified in
//! the workspace test suite.
//!
//! ```
//! use banks_graph::{Graph, GraphBuilder, NodeId};
//! use banks_pager::page_graph;
//!
//! let mut b = GraphBuilder::new();
//! let x = b.add_node(1.0);
//! let y = b.add_node(2.0);
//! b.add_edge(x, y, 0.5);
//! let g = b.build();
//!
//! // Round-trip through the paged backend under a tiny budget.
//! let store = page_graph(&g, None, 1 << 16).unwrap();
//! let paged = Graph::from_store(store);
//! assert_eq!(paged.edge_weight(x, y), Some(0.5));
//! assert_eq!(paged.out_adjacency(x), g.out_adjacency(x));
//! ```

//! The same machinery pages the relational side: [`PagedTupleStore`]
//! serves the v3 DATA section (fixed-span tuple-slot blocks behind a
//! checksummed directory, see `banks_storage::blocks`) lazily, and a
//! [`SharedBudget`] lets `--memory-budget` bound graph segments and
//! tuple blocks *together*.

pub mod blob;
pub mod budget;
pub mod codec;
pub mod error;
pub mod store;
pub mod tuples;
pub mod varint;

pub use blob::{encode_paged_blob, ByteSource, Layout, SegEntry, DEFAULT_SEG_SPAN};
pub use budget::SharedBudget;
pub use error::PagerError;
pub use store::{page_graph, PagedGraphStore};
pub use tuples::PagedTupleStore;
