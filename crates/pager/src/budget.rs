//! One memory budget shared by every paged store of a snapshot.
//!
//! `--memory-budget` bounds *decoded resident bytes* across the graph
//! segments and the tuple blocks together, not per store. Each store
//! adds what it pages in, subtracts what it evicts, and sweeps its own
//! LRU entries while the combined total is over; when one store has
//! nothing left to give back, the other reclaims the remainder on its
//! next page-in. This keeps eviction local (no cross-store locking or
//! victim exchange) while the sum stays bounded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared decoded-bytes budget (see the module docs).
#[derive(Debug)]
pub struct SharedBudget {
    total: usize,
    used: AtomicUsize,
}

impl SharedBudget {
    /// A budget of `total` bytes, to be shared via `Arc`.
    pub fn new(total: usize) -> Arc<SharedBudget> {
        Arc::new(SharedBudget {
            total,
            used: AtomicUsize::new(0),
        })
    }

    /// The configured total in bytes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Combined resident bytes across all participating stores.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Record `bytes` newly resident.
    pub fn add(&self, bytes: usize) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` evicted.
    pub fn sub(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Is the combined total over budget?
    pub fn over(&self) -> bool {
        self.used() > self.total
    }
}
