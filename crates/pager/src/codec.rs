//! The segment codec: delta-varint adjacency with dictionary-coded
//! weights.
//!
//! A segment covers a fixed range of node ids and stores their
//! adjacency lists (forward targets or reverse sources — the codec is
//! direction-agnostic). Layout of one encoded segment payload:
//!
//! ```text
//! degrees    varint × span           per-node list length
//! dict_len   varint
//! dict       f64-bits LE × dict_len  distinct weights, first-seen order
//! ids        per node: first id absolute varint, then deltas (≥ 1)
//! weights    varint dict index per edge
//! ```
//!
//! Ids within one list are strictly ascending (the CSR sorts adjacency
//! and coalesces duplicates), so deltas are always ≥ 1 and mostly tiny.
//! Edge weights in a BANKS graph come from a handful of schema-derived
//! similarity values (plus fanin-scaled backward weights), so a small
//! dictionary plus per-edge indexes beats raw f64s by ~4–6×.
//!
//! Decoding recomputes the forward log-score lane (`log2(1 + w/w_min)`)
//! from the store-level `w_min`, reproducing the in-RAM lane
//! bit-for-bit — the expression and operand bits are identical.

use crate::error::PagerError;
use crate::varint;
use banks_graph::FxHashMap;

/// A fully decoded segment: a window of CSR arrays covering the nodes
/// `[first_node, first_node + span)`.
#[derive(Debug)]
pub struct DecodedSegment {
    /// First node id covered by this segment.
    pub first_node: u32,
    /// Global CSR slot of this segment's first edge.
    pub slot_start: u32,
    /// Local prefix offsets, `span + 1` entries.
    pub offsets: Box<[u32]>,
    /// Neighbor ids (targets for forward segments, sources for reverse).
    pub ids: Box<[u32]>,
    /// Edge weights parallel to `ids`.
    pub weights: Box<[f64]>,
    /// Precomputed log-mode edge scores parallel to `ids`; empty for
    /// reverse segments (only the forward lane is scored).
    pub escores: Box<[f64]>,
}

impl DecodedSegment {
    /// Decoded heap footprint in bytes (what the memory budget counts).
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<u32>()
            + self.ids.len() * size_of::<u32>()
            + self.weights.len() * size_of::<f64>()
            + self.escores.len() * size_of::<f64>()
    }

    /// Adjacency of `node` (which must be in this segment's range) as
    /// `(global_slot, ids, weights)`.
    #[inline]
    pub fn adjacency(&self, node: u32) -> (u32, &[u32], &[f64]) {
        let local = (node - self.first_node) as usize;
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        (
            self.slot_start + lo as u32,
            &self.ids[lo..hi],
            &self.weights[lo..hi],
        )
    }

    /// Log-score lane of `node`'s adjacency (forward segments only).
    #[inline]
    pub fn escores_of(&self, node: u32) -> &[f64] {
        let local = (node - self.first_node) as usize;
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        &self.escores[lo..hi]
    }

    /// Weight at a global CSR slot owned by this segment.
    #[inline]
    pub fn weight_at(&self, slot: u32) -> f64 {
        self.weights[(slot - self.slot_start) as usize]
    }
}

/// Encode the adjacency lists of one segment (`lists[i]` belongs to the
/// segment's `i`-th node) onto `out`. Returns the smallest
/// strictly-positive weight in the segment (infinity if none) — the
/// per-segment minimum the directory records so the store-level `w_min`
/// is an O(segments) fold.
pub fn encode_segment(lists: &[(&[u32], &[f64])], out: &mut Vec<u8>) -> f64 {
    for (ids, _) in lists {
        varint::write_u64(out, ids.len() as u64);
    }

    // Weight dictionary in first-seen order (deterministic).
    let mut dict: Vec<u64> = Vec::new();
    let mut index: FxHashMap<u64, u32> = FxHashMap::default();
    let mut min_pos = f64::INFINITY;
    for (_, weights) in lists {
        for &w in *weights {
            let bits = w.to_bits();
            index.entry(bits).or_insert_with(|| {
                dict.push(bits);
                (dict.len() - 1) as u32
            });
            if w > 0.0 {
                min_pos = min_pos.min(w);
            }
        }
    }
    varint::write_u64(out, dict.len() as u64);
    for &bits in &dict {
        out.extend_from_slice(&bits.to_le_bytes());
    }

    for (ids, _) in lists {
        let mut prev = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            if i == 0 {
                varint::write_u64(out, u64::from(id));
            } else {
                varint::write_u64(out, u64::from(id - prev));
            }
            prev = id;
        }
    }
    for (_, weights) in lists {
        for &w in *weights {
            varint::write_u64(out, u64::from(index[&w.to_bits()]));
        }
    }
    min_pos
}

/// Decode one segment payload.
///
/// `span` is the number of nodes the segment covers, `expected_edges`
/// the edge count the directory claims (`next.slot_start − slot_start`),
/// `id_bound` the exclusive upper bound for neighbor ids
/// (`node_count`), and `w_min` the store-level normalizer used to
/// compute the forward log-score lane when `with_escores` is set.
#[allow(clippy::too_many_arguments)]
pub fn decode_segment(
    bytes: &[u8],
    span: u32,
    expected_edges: u32,
    first_node: u32,
    slot_start: u32,
    id_bound: u32,
    w_min: f64,
    with_escores: bool,
) -> Result<DecodedSegment, PagerError> {
    let malformed = |m: &str| PagerError::Malformed(m.to_string());
    let mut pos = 0usize;

    let mut offsets = Vec::with_capacity(span as usize + 1);
    offsets.push(0u32);
    let mut total = 0u64;
    for _ in 0..span {
        let deg = varint::read_u64(bytes, &mut pos).ok_or_else(|| malformed("degree varint"))?;
        total += deg;
        if total > u64::from(expected_edges) {
            return Err(malformed("degrees exceed directory edge count"));
        }
        offsets.push(total as u32);
    }
    if total != u64::from(expected_edges) {
        return Err(malformed("degrees disagree with directory edge count"));
    }

    let dict_len =
        varint::read_u64(bytes, &mut pos).ok_or_else(|| malformed("dict length varint"))?;
    if dict_len > u64::from(expected_edges).max(1) {
        return Err(malformed("weight dictionary larger than edge count"));
    }
    let dict_bytes = (dict_len as usize) * 8;
    let dict_end = pos
        .checked_add(dict_bytes)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| malformed("weight dictionary truncated"))?;
    let dict: Vec<f64> = bytes[pos..dict_end]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    pos = dict_end;

    let m = expected_edges as usize;
    let mut ids = Vec::with_capacity(m);
    for node in 0..span as usize {
        let deg = (offsets[node + 1] - offsets[node]) as usize;
        let mut prev = 0u32;
        for i in 0..deg {
            let raw = varint::read_u64(bytes, &mut pos).ok_or_else(|| malformed("id varint"))?;
            let id = if i == 0 {
                u32::try_from(raw).map_err(|_| malformed("neighbor id overflows u32"))?
            } else {
                if raw == 0 {
                    return Err(malformed("zero delta: duplicate neighbor id"));
                }
                prev.checked_add(u32::try_from(raw).map_err(|_| malformed("delta overflows"))?)
                    .ok_or_else(|| malformed("neighbor id overflows u32"))?
            };
            if id >= id_bound {
                return Err(malformed("neighbor id out of range"));
            }
            ids.push(id);
            prev = id;
        }
    }

    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        let idx =
            varint::read_u64(bytes, &mut pos).ok_or_else(|| malformed("weight index varint"))?;
        let w = *dict
            .get(idx as usize)
            .ok_or_else(|| malformed("weight index out of dictionary"))?;
        weights.push(w);
    }
    if pos != bytes.len() {
        return Err(malformed("trailing bytes after segment payload"));
    }

    let escores: Vec<f64> = if with_escores {
        if !w_min.is_finite() || w_min <= 0.0 {
            vec![0.0; m]
        } else {
            weights.iter().map(|&w| (1.0 + w / w_min).log2()).collect()
        }
    } else {
        Vec::new()
    };

    Ok(DecodedSegment {
        first_node,
        slot_start,
        offsets: offsets.into_boxed_slice(),
        ids: ids.into_boxed_slice(),
        weights: weights.into_boxed_slice(),
        escores: escores.into_boxed_slice(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_lists() {
        let lists: Vec<(&[u32], &[f64])> = vec![
            (&[1, 5, 6][..], &[0.5, 2.0, 0.5][..]),
            (&[][..], &[][..]),
            (&[0][..], &[2.0][..]),
        ];
        let mut buf = Vec::new();
        let min_pos = encode_segment(&lists, &mut buf);
        assert_eq!(min_pos, 0.5);
        let seg = decode_segment(&buf, 3, 4, 10, 100, 20, 0.5, true).unwrap();
        assert_eq!(
            seg.adjacency(10),
            (100, &[1u32, 5, 6][..], &[0.5, 2.0, 0.5][..])
        );
        assert_eq!(seg.adjacency(11), (103, &[][..], &[][..]));
        assert_eq!(seg.adjacency(12), (103, &[0u32][..], &[2.0][..]));
        assert_eq!(seg.weight_at(101), 2.0);
        let expect = (1.0f64 + 0.5 / 0.5).log2();
        assert_eq!(seg.escores_of(10)[0].to_bits(), expect.to_bits());
        assert_eq!(seg.bytes(), 4 * 4 + 4 * 4 + 4 * 8 + 4 * 8);
    }

    #[test]
    fn corrupt_payloads_rejected() {
        let lists: Vec<(&[u32], &[f64])> = vec![(&[2, 4][..], &[1.0, 3.0][..])];
        let mut buf = Vec::new();
        encode_segment(&lists, &mut buf);
        // Wrong edge count vs directory.
        assert!(decode_segment(&buf, 1, 3, 0, 0, 10, 1.0, false).is_err());
        // Truncated payload.
        assert!(decode_segment(&buf[..buf.len() - 1], 1, 2, 0, 0, 10, 1.0, false).is_err());
        // Id out of bound.
        assert!(decode_segment(&buf, 1, 2, 0, 0, 3, 1.0, false).is_err());
        // Trailing garbage.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode_segment(&extended, 1, 2, 0, 0, 10, 1.0, false).is_err());
    }

    #[test]
    fn degenerate_w_min_zeroes_escores() {
        let lists: Vec<(&[u32], &[f64])> = vec![(&[1][..], &[0.0][..])];
        let mut buf = Vec::new();
        let min_pos = encode_segment(&lists, &mut buf);
        assert!(min_pos.is_infinite());
        let seg = decode_segment(&buf, 1, 1, 0, 0, 10, f64::INFINITY, true).unwrap();
        assert_eq!(seg.escores[0], 0.0);
    }
}
