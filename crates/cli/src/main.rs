//! The `banks` interactive shell.
//!
//! ```text
//! cargo run --release -p banks-cli
//! banks> open dblp
//! banks> search soumen sunita
//! banks> show 1
//! ```
//!
//! Also supports one-shot execution: `banks -c "open dblp; search mohan"`,
//! the HTTP server mode: `banks serve --corpus dblp --addr 127.0.0.1:7331`
//! (add `--data-dir DIR` for durable serving, `--follow LEADER:PORT` for
//! a read-only replica), the cluster front door:
//! `banks route --leader … --follower …`,
//! delta ingestion: `banks ingest --file deltas.json --server 127.0.0.1:7331`,
//! streaming corpus generation: `banks datagen --tuples N --out DIR`,
//! and snapshot bundles: `banks snapshot save|load|inspect …`.

use banks_cli::Shell;
use banks_util::log_error;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Server mode: `banks serve [flags…]` (see banks_cli::serve).
    if args.first().map(String::as_str) == Some("serve") {
        if let Err(err) = banks_cli::serve::run(&args[1..]) {
            log_error!("serve", "{err}");
            std::process::exit(1);
        }
        return;
    }

    // Router mode: `banks route [flags…]` (see banks_cli::route).
    if args.first().map(String::as_str) == Some("route") {
        if let Err(err) = banks_cli::route::run(&args[1..]) {
            log_error!("route", "{err}");
            std::process::exit(1);
        }
        return;
    }

    // Ingestion: `banks ingest [flags…]` (see banks_cli::ingest).
    if args.first().map(String::as_str) == Some("ingest") {
        if let Err(err) = banks_cli::ingest::run(&args[1..]) {
            log_error!("ingest", "{err}");
            std::process::exit(1);
        }
        return;
    }

    // Corpus generation: `banks datagen --tuples N --out DIR`
    // (see banks_cli::datagen).
    if args.first().map(String::as_str) == Some("datagen") {
        if let Err(err) = banks_cli::datagen::run(&args[1..]) {
            log_error!("datagen", "{err}");
            std::process::exit(1);
        }
        return;
    }

    // Snapshot bundles: `banks snapshot save|load|inspect …`
    // (see banks_cli::snapshot).
    if args.first().map(String::as_str) == Some("snapshot") {
        if let Err(err) = banks_cli::snapshot::run(&args[1..]) {
            log_error!("snapshot", "{err}");
            std::process::exit(1);
        }
        return;
    }

    let mut shell = Shell::new();

    // One-shot mode: -c "cmd; cmd; …"
    if args.first().map(String::as_str) == Some("-c") {
        let script = args.get(1).cloned().unwrap_or_default();
        for command in script.split(';') {
            match shell.exec(command) {
                Ok(out) => print!("{out}"),
                Err(err) => {
                    eprintln!("error: {err}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("BANKS — keyword searching and browsing in databases (ICDE 2002)");
    println!("type `help` for commands, `open dblp` to load a corpus\n");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("banks> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match shell.exec(trimmed) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(err) => println!("error: {err}"),
        }
    }
}
