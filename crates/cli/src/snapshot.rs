//! The `banks snapshot` subcommand: work with full-system snapshot
//! bundles (`banks-persist`) directly from the command line.
//!
//! ```text
//! banks snapshot save --corpus dblp --seed 1 --out dblp.banks
//! banks snapshot inspect dblp.banks
//! banks snapshot load dblp.banks --query "mohan sudarshan"
//! ```
//!
//! `save` builds the corpus and writes a bundle (atomically, fsync'd);
//! `inspect` validates one — sections, checksums — and prints a
//! summary, reading the per-relation live-tuple counts of a v3 bundle
//! straight from its DATA directory without decoding a single tuple
//! block; `load` restores a query-ready system from it
//! and optionally runs a query, which doubles as an end-to-end check
//! that restore-from-bundle serves real answers.

use banks_core::{Banks, BanksConfig};
use banks_persist::{inspect_bundle, load_bundle, save_bundle};
use std::path::PathBuf;

/// Parsed `snapshot` arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotArgs {
    /// `snapshot save --corpus NAME [--seed N] [--epoch N] --out PATH`
    Save {
        /// Corpus to build.
        corpus: String,
        /// Generation seed.
        seed: u64,
        /// Epoch stamp for the bundle (default 0).
        epoch: u64,
        /// Output path.
        out: PathBuf,
    },
    /// `snapshot load PATH [--query "…"]`
    Load {
        /// Bundle path.
        path: PathBuf,
        /// Optional query to run against the restored system.
        query: Option<String>,
    },
    /// `snapshot inspect PATH`
    Inspect {
        /// Bundle path.
        path: PathBuf,
    },
}

impl SnapshotArgs {
    /// Parse everything after `banks snapshot`.
    pub fn parse(args: &[String]) -> Result<SnapshotArgs, String> {
        let Some((verb, rest)) = args.split_first() else {
            return Err("snapshot needs a verb: save | load | inspect".into());
        };
        let mut it = rest.iter();
        match verb.as_str() {
            "save" => {
                let (mut corpus, mut seed, mut epoch, mut out) = (None, 1u64, 0u64, None);
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next()
                            .cloned()
                            .ok_or_else(|| format!("{name} requires a value"))
                    };
                    match flag.as_str() {
                        "--corpus" => corpus = Some(value("--corpus")?),
                        "--seed" => {
                            seed = value("--seed")?
                                .parse()
                                .map_err(|_| "--seed must be an integer".to_string())?
                        }
                        "--epoch" => {
                            epoch = value("--epoch")?
                                .parse()
                                .map_err(|_| "--epoch must be an integer".to_string())?
                        }
                        "--out" => out = Some(PathBuf::from(value("--out")?)),
                        other => return Err(format!("unknown snapshot save flag `{other}`")),
                    }
                }
                Ok(SnapshotArgs::Save {
                    corpus: corpus.ok_or("snapshot save requires --corpus")?,
                    seed,
                    epoch,
                    out: out.ok_or("snapshot save requires --out")?,
                })
            }
            "load" => {
                let Some(path) = it.next() else {
                    return Err("snapshot load requires a bundle path".into());
                };
                let mut query = None;
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--query" => {
                            query = Some(
                                it.next()
                                    .cloned()
                                    .ok_or("--query requires a value".to_string())?,
                            )
                        }
                        other => return Err(format!("unknown snapshot load flag `{other}`")),
                    }
                }
                Ok(SnapshotArgs::Load {
                    path: PathBuf::from(path),
                    query,
                })
            }
            "inspect" => {
                let Some(path) = it.next() else {
                    return Err("snapshot inspect requires a bundle path".into());
                };
                Ok(SnapshotArgs::Inspect {
                    path: PathBuf::from(path),
                })
            }
            other => Err(format!(
                "unknown snapshot verb `{other}` (save | load | inspect)"
            )),
        }
    }
}

/// Execute a parsed snapshot command, returning the printable output.
pub fn execute(args: &SnapshotArgs) -> Result<String, String> {
    match args {
        SnapshotArgs::Save {
            corpus,
            seed,
            epoch,
            out,
        } => {
            let db = crate::corpus::open(corpus, *seed)?;
            let banks = Banks::new(db).map_err(|e| e.to_string())?;
            save_bundle(&banks, *epoch, out).map_err(|e| format!("save {}: {e}", out.display()))?;
            let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "saved {} (epoch {epoch}): {} tuples, {} graph nodes, {} postings, {} bytes\n",
                out.display(),
                banks.db().total_tuples(),
                banks.tuple_graph().node_count(),
                banks.text_index().posting_count(),
                bytes,
            ))
        }
        SnapshotArgs::Load { path, query } => {
            let t0 = std::time::Instant::now();
            let (banks, meta) = load_bundle(path, &BanksConfig::default())
                .map_err(|e| format!("load {}: {e}", path.display()))?;
            let mut out = format!(
                "loaded {} in {:.1} ms: epoch {}, {} tuples, {} nodes / {} edges, {} postings\n",
                path.display(),
                t0.elapsed().as_secs_f64() * 1e3,
                meta.epoch,
                banks.db().total_tuples(),
                banks.tuple_graph().node_count(),
                banks.tuple_graph().graph().edge_count(),
                banks.text_index().posting_count(),
            );
            if let Some(query) = query {
                let answers = banks.search(query).map_err(|e| e.to_string())?;
                out.push_str(&format!("query `{query}`: {} answer(s)\n", answers.len()));
                for (i, a) in answers.iter().enumerate().take(3) {
                    out.push_str(&format!(
                        "  #{} relevance {:.4}\n{}\n",
                        i + 1,
                        a.relevance,
                        indent(&banks.render_answer(a))
                    ));
                }
            }
            Ok(out)
        }
        SnapshotArgs::Inspect { path } => {
            let info =
                inspect_bundle(path).map_err(|e| format!("inspect {}: {e}", path.display()))?;
            let (meta_b, data_b, tidx_b, graph_b) = info.section_bytes;
            let mut out = format!(
                "{}: valid bundle (v{}), {} bytes, epoch {}\n",
                path.display(),
                info.version,
                info.file_bytes,
                info.meta.epoch
            );
            out.push_str(&format!(
                "  database `{}`: {} tuples across {} relation(s)\n",
                info.database,
                info.tuples,
                info.relations.len()
            ));
            for (name, count) in &info.relations {
                out.push_str(&format!("    {name}: {count} tuples\n"));
            }
            out.push_str(&format!(
                "  text index: {} tokens, {} postings\n  graph: {} nodes, {} edges\n",
                info.tokens, info.postings, info.nodes, info.edges
            ));
            out.push_str(&format!(
                "  sections: meta {meta_b} B, data {data_b} B, text {tidx_b} B, graph {graph_b} B\n"
            ));
            out.push_str(&format!(
                "  ranking: lambda {:.2}, {:?} edges, {:?} nodes, {:?}\n",
                info.meta.score.lambda,
                info.meta.score.edge_score,
                info.meta.score.node_score,
                info.meta.score.combine
            ));
            Ok(out)
        }
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Entry point for `banks snapshot …`.
pub fn run(args: &[String]) -> Result<(), String> {
    let parsed = SnapshotArgs::parse(args)?;
    print!("{}", execute(&parsed)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_verbs() {
        assert_eq!(
            SnapshotArgs::parse(&strings(&[
                "save", "--corpus", "dblp", "--seed", "3", "--epoch", "9", "--out", "x.banks"
            ]))
            .unwrap(),
            SnapshotArgs::Save {
                corpus: "dblp".into(),
                seed: 3,
                epoch: 9,
                out: PathBuf::from("x.banks"),
            }
        );
        assert_eq!(
            SnapshotArgs::parse(&strings(&["load", "x.banks", "--query", "mohan"])).unwrap(),
            SnapshotArgs::Load {
                path: PathBuf::from("x.banks"),
                query: Some("mohan".into()),
            }
        );
        assert_eq!(
            SnapshotArgs::parse(&strings(&["inspect", "x.banks"])).unwrap(),
            SnapshotArgs::Inspect {
                path: PathBuf::from("x.banks"),
            }
        );
        for bad in [
            vec![],
            strings(&["teleport"]),
            strings(&["save", "--out", "x"]),
            strings(&["save", "--corpus", "dblp"]),
            strings(&["load"]),
            strings(&["inspect"]),
            strings(&["save", "--seed", "x", "--corpus", "dblp", "--out", "y"]),
        ] {
            assert!(SnapshotArgs::parse(&bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn save_inspect_load_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("banks_cli_snapshot_{}.banks", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let saved = execute(&SnapshotArgs::Save {
            corpus: "dblp".into(),
            seed: 1,
            epoch: 4,
            out: path.clone(),
        })
        .unwrap();
        assert!(saved.contains("epoch 4"), "{saved}");

        let inspected = execute(&SnapshotArgs::Inspect { path: path.clone() }).unwrap();
        assert!(inspected.contains("valid bundle"), "{inspected}");
        assert!(inspected.contains("epoch 4"), "{inspected}");
        assert!(inspected.contains("Author"), "{inspected}");

        let loaded = execute(&SnapshotArgs::Load {
            path: path.clone(),
            query: Some("mohan".into()),
        })
        .unwrap();
        assert!(loaded.contains("epoch 4"), "{loaded}");
        assert!(loaded.contains("answer(s)"), "{loaded}");

        // Inspecting garbage is a readable error, not a panic.
        std::fs::write(&path, b"not a bundle at all").unwrap();
        let err = execute(&SnapshotArgs::Inspect { path: path.clone() }).unwrap_err();
        assert!(err.contains("inspect"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
