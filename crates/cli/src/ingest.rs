//! The `banks ingest` subcommand: apply a JSON/CSV delta file against a
//! running server or a local corpus.
//!
//! ```text
//! # against a running `banks serve` instance (POST /ingest):
//! banks ingest --file deltas.json --server 127.0.0.1:7331
//!
//! # against a local corpus (offline dry run / experimentation):
//! banks ingest --file deltas.csv --corpus dblp --seed 1
//! ```
//!
//! The format is inferred from the file extension (`.json` / `.csv`)
//! and can be forced with `--format`. Batches are validated by parsing
//! before anything is sent, and applied atomically — a rejected op
//! leaves the target snapshot unchanged.

use banks_core::Banks;
use banks_ingest::DeltaBatch;
use banks_server::{IngestEndpoint, QueryService, ServiceConfig};
use banks_util::http::{http_request, ClientError};
use banks_util::retry::{parse_retry_after, Outcome, RetryPolicy};
use banks_util::{log_info, log_warn};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Parsed `ingest` arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestArgs {
    /// Delta file path.
    pub file: String,
    /// `json` or `csv`; inferred from the extension when empty.
    pub format: String,
    /// Remote mode: `HOST:PORT` of a running `banks serve`.
    pub server: Option<String>,
    /// Local mode: corpus name.
    pub corpus: Option<String>,
    /// Local mode: generation seed.
    pub seed: u64,
    /// Caller-supplied publication timestamp (`--ts`); defaults to the
    /// current unix time in seconds.
    pub ts: Option<String>,
}

impl IngestArgs {
    /// Parse `--flag value` pairs (everything after `banks ingest`).
    pub fn parse(args: &[String]) -> Result<IngestArgs, String> {
        let mut parsed = IngestArgs {
            seed: 1,
            ..IngestArgs::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--file" => parsed.file = value("--file")?,
                "--format" => parsed.format = value("--format")?,
                "--server" => parsed.server = Some(value("--server")?),
                "--corpus" => parsed.corpus = Some(value("--corpus")?),
                "--seed" => {
                    parsed.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?
                }
                "--ts" => parsed.ts = Some(value("--ts")?),
                other => return Err(format!("unknown ingest flag `{other}` — see `banks help`")),
            }
        }
        if parsed.file.is_empty() {
            return Err("--file is required".into());
        }
        if parsed.server.is_some() == parsed.corpus.is_some() {
            return Err("exactly one of --server or --corpus is required".into());
        }
        if parsed.format.is_empty() {
            parsed.format = if parsed.file.ends_with(".csv") {
                "csv".into()
            } else {
                "json".into()
            };
        }
        if parsed.format != "json" && parsed.format != "csv" {
            return Err(format!("unknown format `{}` (json|csv)", parsed.format));
        }
        Ok(parsed)
    }
}

/// Load and parse the delta file per the arguments.
pub fn load_batch(args: &IngestArgs) -> Result<DeltaBatch, String> {
    let text =
        std::fs::read_to_string(&args.file).map_err(|e| format!("read {}: {e}", args.file))?;
    let batch = match args.format.as_str() {
        "csv" => DeltaBatch::from_csv(&text),
        _ => DeltaBatch::from_json(&text),
    }
    .map_err(|e| e.to_string())?;
    if batch.is_empty() {
        return Err(format!("{}: no operations", args.file));
    }
    Ok(batch)
}

fn default_ts() -> String {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_default()
}

/// Percent-encode a query-string value (RFC 3986 unreserved characters
/// pass through) so a caller-supplied timestamp with spaces or `&`
/// cannot mangle the request line.
fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// How many POST attempts are made before giving up.
const POST_ATTEMPTS: u32 = 5;
/// Backoff base for the first retry (scales by 2× with full jitter).
const POST_BACKOFF: Duration = Duration::from_millis(200);
/// Backoff ceiling across retries.
const POST_MAX_BACKOFF: Duration = Duration::from_secs(2);
/// Longest server `Retry-After` hint the CLI will honor — a hostile or
/// miscounting server must not stall the tool for minutes.
const MAX_RETRY_AFTER: Duration = Duration::from_secs(5);

/// How one POST `/ingest` attempt failed, and whether retrying is safe.
enum PostFault {
    /// Nothing reached the server (refused, unreachable) — always safe
    /// to retry.
    Connect(String),
    /// The connection was up but the request died mid-flight; the batch
    /// may already have been applied, so this is terminal.
    Transport(String),
    /// The server explicitly refused before doing any work — a 409/503
    /// carrying `Retry-After` — and told us when to come back.
    Busy {
        status: u16,
        body: String,
        after: Duration,
    },
    /// Any other rejection is terminal.
    Rejected { status: u16, body: String },
}

impl PostFault {
    fn describe(&self, addr: &str) -> String {
        match self {
            PostFault::Connect(e) => format!("connect {addr}: {e}"),
            PostFault::Transport(e) => format!("{addr}: {e}"),
            PostFault::Busy { status, body, .. } => {
                format!("server busy ({status}): {body}")
            }
            PostFault::Rejected { status, body } => {
                format!("server rejected the batch ({status}): {body}")
            }
        }
    }
}

/// POST a batch to a running server's `/ingest`. Returns the response
/// body on success.
///
/// Ingest is not idempotent — replaying an insert can publish a second
/// epoch — so retries are limited to failures where the batch provably
/// was **not** applied: connect errors (no byte reached the server) and
/// explicit `409`/`503` refusals that carry a `Retry-After` hint (the
/// server rejected the request before doing any work — overload
/// shedding, replication lag). The shared [`RetryPolicy`] paces the
/// retries with capped exponential backoff and full jitter, stretched
/// to the server's `Retry-After` when it asks for longer. A `409`/`503`
/// *without* the hint (a read-only follower, a real conflict) and any
/// error after the connection was up are reported to the caller
/// immediately.
pub fn post_to_server(addr: &str, batch: &DeltaBatch, ts: &str) -> Result<String, String> {
    let target = format!("/ingest?ts={}", url_encode(ts));
    let body = batch.to_json().compact();
    let policy = RetryPolicy {
        attempts: POST_ATTEMPTS,
        base: POST_BACKOFF,
        cap: POST_MAX_BACKOFF,
        ..RetryPolicy::default()
    };
    let outcome = policy.run(
        None,
        |_| {
            let resp = match http_request(
                addr,
                "POST",
                &target,
                Some(body.as_bytes()),
                Duration::from_secs(60),
            ) {
                Ok(resp) => resp,
                Err(ClientError::Connect(e)) => return Err(PostFault::Connect(e.to_string())),
                Err(e) => return Err(PostFault::Transport(e.to_string())),
            };
            match resp.status {
                409 | 503 => match parse_retry_after(resp.header("retry-after")) {
                    Some(after) => Err(PostFault::Busy {
                        status: resp.status,
                        body: resp.text(),
                        after: after.min(MAX_RETRY_AFTER),
                    }),
                    None => Err(PostFault::Rejected {
                        status: resp.status,
                        body: resp.text(),
                    }),
                },
                _ => Ok(resp),
            }
        },
        |fault| match fault {
            PostFault::Connect(_) | PostFault::Busy { .. } => Outcome::Retryable,
            PostFault::Transport(_) | PostFault::Rejected { .. } => Outcome::Fatal,
        },
        |attempt, fault, sleep| {
            let sleep = match fault {
                PostFault::Busy { after, .. } => sleep.max(*after),
                _ => sleep,
            };
            log_warn!(
                "ingest",
                "{} — retrying in {}ms (attempt {attempt}/{POST_ATTEMPTS})",
                fault.describe(addr),
                sleep.as_millis(),
            );
            sleep
        },
    );
    let resp = outcome.map_err(|fault| fault.describe(addr))?;
    if resp.status != 200 {
        return Err(format!(
            "server rejected the batch ({}): {}",
            resp.status,
            resp.text()
        ));
    }
    Ok(resp.text())
}

/// Apply a batch against a locally generated corpus and report what the
/// equivalent publication would do.
pub fn apply_locally(args: &IngestArgs, batch: &DeltaBatch, ts: &str) -> Result<String, String> {
    let corpus = args.corpus.as_deref().expect("local mode");
    let db = crate::corpus::open(corpus, args.seed)?;
    let banks = Arc::new(Banks::new(db).map_err(|e| e.to_string())?);
    let before_nodes = banks.tuple_graph().node_count();
    let before_edges = banks.tuple_graph().graph().edge_count();

    // Through the same endpoint type the server uses, so local apply and
    // POST /ingest can never drift semantically.
    let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
    let endpoint = IngestEndpoint::new(Arc::clone(&service));
    let info = endpoint
        .ingest(batch, Some(ts.to_string()))
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "corpus {corpus} (seed {}): epoch {} published — {} ops (+{} / ~{} / -{}), graph {} → {} nodes, {} → {} edges ({})",
        args.seed,
        info.epoch,
        info.ops,
        info.counts.inserted,
        info.counts.updated,
        info.counts.deleted,
        before_nodes,
        info.nodes,
        before_edges,
        info.edges,
        if info.incremental { "incremental" } else { "rebuilt" },
    ))
}

/// Entry point for `banks ingest`.
pub fn run(args: &[String]) -> Result<(), String> {
    let args = IngestArgs::parse(args)?;
    let batch = load_batch(&args)?;
    let ts = args.ts.clone().unwrap_or_else(default_ts);
    log_info!(
        "ingest",
        "{}: {} operations ({})",
        args.file,
        batch.len(),
        args.format
    );
    let report = match &args.server {
        Some(addr) => post_to_server(addr, &batch, &ts)?,
        None => apply_locally(&args, &batch, &ts)?,
    };
    println!("{report}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_modes_and_format_inference() {
        let remote = IngestArgs::parse(&strings(&[
            "--file",
            "d.json",
            "--server",
            "127.0.0.1:7331",
        ]))
        .unwrap();
        assert_eq!(remote.format, "json");
        assert_eq!(remote.server.as_deref(), Some("127.0.0.1:7331"));

        let local = IngestArgs::parse(&strings(&[
            "--file", "d.csv", "--corpus", "dblp", "--seed", "7", "--ts", "t0",
        ]))
        .unwrap();
        assert_eq!(local.format, "csv");
        assert_eq!(local.corpus.as_deref(), Some("dblp"));
        assert_eq!(local.seed, 7);
        assert_eq!(local.ts.as_deref(), Some("t0"));

        // Explicit format overrides the extension.
        let forced = IngestArgs::parse(&strings(&[
            "--file", "d.txt", "--format", "csv", "--corpus", "dblp",
        ]))
        .unwrap();
        assert_eq!(forced.format, "csv");
    }

    #[test]
    fn parse_rejects_bad_combinations() {
        assert!(IngestArgs::parse(&strings(&["--file", "d.json"])).is_err());
        assert!(IngestArgs::parse(&strings(&[
            "--file", "d.json", "--server", "x", "--corpus", "dblp"
        ]))
        .is_err());
        assert!(IngestArgs::parse(&strings(&["--server", "x"])).is_err());
        assert!(IngestArgs::parse(&strings(&[
            "--file", "d.json", "--corpus", "dblp", "--format", "xml"
        ]))
        .is_err());
        assert!(IngestArgs::parse(&strings(&["--file"])).is_err());
        assert!(IngestArgs::parse(&strings(&["--wat"])).is_err());
    }

    #[test]
    fn local_apply_publishes_an_epoch() {
        let path =
            std::env::temp_dir().join(format!("banks_ingest_cli_{}.json", std::process::id()));
        std::fs::write(
            &path,
            r#"{"ops":[
                {"op":"insert","relation":"Author",
                 "values":["CliAuthor","Cli Test Author"]}
            ]}"#,
        )
        .unwrap();
        let args = IngestArgs::parse(&strings(&[
            "--file",
            path.to_str().unwrap(),
            "--corpus",
            "dblp",
        ]))
        .unwrap();
        let batch = load_batch(&args).unwrap();
        let report = apply_locally(&args, &batch, "t-test").unwrap();
        assert!(report.contains("epoch 1"), "{report}");
        assert!(report.contains("incremental"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ts_is_url_encoded() {
        assert_eq!(url_encode("1753880000"), "1753880000");
        assert_eq!(
            url_encode("2026-07-30 12:00&x=1"),
            "2026-07-30%2012%3A00%26x%3D1"
        );
        assert_eq!(url_encode("t~0_a.b-c"), "t~0_a.b-c");
    }

    fn tiny_batch() -> DeltaBatch {
        DeltaBatch::from_json(
            r#"{"ops":[{"op":"insert","relation":"Author",
                        "values":["RetryAuthor","Retry Author"]}]}"#,
        )
        .unwrap()
    }

    /// Serve exactly one canned HTTP response on `listener`.
    fn answer_once(listener: std::net::TcpListener, status: &'static str, body: &'static str) {
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
            let _ = write!(
                stream,
                "HTTP/1.1 {status}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
        });
    }

    #[test]
    fn post_retries_connection_refused_then_succeeds() {
        // Reserve a port, then close it: the first attempt is refused
        // (nothing sent — safe to retry), and a listener comes up before
        // the backoff expires.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let rebind = addr.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = std::net::TcpListener::bind(&rebind).unwrap();
            answer_once(listener, "200 OK", "epoch 1 published");
        });
        let out = post_to_server(&addr, &tiny_batch(), "t0").unwrap();
        assert_eq!(out, "epoch 1 published");
    }

    /// Serve a fixed sequence of canned responses, one per connection.
    /// `retry_after` adds a `Retry-After` header to that response.
    fn answer_sequence(
        listener: std::net::TcpListener,
        responses: Vec<(&'static str, &'static str, Option<&'static str>)>,
    ) {
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            for (status, body, retry_after) in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let extra = retry_after
                    .map(|v| format!("Retry-After: {v}\r\n"))
                    .unwrap_or_default();
                let _ = write!(
                    stream,
                    "HTTP/1.1 {status}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
                    body.len()
                );
            }
        });
    }

    #[test]
    fn post_honors_retry_after_on_503_then_succeeds() {
        // A 503 *with* Retry-After means "rejected before any work, come
        // back" — the client must retry and then succeed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        answer_sequence(
            listener,
            vec![
                ("503 Service Unavailable", "shedding", Some("0")),
                ("200 OK", "epoch 2 published", None),
            ],
        );
        let out = post_to_server(&addr, &tiny_batch(), "t0").unwrap();
        assert_eq!(out, "epoch 2 published");
    }

    #[test]
    fn post_treats_409_without_retry_after_as_fatal() {
        // A 409 with no Retry-After is a real conflict, not backpressure:
        // one canned response — a retry would hang on accept.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        answer_sequence(listener, vec![("409 Conflict", "stale epoch", None)]);
        let err = post_to_server(&addr, &tiny_batch(), "t0").unwrap_err();
        assert!(err.contains("409"), "{err}");
        assert!(err.contains("stale epoch"), "{err}");
    }

    #[test]
    fn post_does_not_retry_a_server_rejection() {
        // One canned 503: if the client retried, the second attempt
        // would hang on accept — an immediate error proves it didn't.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        answer_once(listener, "503 Service Unavailable", "read-only");
        let err = post_to_server(&addr, &tiny_batch(), "t0").unwrap_err();
        assert!(err.contains("503"), "{err}");
        assert!(err.contains("read-only"), "{err}");
    }

    #[test]
    fn load_batch_reports_errors() {
        let args = IngestArgs::parse(&strings(&[
            "--file",
            "/nonexistent/deltas.json",
            "--corpus",
            "dblp",
        ]))
        .unwrap();
        assert!(load_batch(&args).is_err());
    }
}
