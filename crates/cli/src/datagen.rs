//! `banks datagen` — stream a synthetic corpus to disk.
//!
//! ```text
//! banks datagen --tuples 1000000 --out /tmp/corpus [--seed 42] [--shard-tuples 250000]
//! ```
//!
//! Writes a DBLP-shaped corpus of exactly `--tuples` rows as shard files
//! under `--out` (see [`banks_datagen::stream`]); peak memory is one
//! write buffer regardless of scale. The resulting directory is accepted
//! anywhere a corpus name is: `banks serve --corpus /tmp/corpus …` or
//! `open /tmp/corpus` in the shell.

use banks_datagen::stream::{self, StreamConfig, DEFAULT_SHARD_TUPLES};
use std::path::PathBuf;

/// Parsed `banks datagen` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatagenArgs {
    /// Exact total tuple count.
    pub tuples: u64,
    /// Output directory for shards + manifest.
    pub out: PathBuf,
    /// Generator seed.
    pub seed: u64,
    /// Rows per shard file.
    pub shard_tuples: u64,
}

impl DatagenArgs {
    /// Parse `banks datagen` flags.
    pub fn parse(args: &[String]) -> Result<DatagenArgs, String> {
        let mut tuples: Option<u64> = None;
        let mut out: Option<PathBuf> = None;
        let mut seed = 42u64;
        let mut shard_tuples = DEFAULT_SHARD_TUPLES;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--tuples" => {
                    tuples = Some(
                        value("--tuples")?
                            .parse()
                            .map_err(|e| format!("--tuples: {e}"))?,
                    )
                }
                "--out" => out = Some(PathBuf::from(value("--out")?)),
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--shard-tuples" => {
                    shard_tuples = value("--shard-tuples")?
                        .parse()
                        .map_err(|e| format!("--shard-tuples: {e}"))?
                }
                other => return Err(format!("unknown flag `{other}` (see `banks datagen`)")),
            }
        }
        Ok(DatagenArgs {
            tuples: tuples.ok_or("--tuples N is required")?,
            out: out.ok_or("--out DIR is required")?,
            seed,
            shard_tuples,
        })
    }
}

/// Run `banks datagen`: generate and print a one-line summary per table
/// plus where the shards went.
pub fn run(args: &[String]) -> Result<(), String> {
    let args = DatagenArgs::parse(args)?;
    let config = StreamConfig {
        seed: args.seed,
        tuples: args.tuples,
        shard_tuples: args.shard_tuples,
    };
    let start = std::time::Instant::now();
    let manifest = stream::generate_to_dir(&config, &args.out)?;
    let bytes: u64 = (0..manifest.shards)
        .filter_map(|s| std::fs::metadata(manifest.shard_path(&args.out, s)).ok())
        .map(|m| m.len())
        .sum();
    println!(
        "wrote {} tuples ({} authors, {} papers, {} writes, {} cites) \
         as {} shards, {:.1} MiB, in {:.2?} → {}",
        manifest.config.tuples,
        manifest.counts.authors,
        manifest.counts.papers,
        manifest.counts.writes,
        manifest.counts.cites,
        manifest.shards,
        bytes as f64 / (1 << 20) as f64,
        start.elapsed(),
        args.out.display(),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_rejects_missing_required() {
        let args = DatagenArgs::parse(&argv(
            "--tuples 5000 --out /tmp/x --seed 7 --shard-tuples 100",
        ))
        .unwrap();
        assert_eq!(args.tuples, 5000);
        assert_eq!(args.out, PathBuf::from("/tmp/x"));
        assert_eq!(args.seed, 7);
        assert_eq!(args.shard_tuples, 100);

        assert!(DatagenArgs::parse(&argv("--out /tmp/x"))
            .unwrap_err()
            .contains("--tuples"));
        assert!(DatagenArgs::parse(&argv("--tuples 5000"))
            .unwrap_err()
            .contains("--out"));
        assert!(DatagenArgs::parse(&argv("--wat"))
            .unwrap_err()
            .contains("--wat"));
    }

    #[test]
    fn run_generates_an_openable_corpus() {
        let dir = std::env::temp_dir().join(format!("banks_cli_datagen_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        run(&argv(&format!(
            "--tuples 200 --out {} --seed 3",
            dir.display()
        )))
        .unwrap();
        let db = crate::corpus::open(dir.to_str().unwrap(), 3).unwrap();
        assert_eq!(db.total_tuples(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
