//! # banks-cli
//!
//! An interactive shell over the BANKS system — the terminal counterpart
//! of the paper's web interface. The command interpreter ([`Shell`]) is a
//! plain function from command lines to output strings, so the whole
//! surface is unit-testable; `src/main.rs` wraps it in a stdin REPL.
//!
//! ```
//! use banks_cli::Shell;
//! let mut shell = Shell::new();
//! shell.exec("open dblp 1").unwrap();
//! let out = shell.exec("search soumen sunita").unwrap();
//! assert!(out.contains("ChakrabartiSD98"));
//! ```

pub mod corpus;
pub mod datagen;
pub mod ingest;
pub mod route;
pub mod serve;
pub mod shell;
pub mod snapshot;
pub mod table;

pub use datagen::DatagenArgs;
pub use ingest::IngestArgs;
pub use route::RouteArgs;
pub use serve::ServeArgs;
pub use shell::Shell;
pub use snapshot::SnapshotArgs;
