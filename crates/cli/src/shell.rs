//! The command interpreter.

use crate::table::render_text_table;
use banks_browse::{render, JoinSpec, ReverseJoinSpec, ViewSpec};
use banks_core::{Answer, Banks, BanksConfig, EdgeScoreMode, SearchArena, SearchStrategy};
use banks_storage::{Predicate, Value};

/// Interactive state: a loaded database plus the last search and the
/// current browsing view.
pub struct Shell {
    banks: Option<Banks>,
    config: BanksConfig,
    last_answers: Vec<Answer>,
    view_history: Vec<ViewSpec>,
    /// Persistent kernel scratch: every `search` in the session reuses
    /// the same dense Dijkstra states and cross-product buffers.
    arena: SearchArena,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    /// A fresh shell with no database loaded.
    pub fn new() -> Shell {
        let mut config = BanksConfig::default();
        config.search.excluded_root_relations = vec!["Writes".into(), "Cites".into()];
        Shell {
            banks: None,
            config,
            last_answers: Vec::new(),
            view_history: Vec::new(),
            arena: SearchArena::new(),
        }
    }

    fn banks(&self) -> Result<&Banks, String> {
        Self::banks_ref(&self.banks)
    }

    /// Field-level form of [`Shell::banks`], so callers that also need
    /// `&mut self.arena` can split the borrow without duplicating the
    /// "no database loaded" message.
    fn banks_ref(banks: &Option<Banks>) -> Result<&Banks, String> {
        banks
            .as_ref()
            .ok_or_else(|| "no database loaded — try `open dblp`".to_string())
    }

    /// Execute one command line; returns the output text or an error
    /// message.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(HELP.to_string()),
            "open" => self.cmd_open(rest),
            "save" => self.cmd_save(rest),
            "load" => self.cmd_load(rest),
            "schema" => self.cmd_schema(),
            "stats" => self.cmd_stats(),
            "search" => self.cmd_search(rest, SearchStrategy::Backward),
            "fsearch" => self.cmd_search(rest, SearchStrategy::Forward),
            "show" => self.cmd_show(rest),
            "summarize" => self.cmd_summarize(),
            "config" => self.cmd_config(rest),
            "browse" => self.cmd_browse(rest),
            "view" => self.cmd_view(),
            "drop" => self.with_view(rest, |spec, arg| {
                let col: u32 = parse(arg)?;
                if !spec.dropped.contains(&col) {
                    spec.dropped.push(col);
                }
                Ok(())
            }),
            "select" => self.cmd_select(rest),
            "join" => self.with_view(rest, |spec, arg| {
                spec.joins.push(JoinSpec {
                    fk_index: parse(arg)?,
                });
                Ok(())
            }),
            "rjoin" => self.cmd_rjoin(rest),
            "group" => self.with_view(rest, |spec, arg| {
                spec.group_by = Some(parse(arg)?);
                Ok(())
            }),
            "sort" => self.cmd_sort(rest),
            "page" => self.with_view(rest, |spec, arg| {
                spec.page = parse(arg)?;
                Ok(())
            }),
            "back" => self.cmd_back(),
            "quit" | "exit" => Ok("bye".to_string()),
            other => Err(format!("unknown command `{other}` — try `help`")),
        }
    }

    fn cmd_open(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let what = parts.next().unwrap_or("");
        let seed: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
        let db = crate::corpus::open(what, seed)?;
        let tuples = db.total_tuples();
        let links = db.link_count();
        self.banks = Some(Banks::with_config(db, self.config.clone()).map_err(|e| e.to_string())?);
        self.last_answers.clear();
        self.view_history.clear();
        Ok(format!(
            "loaded {what} (seed {seed}): {tuples} tuples, {links} links"
        ))
    }

    fn cmd_save(&self, rest: &str) -> Result<String, String> {
        if rest.is_empty() {
            return Err("usage: save <directory>".to_string());
        }
        let banks = self.banks()?;
        banks_storage::bundle::save_bundle(banks.db(), std::path::Path::new(rest))
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "saved {} relations to {rest}",
            banks.db().relation_count()
        ))
    }

    fn cmd_load(&mut self, rest: &str) -> Result<String, String> {
        if rest.is_empty() {
            return Err("usage: load <directory>".to_string());
        }
        let db = banks_storage::bundle::load_bundle(std::path::Path::new(rest))
            .map_err(|e| e.to_string())?;
        let tuples = db.total_tuples();
        let links = db.link_count();
        self.banks = Some(Banks::with_config(db, self.config.clone()).map_err(|e| e.to_string())?);
        self.last_answers.clear();
        self.view_history.clear();
        Ok(format!("loaded {rest}: {tuples} tuples, {links} links"))
    }

    fn cmd_schema(&self) -> Result<String, String> {
        let banks = self.banks()?;
        let mut out = String::new();
        for table in banks.db().relations() {
            let schema = table.schema();
            let cols: Vec<String> = schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{i}:{}:{}", c.name, c.ty.name()))
                .collect();
            out.push_str(&format!(
                "{} ({} tuples)\n  columns: {}\n",
                schema.name,
                table.len(),
                cols.join(", ")
            ));
            for (i, fk) in schema.foreign_keys.iter().enumerate() {
                out.push_str(&format!(
                    "  fk#{i}: ({}) → {}\n",
                    fk.columns
                        .iter()
                        .map(|&c| schema.columns[c].name.clone())
                        .collect::<Vec<_>>()
                        .join(","),
                    fk.ref_relation
                ));
            }
        }
        Ok(out)
    }

    fn cmd_stats(&self) -> Result<String, String> {
        let banks = self.banks()?;
        let graph = banks.tuple_graph().graph();
        Ok(format!(
            "graph: {} nodes, {} edges\nmemory: {:.2} MB (graph + rid maps) + {:.2} MB (keyword index)\nindex: {} distinct tokens, {} postings",
            graph.node_count(),
            graph.edge_count(),
            banks.tuple_graph().memory_bytes() as f64 / 1e6,
            banks.text_index().memory_bytes() as f64 / 1e6,
            banks.text_index().distinct_tokens(),
            banks.text_index().posting_count(),
        ))
    }

    fn cmd_search(&mut self, query: &str, strategy: SearchStrategy) -> Result<String, String> {
        if query.is_empty() {
            return Err("usage: search <keywords…>".to_string());
        }
        let banks = Self::banks_ref(&self.banks)?;
        let parsed = banks.parse(query).map_err(|e| e.to_string())?;
        let outcome = banks
            .search_parsed_in(&parsed, strategy, &self.config, &mut self.arena)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "{} answers ({} iterators, {} nodes settled, {} trees generated)\n",
            outcome.answers.len(),
            outcome.stats.iterators,
            outcome.stats.pops,
            outcome.stats.trees_generated
        );
        for (i, answer) in outcome.answers.iter().enumerate() {
            let rid = banks.tuple_graph().rid(answer.tree.root);
            out.push_str(&format!(
                "{:>2}. [{:.3}] {}\n",
                i + 1,
                answer.relevance,
                banks.db().describe_tuple(rid).map_err(|e| e.to_string())?
            ));
        }
        out.push_str("use `show <n>` to expand an answer\n");
        self.last_answers = outcome.answers;
        Ok(out)
    }

    fn cmd_show(&self, rest: &str) -> Result<String, String> {
        let n: usize = parse(rest)?;
        let answer = self
            .last_answers
            .get(n.wrapping_sub(1))
            .ok_or_else(|| format!("no answer #{n} — run `search` first"))?;
        Ok(self.banks()?.render_answer(answer))
    }

    fn cmd_summarize(&self) -> Result<String, String> {
        let banks = self.banks()?;
        if self.last_answers.is_empty() {
            return Err("no answers to summarize — run `search` first".to_string());
        }
        let mut out = String::new();
        for group in banks.summarize(&self.last_answers) {
            out.push_str(&format!(
                "{} — {} answers, best relevance {:.3}\n",
                group.label,
                group.answers.len(),
                group.best_relevance
            ));
        }
        Ok(out)
    }

    fn cmd_config(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        match (parts.next(), parts.next()) {
            (None, _) => Ok(format!(
                "lambda {}  edge-log {}  k {}  heap {}  threads {}",
                self.config.score.lambda,
                matches!(self.config.score.edge_score, EdgeScoreMode::Log),
                self.config.search.max_results,
                self.config.search.output_heap_size,
                self.config.search.search_threads
            )),
            (Some("lambda"), Some(v)) => {
                let lambda: f64 = parse(v)?;
                if !(0.0..=1.0).contains(&lambda) {
                    return Err("lambda must be in [0,1]".to_string());
                }
                self.config.score.lambda = lambda;
                Ok(format!("lambda = {lambda}"))
            }
            (Some("edge-log"), Some(v)) => {
                self.config.score.edge_score = if v == "on" {
                    EdgeScoreMode::Log
                } else {
                    EdgeScoreMode::Linear
                };
                Ok(format!("edge-log = {v}"))
            }
            (Some("k"), Some(v)) => {
                self.config.search.max_results = parse(v)?;
                Ok(format!("k = {v}"))
            }
            (Some("heap"), Some(v)) => {
                self.config.search.output_heap_size = parse(v)?;
                Ok(format!("heap = {v}"))
            }
            (Some("threads"), Some(v)) => {
                // Intra-query parallel expansion; results are identical
                // at any setting, only latency changes.
                self.config.search.search_threads = parse(v)?;
                Ok(format!("threads = {v}"))
            }
            (Some(other), _) => Err(format!(
                "unknown config `{other}` (lambda|edge-log|k|heap|threads)"
            )),
        }
    }

    fn cmd_browse(&mut self, rest: &str) -> Result<String, String> {
        let banks = self.banks()?;
        let rel = banks.db().relation_id(rest).map_err(|e| e.to_string())?;
        self.view_history = vec![ViewSpec::relation(rel)];
        self.cmd_view()
    }

    fn current_view(&self) -> Result<&ViewSpec, String> {
        self.view_history
            .last()
            .ok_or_else(|| "no view open — try `browse <relation>`".to_string())
    }

    fn cmd_view(&self) -> Result<String, String> {
        let banks = self.banks()?;
        let spec = self.current_view()?;
        let view = render(banks.db(), spec).map_err(|e| e.to_string())?;
        Ok(render_text_table(&view))
    }

    fn with_view(
        &mut self,
        arg: &str,
        f: impl FnOnce(&mut ViewSpec, &str) -> Result<(), String>,
    ) -> Result<String, String> {
        let mut spec = self.current_view()?.clone();
        f(&mut spec, arg)?;
        self.view_history.push(spec);
        self.cmd_view()
    }

    fn cmd_select(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.splitn(3, char::is_whitespace).collect();
        if parts.len() < 3 {
            return Err("usage: select <col#> <=|!=|<|<=|>|>=|~> <value>".to_string());
        }
        let col: u32 = parse(parts[0])?;
        let value = parse_value(parts[2]);
        let pred = match parts[1] {
            "=" => Predicate::Eq(value),
            "!=" => Predicate::Ne(value),
            "<" => Predicate::Lt(value),
            "<=" => Predicate::Le(value),
            ">" => Predicate::Gt(value),
            ">=" => Predicate::Ge(value),
            "~" => Predicate::Contains(parts[2].to_string()),
            op => return Err(format!("unknown operator `{op}`")),
        };
        self.with_view("", move |spec, _| {
            spec.selections.push((col, pred));
            Ok(())
        })
    }

    fn cmd_rjoin(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 2 {
            return Err("usage: rjoin <relation> <fk#>".to_string());
        }
        let rel = self
            .banks()?
            .db()
            .relation_id(parts[0])
            .map_err(|e| e.to_string())?;
        let fk: usize = parse(parts[1])?;
        self.with_view("", move |spec, _| {
            spec.reverse_join = Some(ReverseJoinSpec {
                relation: rel,
                fk_index: fk,
            });
            Ok(())
        })
    }

    fn cmd_sort(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let col: usize = parse(parts.first().copied().unwrap_or(""))?;
        let ascending = parts.get(1).copied() != Some("desc");
        self.with_view("", move |spec, _| {
            spec.sort = Some((col, ascending));
            Ok(())
        })
    }

    fn cmd_back(&mut self) -> Result<String, String> {
        if self.view_history.len() <= 1 {
            return Err("already at the first view".to_string());
        }
        self.view_history.pop();
        self.cmd_view()
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad argument `{s}`"))
}

fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = s.parse::<f64>() {
        Value::Float(f)
    } else if s == "null" {
        Value::Null
    } else {
        Value::text(s)
    }
}

/// Help text.
pub const HELP: &str = "\
commands:
  open <dblp|dblp-small|thesis|tpcd> [seed]   load a synthetic database
  save <dir> / load <dir>                     bundle persistence (schema + CSVs)
  schema                                      list relations and foreign keys
  stats                                       graph/index sizes
  search <keywords…>                          backward expanding search (§3)
  fsearch <keywords…>                         forward search (§7)
  show <n>                                    expand answer n as a tree
  summarize                                   group answers by tree shape (§7)
  config [lambda|edge-log|k|heap|threads <value>]  show or set parameters
                                              (threads = intra-query parallel
                                              expansion; identical results)
  browse <relation>                           open a browsing view (§4)
  view                                        re-render the current view
  drop <col#> | select <col#> <op> <value>    projection / selection
  join <fk#> | rjoin <relation> <fk#>         joins along foreign keys
  group <col#> | sort <col#> [asc|desc]       grouping / sorting
  page <n> | back                             pagination / history
  quit

server mode (not a shell command):
  banks serve [--corpus dblp|dblp-small|thesis|tpcd] [--seed N]
              [--addr HOST:PORT] [--workers N] [--search-threads N]
              [--cache-capacity N] [--cache-shards N] [--data-dir DIR]
              [--no-fsync] [--compact-wal-batches N] [--no-ingest]
              [--paged] [--memory-budget BYTES] [--log-level LEVEL]
    serves /search, /node, /stats, /metrics, /epochs, /health,
    /debug/slow, POST /ingest
    --log-level error|warn|info|debug filters the structured stderr
    log (also the BANKS_LOG environment variable)
    --data-dir enables durability: full-system snapshot bundle + WAL'd
    ingestion + crash recovery (banks-persist)
    --paged serves out of core from the bundle file (banks-pager);
    --memory-budget caps decoded graph segments (e.g. 256m, default)

corpus generation (not a shell command):
  banks datagen --tuples N --out DIR [--seed N] [--shard-tuples N]
    streams an exact-size DBLP-shaped corpus to disk; the output
    directory is accepted wherever a corpus name is (open, serve)

snapshot bundles (not a shell command):
  banks snapshot save --corpus NAME [--seed N] [--epoch N] --out PATH
  banks snapshot load PATH [--query \"keywords…\"]
  banks snapshot inspect PATH
";

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> Shell {
        let mut shell = Shell::new();
        shell.exec("open dblp 1").unwrap();
        shell
    }

    #[test]
    fn open_and_stats() {
        let mut shell = loaded();
        let out = shell.exec("stats").unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("tokens"));
    }

    #[test]
    fn commands_require_database() {
        let mut shell = Shell::new();
        assert!(shell.exec("search mohan").is_err());
        assert!(shell.exec("schema").is_err());
        assert!(shell.exec("help").unwrap().contains("commands"));
    }

    #[test]
    fn search_show_summarize_flow() {
        let mut shell = loaded();
        let out = shell.exec("search soumen sunita").unwrap();
        assert!(out.contains("answers"));
        assert!(out.contains("ChakrabartiSD98"));
        let tree = shell.exec("show 1").unwrap();
        assert!(tree.contains("*Author("));
        let groups = shell.exec("summarize").unwrap();
        assert!(groups.contains("Paper(Writes(Author),Writes(Author))"));
    }

    #[test]
    fn forward_search_command() {
        let mut shell = loaded();
        let out = shell.exec("fsearch author sunita").unwrap();
        assert!(out.contains("answers"));
    }

    #[test]
    fn config_roundtrip_and_validation() {
        let mut shell = loaded();
        assert!(shell.exec("config lambda 0.5").unwrap().contains("0.5"));
        assert!(shell.exec("config").unwrap().contains("lambda 0.5"));
        assert!(shell.exec("config lambda 2").is_err());
        assert!(shell.exec("config edge-log off").is_ok());
        assert!(shell.exec("config k 5").is_ok());
        let out = shell.exec("search mohan").unwrap();
        assert!(out.lines().count() <= 9, "k=5 limits the listing: {out}");
    }

    #[test]
    fn threads_config_keeps_answers_identical() {
        let mut shell = loaded();
        let sequential = shell.exec("search soumen sunita byron").unwrap();
        assert!(shell.exec("config threads 4").unwrap().contains("4"));
        assert!(shell.exec("config").unwrap().contains("threads 4"));
        let parallel = shell.exec("search soumen sunita byron").unwrap();
        assert_eq!(
            sequential, parallel,
            "intra-query parallelism must not change any visible output"
        );
        assert!(shell.exec("config threads x").is_err());
    }

    #[test]
    fn browse_flow() {
        let mut shell = Shell::new();
        shell.exec("open thesis 1").unwrap();
        let out = shell.exec("browse Student").unwrap();
        assert!(out.contains("== Student =="));
        let out = shell.exec("group 2").unwrap();
        assert!(out.contains("count"));
        let out = shell.exec("back").unwrap();
        assert!(out.contains("Student.RollNo"));
        let out = shell.exec("select 2 = DEPTCSE").unwrap();
        assert!(out.contains("DEPTCSE"));
        let out = shell.exec("rjoin Thesis 0").unwrap();
        assert!(out.contains("Thesis.Title"));
        assert!(shell.exec("sort 0 desc").is_ok());
        assert!(shell.exec("page 1").is_ok());
        assert!(shell.exec("drop 3").is_ok());
    }

    #[test]
    fn errors_are_friendly() {
        let mut shell = loaded();
        assert!(shell
            .exec("frobnicate")
            .unwrap_err()
            .contains("unknown command"));
        assert!(shell.exec("show 99").is_err());
        assert!(shell.exec("browse Nonexistent").is_err());
        assert!(shell.exec("select 0 ?? x").is_err());
        assert!(shell.exec("back").is_err(), "no view yet");
        assert!(shell.exec("open marsrover").is_err());
        assert!(shell.exec("").unwrap().is_empty());
        assert!(shell.exec("# comment").unwrap().is_empty());
    }

    #[test]
    fn save_load_bundle_roundtrip() {
        let dir = std::env::temp_dir().join(format!("banks_cli_bundle_{}", std::process::id()));
        let dir_str = dir.to_str().unwrap().to_string();
        let mut shell = loaded();
        let before = shell.exec("search soumen sunita").unwrap();
        shell.exec(&format!("save {dir_str}")).unwrap();

        let mut restored = Shell::new();
        let out = restored.exec(&format!("load {dir_str}")).unwrap();
        assert!(out.contains("tuples"));
        let after = restored.exec("search soumen sunita").unwrap();
        assert_eq!(before, after, "restored database answers identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_dataset_opens() {
        for ds in ["dblp", "thesis", "tpcd"] {
            let mut shell = Shell::new();
            let out = shell.exec(&format!("open {ds} 2")).unwrap();
            assert!(out.contains("tuples"), "{ds}: {out}");
        }
    }
}
