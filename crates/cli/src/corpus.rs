//! Shared corpus loading for the shell's `open` command and `banks
//! serve`, so the two front ends can never drift on which corpora they
//! accept or how they're configured.

use banks_datagen::{dblp, stream, thesis, tpcd, DblpConfig, ThesisConfig, TpcdConfig};
use banks_storage::Database;
use std::path::Path;

/// The accepted corpus names, for error messages and help text.
pub const CORPORA: &str = "dblp|dblp-small|thesis|tpcd|<stream dir>";

/// Generate the named synthetic corpus at the given seed, or load a
/// `banks datagen` shard directory (a path whose `MANIFEST` carries the
/// stream magic; the directory's own seed applies, not `seed`).
pub fn open(name: &str, seed: u64) -> Result<Database, String> {
    if stream::is_stream_dir(Path::new(name)) {
        return stream::build_database(Path::new(name));
    }
    let dataset = match name {
        "dblp" => dblp::generate(DblpConfig::tiny(seed)).map(|d| d.db),
        "dblp-small" => dblp::generate(DblpConfig::small(seed)).map(|d| d.db),
        "thesis" => thesis::generate(ThesisConfig::tiny(seed)).map(|d| d.db),
        "tpcd" => tpcd::generate(TpcdConfig::tiny(seed)).map(|d| d.db),
        other => return Err(format!("unknown corpus `{other}` ({CORPORA})")),
    };
    dataset.map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_advertised_corpora_open() {
        for name in CORPORA.split('|').filter(|n| !n.starts_with('<')) {
            let db = open(name, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(db.total_tuples() > 0, "{name} is non-empty");
        }
        assert!(open("wat", 1).unwrap_err().contains(CORPORA));
    }
}
