//! The `banks route` subcommand: the cluster front door
//! (`banks-router`) as a process.
//!
//! ```text
//! banks route --addr 127.0.0.1:7330 \
//!     --leader 127.0.0.1:7331 \
//!     --follower 127.0.0.1:7332 --follower 127.0.0.1:7333
//! ```
//!
//! Clients talk to the router exactly like a single `banks serve`:
//! `GET /search` fans out over healthy, caught-up followers by
//! cache-key affinity (falling back to the leader), `POST /ingest` and
//! `/epochs` always reach the leader, and `/health` + `/stats` report
//! the router's own registry. See `banks-router` for the routing,
//! ejection, and staleness rules.

use banks_router::{Router, RouterConfig};
use banks_util::log_info;
use std::time::Duration;

/// Parsed `route` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteArgs {
    /// Bind address of the router itself.
    pub addr: String,
    /// Leader address.
    pub leader: String,
    /// Follower addresses (`--follower`, repeatable).
    pub followers: Vec<String>,
    /// Worker threads.
    pub workers: usize,
    /// `/health` probe cadence in milliseconds.
    pub probe_interval_ms: u64,
    /// Consecutive probe failures before ejection.
    pub eject_after: u32,
    /// Max epochs a follower may lag and still serve reads.
    pub staleness_bound: u64,
    /// Log verbosity override (`error|warn|info|debug`); defaults to
    /// the `BANKS_LOG` environment variable, then `info`.
    pub log_level: Option<banks_util::log::Level>,
}

impl Default for RouteArgs {
    fn default() -> Self {
        let defaults = RouterConfig::default();
        RouteArgs {
            addr: "127.0.0.1:7330".to_string(),
            leader: defaults.leader,
            followers: Vec::new(),
            workers: defaults.workers,
            probe_interval_ms: defaults.probe_interval.as_millis() as u64,
            eject_after: defaults.eject_after,
            staleness_bound: defaults.staleness_bound,
            log_level: None,
        }
    }
}

impl RouteArgs {
    /// Parse `--flag value` pairs (everything after `banks route`).
    pub fn parse(args: &[String]) -> Result<RouteArgs, String> {
        let mut parsed = RouteArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--addr" => parsed.addr = value("--addr")?,
                "--leader" => parsed.leader = value("--leader")?,
                "--follower" => parsed.followers.push(value("--follower")?),
                "--workers" => {
                    parsed.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be an integer".to_string())?
                }
                "--probe-interval-ms" => {
                    parsed.probe_interval_ms = value("--probe-interval-ms")?
                        .parse()
                        .map_err(|_| "--probe-interval-ms must be an integer".to_string())?
                }
                "--eject-after" => {
                    parsed.eject_after = value("--eject-after")?
                        .parse()
                        .map_err(|_| "--eject-after must be an integer".to_string())?
                }
                "--staleness-bound" => {
                    parsed.staleness_bound = value("--staleness-bound")?
                        .parse()
                        .map_err(|_| "--staleness-bound must be an integer".to_string())?
                }
                "--log-level" => {
                    let raw = value("--log-level")?;
                    parsed.log_level =
                        Some(banks_util::log::Level::parse(&raw).ok_or_else(|| {
                            format!("--log-level must be error|warn|info|debug, got `{raw}`")
                        })?)
                }
                other => return Err(format!("unknown route flag `{other}` — see `banks help`")),
            }
        }
        Ok(parsed)
    }

    fn config(&self) -> RouterConfig {
        RouterConfig {
            addr: self.addr.clone(),
            leader: self.leader.clone(),
            followers: self.followers.clone(),
            workers: self.workers,
            probe_interval: Duration::from_millis(self.probe_interval_ms.max(1)),
            eject_after: self.eject_after.max(1),
            staleness_bound: self.staleness_bound,
            ..RouterConfig::default()
        }
    }
}

/// Bind the router for the given arguments. Returns the running router
/// so callers (tests, embedding processes) control its lifetime.
pub fn start(args: &RouteArgs) -> Result<Router, String> {
    if let Some(level) = args.log_level {
        banks_util::log::set_level(level);
    }
    let router = Router::bind(args.config()).map_err(|e| format!("bind {}: {e}", args.addr))?;
    log_info!(
        "route",
        "routing on http://{} → leader {} + {} follower(s) \
         (probe every {}ms, eject after {}, staleness bound {} epoch(s))",
        router.local_addr(),
        args.leader,
        args.followers.len(),
        args.probe_interval_ms,
        args.eject_after,
        args.staleness_bound,
    );
    Ok(router)
}

/// Foreground entry point for `banks route`: route until killed.
pub fn run(args: &[String]) -> Result<(), String> {
    let args = RouteArgs::parse(args)?;
    let router = start(&args)?;
    router.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        assert_eq!(RouteArgs::parse(&[]).unwrap(), RouteArgs::default());
        let args = RouteArgs::parse(&strings(&[
            "--addr",
            "127.0.0.1:0",
            "--leader",
            "127.0.0.1:9001",
            "--follower",
            "127.0.0.1:9002",
            "--follower",
            "127.0.0.1:9003",
            "--workers",
            "2",
            "--probe-interval-ms",
            "100",
            "--eject-after",
            "3",
            "--staleness-bound",
            "4",
        ]))
        .unwrap();
        assert_eq!(args.leader, "127.0.0.1:9001");
        assert_eq!(args.followers, vec!["127.0.0.1:9002", "127.0.0.1:9003"]);
        assert_eq!(args.workers, 2);
        assert_eq!(args.probe_interval_ms, 100);
        assert_eq!(args.eject_after, 3);
        assert_eq!(args.staleness_bound, 4);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(RouteArgs::parse(&strings(&["--workers"])).is_err());
        assert!(RouteArgs::parse(&strings(&["--workers", "x"])).is_err());
        assert!(RouteArgs::parse(&strings(&["--staleness-bound", "x"])).is_err());
        assert!(RouteArgs::parse(&strings(&["--wat"])).is_err());
    }

    #[test]
    fn start_binds_ephemeral_port() {
        let args = RouteArgs {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..RouteArgs::default()
        };
        let router = start(&args).unwrap();
        assert_ne!(router.local_addr().port(), 0);
        router.shutdown();
    }
}
