//! The `banks serve` subcommand: build (or restore) a snapshot, wrap it
//! in a [`QueryService`], and serve HTTP until killed.
//!
//! ```text
//! banks serve --corpus dblp --seed 1 --addr 127.0.0.1:7331 --workers 8
//! banks serve --corpus dblp-small --graph-snapshot /tmp/dblp.graph
//! ```
//!
//! With `--graph-snapshot`, the CSR graph is restored from the file when
//! it exists (skipping edge derivation — the §5.2 "graph load" phase)
//! and written there after a fresh build otherwise, so the second start
//! of the same corpus is fast.

use banks_core::{Banks, BanksConfig, TupleGraph};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed `serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Synthetic corpus name (`dblp`, `dblp-small`, `thesis`, `tpcd`).
    pub corpus: String,
    /// Generation seed.
    pub seed: u64,
    /// Bind address.
    pub addr: String,
    /// HTTP worker threads (0 = one per core).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Optional CSR graph snapshot path (load if present, else save).
    pub graph_snapshot: Option<PathBuf>,
    /// Disable the write path (`POST /ingest` answers 503).
    pub no_ingest: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            corpus: "dblp".to_string(),
            seed: 1,
            addr: "127.0.0.1:7331".to_string(),
            workers: 0,
            cache_capacity: 4096,
            cache_shards: 8,
            graph_snapshot: None,
            no_ingest: false,
        }
    }
}

impl ServeArgs {
    /// Parse `--flag value` pairs (everything after `banks serve`).
    pub fn parse(args: &[String]) -> Result<ServeArgs, String> {
        let mut parsed = ServeArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--corpus" => parsed.corpus = value("--corpus")?,
                "--seed" => {
                    parsed.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?
                }
                "--addr" => parsed.addr = value("--addr")?,
                "--workers" => {
                    parsed.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be an integer".to_string())?
                }
                "--cache-capacity" => {
                    parsed.cache_capacity = value("--cache-capacity")?
                        .parse()
                        .map_err(|_| "--cache-capacity must be an integer".to_string())?
                }
                "--cache-shards" => {
                    parsed.cache_shards = value("--cache-shards")?
                        .parse()
                        .map_err(|_| "--cache-shards must be an integer".to_string())?
                }
                "--graph-snapshot" => {
                    parsed.graph_snapshot = Some(PathBuf::from(value("--graph-snapshot")?))
                }
                "--no-ingest" => parsed.no_ingest = true,
                other => return Err(format!("unknown serve flag `{other}` — see `banks help`")),
            }
        }
        Ok(parsed)
    }
}

/// Build the shared snapshot + service per the arguments. Returns the
/// service and a human-readable startup summary.
pub fn build_service(args: &ServeArgs) -> Result<(Arc<QueryService>, String), String> {
    let db = crate::corpus::open(&args.corpus, args.seed)?;

    let config = BanksConfig::default();
    let mut graph_source = "built from database";
    let banks = match &args.graph_snapshot {
        Some(path) if path.exists() => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("open snapshot {}: {e}", path.display()))?;
            let graph = banks_graph::snapshot::read_snapshot(std::io::BufReader::new(file))
                .map_err(|e| format!("read snapshot {}: {e}", path.display()))?;
            let tuple_graph = TupleGraph::rebind(&db, graph).map_err(|e| e.to_string())?;
            graph_source = "restored from snapshot";
            Banks::with_graph(db, config, tuple_graph).map_err(|e| e.to_string())?
        }
        maybe_path => {
            let banks = Banks::with_config(db, config).map_err(|e| e.to_string())?;
            if let Some(path) = maybe_path {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("create snapshot {}: {e}", path.display()))?;
                banks_graph::snapshot::write_snapshot(
                    banks.tuple_graph().graph(),
                    std::io::BufWriter::new(file),
                )
                .map_err(|e| format!("write snapshot {}: {e}", path.display()))?;
                graph_source = "built from database (snapshot saved)";
            }
            banks
        }
    };

    let summary = format!(
        "corpus {} (seed {}): {} nodes, {} edges, {:.1} MiB — graph {}",
        args.corpus,
        args.seed,
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
        banks.memory_bytes() as f64 / (1024.0 * 1024.0),
        graph_source,
    );
    let service = Arc::new(QueryService::new(
        Arc::new(banks),
        ServiceConfig {
            cache_capacity: args.cache_capacity,
            cache_shards: args.cache_shards,
        },
    ));
    Ok((service, summary))
}

/// Start the HTTP server for the given arguments. Returns the running
/// server so callers (tests, embedding processes) control its lifetime.
pub fn start(args: &ServeArgs) -> Result<(Arc<QueryService>, BanksServer), String> {
    let (service, summary) = build_service(args)?;
    let workers = if args.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        args.workers
    };
    let ingest = (!args.no_ingest).then(|| IngestEndpoint::new(Arc::clone(&service)));
    let server = BanksServer::bind_with_ingest(
        Arc::clone(&service),
        ingest,
        ServerConfig {
            addr: args.addr.clone(),
            workers,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    eprintln!("{summary}");
    eprintln!(
        "serving on http://{} ({} workers, cache {} entries × {} shards)",
        server.local_addr(),
        workers,
        service.cache().capacity(),
        service.cache().shard_count(),
    );
    if args.no_ingest {
        eprintln!("endpoints: /search?q=…  /node?id=…  /stats  /epochs  /health (ingest disabled)");
    } else {
        eprintln!(
            "endpoints: /search?q=…  /node?id=…  /stats  /epochs  /health  POST /ingest (live writes on)"
        );
    }
    Ok((service, server))
}

/// Foreground entry point for `banks serve`: serve until the process is
/// killed.
pub fn run(args: &[String]) -> Result<(), String> {
    let args = ServeArgs::parse(args)?;
    let (_service, server) = start(&args)?;
    server.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        assert_eq!(ServeArgs::parse(&[]).unwrap(), ServeArgs::default());
        let args = ServeArgs::parse(&strings(&[
            "--corpus",
            "thesis",
            "--seed",
            "7",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--cache-capacity",
            "128",
            "--cache-shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(args.corpus, "thesis");
        assert_eq!(args.seed, 7);
        assert_eq!(args.addr, "127.0.0.1:0");
        assert_eq!(args.workers, 3);
        assert_eq!(args.cache_capacity, 128);
        assert_eq!(args.cache_shards, 2);
        assert!(!args.no_ingest);
        assert!(
            ServeArgs::parse(&strings(&["--no-ingest"]))
                .unwrap()
                .no_ingest
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ServeArgs::parse(&strings(&["--seed"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--seed", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--wat"])).is_err());
        assert!(build_service(&ServeArgs {
            corpus: "wat".into(),
            ..ServeArgs::default()
        })
        .is_err());
    }

    #[test]
    fn snapshot_restart_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("banks_serve_snapshot_{}.graph", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let args = ServeArgs {
            corpus: "dblp".into(),
            graph_snapshot: Some(path.clone()),
            ..ServeArgs::default()
        };
        // Cold start: builds the graph and saves the snapshot.
        let (service, summary) = build_service(&args).unwrap();
        assert!(summary.contains("snapshot saved"), "{summary}");
        assert!(path.exists());
        let cold = service
            .search("mohan", Default::default())
            .expect("planted author");
        // Warm start: restores the snapshot; answers are identical.
        let (service2, summary2) = build_service(&args).unwrap();
        assert!(summary2.contains("restored from snapshot"), "{summary2}");
        let warm = service2.search("mohan", Default::default()).unwrap();
        assert_eq!(cold.result.answers.len(), warm.result.answers.len());
        for (a, b) in cold.result.answers.iter().zip(&warm.result.answers) {
            assert_eq!(a.tree.signature(), b.tree.signature());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn start_binds_ephemeral_port() {
        let args = ServeArgs {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeArgs::default()
        };
        let (service, server) = start(&args).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(service.stats().queries, 0);
        server.shutdown();
    }
}
