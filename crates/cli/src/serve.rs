//! The `banks serve` subcommand: build (or restore) a snapshot, wrap it
//! in a [`QueryService`], and serve HTTP until killed.
//!
//! ```text
//! banks serve --corpus dblp --seed 1 --addr 127.0.0.1:7331 --workers 8
//! banks serve --corpus dblp --data-dir /var/lib/banks
//! ```
//!
//! With `--data-dir`, the directory becomes the server's durable home
//! (`banks-persist`): on a fresh directory the corpus is built once and
//! a full-system snapshot bundle (epoch 0) is written; every acked
//! `POST /ingest` is appended to a write-ahead log *before* it
//! publishes; and on restart the newest snapshot is loaded, the WAL
//! replayed past its epoch, and the exact pre-crash state — epoch
//! included — is served again in milliseconds. `--no-fsync` trades the
//! power-loss guarantee for ingest latency; `--compact-wal-batches`
//! tunes how often the background compactor rolls a fresh snapshot.
//!
//! `--paged` (requires `--data-dir`) serves **out of core**: the bundle
//! is opened through `banks-pager` instead of decoded into RAM — the
//! text index answers per-term reads straight off the file, and the
//! graph keeps its decoded adjacency segments under `--memory-budget`
//! bytes (default 256 MiB), paging and evicting on demand. Answers are
//! bit-identical to the in-RAM backend; `/stats` grows a `storage`
//! object with resident/pinned bytes and page-in/eviction counters.
//!
//! With `--follow LEADER:PORT` (requires `--data-dir`), the process is
//! a **follower** (`banks-replica`): it bootstraps from the leader's
//! newest snapshot bundle, tails its WAL over HTTP, serves the same
//! epochs read-only, and persists what it tails so a restart resumes
//! without re-downloading. `POST /ingest` answers `503` with the
//! leader's address; `/search?min_epoch=…` waits for replication and
//! answers `409` (plus the leader hint) past its deadline.

use banks_core::{Banks, BanksConfig};
use banks_ingest::SnapshotPublisher;
use banks_persist::{PersistOptions, PersistentStore};
use banks_replica::{Replica, ReplicaConfig};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_util::{log_info, log_warn};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Parsed `serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Synthetic corpus name (`dblp`, `dblp-small`, `thesis`, `tpcd`).
    pub corpus: String,
    /// Generation seed.
    pub seed: u64,
    /// Bind address.
    pub addr: String,
    /// HTTP worker threads (0 = one per core).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Intra-query search threads for cold multi-keyword queries
    /// (0 = auto: cores / workers, so total threads stay bounded).
    pub search_threads: usize,
    /// Durable data directory (snapshot bundles + WAL; `banks-persist`).
    pub data_dir: Option<PathBuf>,
    /// Skip the per-append WAL fsync (survives process death, not power
    /// loss).
    pub no_fsync: bool,
    /// Roll a snapshot once this many batches sit in the WAL.
    pub compact_wal_batches: u64,
    /// Serve out of core: open the snapshot bundle paged (requires
    /// `--data-dir`).
    pub paged: bool,
    /// Decoded-graph-segment budget in bytes for `--paged`.
    pub memory_budget: u64,
    /// Disable the write path (`POST /ingest` answers 503).
    pub no_ingest: bool,
    /// Follower mode: tail this leader (`banks-replica`); requires
    /// `--data-dir`.
    pub follow: Option<String>,
    /// Deadline budget for requests without `X-Banks-Deadline-Ms`
    /// (`--default-deadline-ms`); `None` leaves unannotated requests
    /// unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Cap on client-supplied deadline budgets (`--max-deadline-ms`).
    pub max_deadline_ms: u64,
    /// Hard cap on a `POST /ingest` body (`--max-body-bytes`; accepts
    /// `k`/`m`/`g` suffixes).
    pub max_body_bytes: u64,
    /// Per-client token-bucket rate limit in requests/second
    /// (`--rate-limit-rps`); `None` disables limiting.
    pub rate_limit_rps: Option<f64>,
    /// Queue-wait bound before a connection is shed with 503
    /// (`--shed-after-ms`).
    pub shed_after_ms: u64,
    /// Budget for reading the request line + headers
    /// (`--header-read-timeout-ms`); cuts off slowloris clients.
    pub header_read_timeout_ms: u64,
    /// Log verbosity override (`error|warn|info|debug`); defaults to
    /// the `BANKS_LOG` environment variable, then `info`.
    pub log_level: Option<banks_util::log::Level>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            corpus: "dblp".to_string(),
            seed: 1,
            addr: "127.0.0.1:7331".to_string(),
            workers: 0,
            cache_capacity: 4096,
            cache_shards: 8,
            search_threads: 0,
            data_dir: None,
            no_fsync: false,
            compact_wal_batches: PersistOptions::default().compact_wal_batches,
            paged: false,
            memory_budget: 256 * 1024 * 1024,
            no_ingest: false,
            follow: None,
            default_deadline_ms: server_defaults().default_deadline_ms,
            max_deadline_ms: server_defaults().max_deadline_ms,
            max_body_bytes: server_defaults().max_body_bytes,
            rate_limit_rps: server_defaults().rate_limit_rps,
            shed_after_ms: server_defaults().shed_after.as_millis() as u64,
            header_read_timeout_ms: server_defaults().header_read_timeout.as_millis() as u64,
            log_level: None,
        }
    }
}

/// The server crate's own defaults — the CLI mirrors them instead of
/// restating the numbers, so the two can never drift apart.
fn server_defaults() -> ServerConfig {
    ServerConfig::default()
}

impl ServeArgs {
    /// Parse `--flag value` pairs (everything after `banks serve`).
    pub fn parse(args: &[String]) -> Result<ServeArgs, String> {
        let mut parsed = ServeArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--corpus" => parsed.corpus = value("--corpus")?,
                "--seed" => {
                    parsed.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?
                }
                "--addr" => parsed.addr = value("--addr")?,
                "--workers" => {
                    parsed.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be an integer".to_string())?
                }
                "--cache-capacity" => {
                    parsed.cache_capacity = value("--cache-capacity")?
                        .parse()
                        .map_err(|_| "--cache-capacity must be an integer".to_string())?
                }
                "--cache-shards" => {
                    parsed.cache_shards = value("--cache-shards")?
                        .parse()
                        .map_err(|_| "--cache-shards must be an integer".to_string())?
                }
                "--search-threads" => {
                    parsed.search_threads = value("--search-threads")?
                        .parse()
                        .map_err(|_| "--search-threads must be an integer".to_string())?
                }
                "--data-dir" => parsed.data_dir = Some(PathBuf::from(value("--data-dir")?)),
                "--no-fsync" => parsed.no_fsync = true,
                "--compact-wal-batches" => {
                    parsed.compact_wal_batches = value("--compact-wal-batches")?
                        .parse()
                        .map_err(|_| "--compact-wal-batches must be an integer".to_string())?
                }
                "--paged" => parsed.paged = true,
                "--memory-budget" => {
                    parsed.memory_budget = parse_byte_size(&value("--memory-budget")?)?
                }
                "--no-ingest" => parsed.no_ingest = true,
                "--follow" => parsed.follow = Some(value("--follow")?),
                "--default-deadline-ms" => {
                    parsed.default_deadline_ms = Some(
                        value("--default-deadline-ms")?
                            .parse()
                            .map_err(|_| "--default-deadline-ms must be an integer".to_string())?,
                    )
                }
                "--max-deadline-ms" => {
                    parsed.max_deadline_ms = value("--max-deadline-ms")?
                        .parse()
                        .map_err(|_| "--max-deadline-ms must be an integer".to_string())?
                }
                "--max-body-bytes" => {
                    parsed.max_body_bytes = parse_byte_size(&value("--max-body-bytes")?)?
                }
                "--rate-limit-rps" => {
                    let raw = value("--rate-limit-rps")?;
                    let rps: f64 = raw
                        .parse()
                        .map_err(|_| "--rate-limit-rps must be a number".to_string())?;
                    if !rps.is_finite() || rps <= 0.0 {
                        return Err("--rate-limit-rps must be positive".to_string());
                    }
                    parsed.rate_limit_rps = Some(rps);
                }
                "--shed-after-ms" => {
                    parsed.shed_after_ms = value("--shed-after-ms")?
                        .parse()
                        .map_err(|_| "--shed-after-ms must be an integer".to_string())?
                }
                "--header-read-timeout-ms" => {
                    parsed.header_read_timeout_ms = value("--header-read-timeout-ms")?
                        .parse()
                        .map_err(|_| "--header-read-timeout-ms must be an integer".to_string())?
                }
                "--log-level" => {
                    let raw = value("--log-level")?;
                    parsed.log_level =
                        Some(banks_util::log::Level::parse(&raw).ok_or_else(|| {
                            format!("--log-level must be error|warn|info|debug, got `{raw}`")
                        })?)
                }
                other => return Err(format!("unknown serve flag `{other}` — see `banks help`")),
            }
        }
        if parsed.paged && parsed.data_dir.is_none() {
            return Err(
                "--paged requires --data-dir (it serves straight off the snapshot bundle file)"
                    .to_string(),
            );
        }
        Ok(parsed)
    }
}

/// Parse a byte size: a plain integer, or one with a `k`/`m`/`g` suffix
/// (binary units, case-insensitive) — `--memory-budget 64m`.
fn parse_byte_size(s: &str) -> Result<u64, String> {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, shift) = match lower.as_bytes().last() {
        Some(b'k') => (&lower[..lower.len() - 1], 10),
        Some(b'm') => (&lower[..lower.len() - 1], 20),
        Some(b'g') => (&lower[..lower.len() - 1], 30),
        _ => (lower.as_str(), 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{s}` is not a byte size (use e.g. 268435456, 256m, 1g)"))?;
    n.checked_shl(shift)
        .filter(|&v| shift == 0 || v >> shift == n)
        .ok_or_else(|| format!("`{s}` overflows"))
}

/// The durable half of a built service: the publisher (seeded at the
/// recovered epoch, WAL hook installed) and the store it writes to.
pub struct DurableParts {
    /// Ready-to-use publisher for the ingest endpoint.
    pub publisher: SnapshotPublisher,
    /// The open data directory.
    pub store: Arc<PersistentStore>,
}

/// Build the shared snapshot + service per the arguments. Returns the
/// service, a human-readable startup summary, and — when `--data-dir`
/// is active — the durable parts for the ingest endpoint.
pub fn build_service(
    args: &ServeArgs,
) -> Result<(Arc<QueryService>, String, Option<DurableParts>), String> {
    let config = BanksConfig::default();
    let service_config = ServiceConfig {
        cache_capacity: args.cache_capacity,
        cache_shards: args.cache_shards,
        search_threads: resolve_search_threads(args),
        ..ServiceConfig::default()
    };

    if let Some(dir) = &args.data_dir {
        let options = PersistOptions {
            fsync: !args.no_fsync,
            compact_wal_batches: args.compact_wal_batches,
            paged_budget: args.paged.then_some(args.memory_budget),
            ..PersistOptions::default()
        };
        let (store, recovery) = PersistentStore::open(dir, &config, options)
            .map_err(|e| format!("open data dir {}: {e}", dir.display()))?;
        for warning in &recovery.warnings {
            log_warn!("serve", "{warning}");
        }
        let (banks, epoch, source) = match recovery.banks {
            Some(banks) => {
                let source = format!(
                    "recovered from {} (epoch {}, {} WAL batch(es) replayed{})",
                    dir.display(),
                    recovery.epoch,
                    recovery.replayed_batches,
                    if recovery.truncated_wal_bytes > 0 {
                        format!(", {} torn byte(s) truncated", recovery.truncated_wal_bytes)
                    } else {
                        String::new()
                    }
                );
                (banks, recovery.epoch, source)
            }
            None => {
                let db = crate::corpus::open(&args.corpus, args.seed)?;
                let mut banks =
                    Arc::new(Banks::with_config(db, config.clone()).map_err(|e| e.to_string())?);
                store
                    .save_snapshot(&banks, 0)
                    .map_err(|e| format!("initial snapshot: {e}"))?;
                if args.paged {
                    // Swap the freshly built in-RAM state for a paged
                    // open of the bundle just written — the build was
                    // unavoidable (something had to derive the graph),
                    // but serving stays under the memory budget.
                    let path = dir.join(banks_persist::snapshot_file(0));
                    let (paged, _) = banks_persist::open_bundle_paged(
                        &path,
                        args.memory_budget as usize,
                        &config,
                    )
                    .map_err(|e| format!("paged reopen of {}: {e}", path.display()))?;
                    banks = Arc::new(paged);
                }
                (
                    banks,
                    0,
                    format!(
                        "built from database (initial bundle saved to {})",
                        dir.display()
                    ),
                )
            }
        };
        let summary = summary_line(args, &banks, &source);
        let service = Arc::new(QueryService::with_epoch(
            Arc::clone(&banks),
            epoch,
            service_config,
        ));
        let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
        publisher.set_durability_hook(store.wal_hook());
        return Ok((service, summary, Some(DurableParts { publisher, store })));
    }

    // Volatile mode: build from the corpus, serve from RAM.
    let db = crate::corpus::open(&args.corpus, args.seed)?;
    let banks = Banks::with_config(db, config).map_err(|e| e.to_string())?;
    let summary = summary_line(args, &banks, "built from database");
    let service = Arc::new(QueryService::new(Arc::new(banks), service_config));
    Ok((service, summary, None))
}

/// Resolve `--search-threads 0` (auto) against the worker pool: each
/// worker may fan a cold query out, so the budget is cores ÷ workers —
/// total threads stay bounded by the machine regardless of either flag.
fn resolve_search_threads(args: &ServeArgs) -> usize {
    if args.search_threads != 0 {
        return args.search_threads;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = if args.workers == 0 {
        cores
    } else {
        args.workers
    };
    (cores / workers.max(1)).max(1)
}

/// Assemble the server's config from the parsed flags.
fn server_config(args: &ServeArgs, workers: usize, leader_hint: Option<String>) -> ServerConfig {
    ServerConfig {
        addr: args.addr.clone(),
        workers,
        leader_hint,
        max_body_bytes: args.max_body_bytes,
        default_deadline_ms: args.default_deadline_ms,
        max_deadline_ms: args.max_deadline_ms,
        shed_after: Duration::from_millis(args.shed_after_ms),
        rate_limit_rps: args.rate_limit_rps,
        header_read_timeout: Duration::from_millis(args.header_read_timeout_ms),
        ..ServerConfig::default()
    }
}

fn summary_line(args: &ServeArgs, banks: &Banks, source: &str) -> String {
    let backend = if args.paged {
        format!(
            " — paged backend, budget {:.0} MiB",
            args.memory_budget as f64 / (1024.0 * 1024.0)
        )
    } else {
        String::new()
    };
    format!(
        "corpus {} (seed {}): {} nodes, {} edges, {:.1} MiB — graph {}{backend}",
        args.corpus,
        args.seed,
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
        banks.memory_bytes() as f64 / (1024.0 * 1024.0),
        source,
    )
}

/// Start the HTTP server for the given arguments. Returns the running
/// server so callers (tests, embedding processes) control its lifetime.
/// A third tuple element keeps follower mode's tail thread alive: drop
/// it and the follower stops replicating.
pub fn start(
    args: &ServeArgs,
) -> Result<(Arc<QueryService>, BanksServer, Option<Replica>), String> {
    if let Some(level) = args.log_level {
        banks_util::log::set_level(level);
    }
    if args.follow.is_some() {
        return start_follower(args);
    }
    let (service, summary, durable) = build_service(args)?;
    let workers = if args.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        args.workers
    };
    let durable_on = durable.is_some();
    // The store outlives the ingest decision: a durable *read-only*
    // server (`--data-dir --no-ingest`) still surfaces its recovery
    // counters under `/stats`, it just drops the write path.
    let (ingest, store) = match (args.no_ingest, durable) {
        (true, parts) => (None, parts.map(|p| p.store)),
        (false, Some(parts)) => {
            let store = Arc::clone(&parts.store);
            (
                Some(IngestEndpoint::with_publisher(
                    Arc::clone(&service),
                    parts.publisher,
                    Some(parts.store),
                )),
                Some(store),
            )
        }
        (false, None) => (Some(IngestEndpoint::new(Arc::clone(&service))), None),
    };
    let server = BanksServer::bind_full(
        Arc::clone(&service),
        ingest,
        store,
        server_config(args, workers, None),
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    log_info!("serve", "{summary}");
    log_info!(
        "serve",
        "serving on http://{} ({} workers × {} search thread(s), cache {} entries × {} shards)",
        server.local_addr(),
        workers,
        resolve_search_threads(args),
        service.cache().capacity(),
        service.cache().shard_count(),
    );
    if args.no_ingest {
        log_info!(
            "serve",
            "endpoints: /search?q=…  /node?id=…  /stats  /metrics  /epochs  /health (ingest disabled)"
        );
    } else if durable_on {
        log_info!(
            "serve",
            "endpoints: /search?q=…  /node?id=…  /stats  /metrics  /epochs  /health  POST /ingest \
             (live writes on, WAL'd to disk)"
        );
    } else {
        log_info!(
            "serve",
            "endpoints: /search?q=…  /node?id=…  /stats  /metrics  /epochs  /health  POST /ingest (live writes on)"
        );
    }
    Ok((service, server, None))
}

/// Follower mode: bootstrap-or-resume from `--data-dir`, tail the
/// leader's WAL, and serve read-only with the leader advertised for
/// writes and read-your-writes redirects.
fn start_follower(
    args: &ServeArgs,
) -> Result<(Arc<QueryService>, BanksServer, Option<Replica>), String> {
    let leader = args.follow.clone().expect("follower mode");
    let dir = args.data_dir.clone().ok_or_else(|| {
        "--follow requires --data-dir (the follower persists the snapshot and WAL it tails)"
            .to_string()
    })?;
    if args.no_ingest {
        log_warn!(
            "serve",
            "--no-ingest is implied by --follow (followers never ingest)"
        );
    }
    let service_config = ServiceConfig {
        cache_capacity: args.cache_capacity,
        cache_shards: args.cache_shards,
        search_threads: resolve_search_threads(args),
        ..ServiceConfig::default()
    };
    let replica = Replica::start(
        ReplicaConfig {
            leader: leader.clone(),
            data_dir: dir,
            options: PersistOptions {
                fsync: !args.no_fsync,
                compact_wal_batches: args.compact_wal_batches,
                paged_budget: args.paged.then_some(args.memory_budget),
                ..PersistOptions::default()
            },
            ..ReplicaConfig::default()
        },
        service_config,
    )
    .map_err(|e| format!("follow {leader}: {e}"))?;
    let service = replica.service();
    let workers = if args.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        args.workers
    };
    // The follower's replication counters ride on the same registry as
    // the serving families, so one scrape of this process sees both.
    let registry = Arc::new(banks_telemetry::Registry::new());
    replica.install_metrics(&registry);
    let server = BanksServer::bind_with_registry(
        Arc::clone(&service),
        None,
        Some(replica.store()),
        registry,
        server_config(args, workers, Some(leader.clone())),
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let downloaded = replica.stats().snapshots_downloaded > 0;
    log_info!(
        "serve",
        "following {leader} from epoch {} ({}) — serving read-only on http://{}",
        service.epoch(),
        if downloaded {
            "bootstrapped from leader snapshot"
        } else {
            "resumed from local state"
        },
        server.local_addr(),
    );
    Ok((service, server, Some(replica)))
}

/// Foreground entry point for `banks serve`: serve until the process is
/// killed.
pub fn run(args: &[String]) -> Result<(), String> {
    let args = ServeArgs::parse(args)?;
    let (_service, server, replica) = start(&args)?;
    server.join();
    drop(replica); // stop tailing only after the server is down
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("banks_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parse_defaults_and_overrides() {
        assert_eq!(ServeArgs::parse(&[]).unwrap(), ServeArgs::default());
        let args = ServeArgs::parse(&strings(&[
            "--corpus",
            "thesis",
            "--seed",
            "7",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--cache-capacity",
            "128",
            "--cache-shards",
            "2",
            "--data-dir",
            "/tmp/banks-data",
            "--no-fsync",
            "--compact-wal-batches",
            "32",
        ]))
        .unwrap();
        assert_eq!(args.corpus, "thesis");
        assert_eq!(args.seed, 7);
        assert_eq!(args.addr, "127.0.0.1:0");
        assert_eq!(args.workers, 3);
        assert_eq!(args.cache_capacity, 128);
        assert_eq!(args.cache_shards, 2);
        let threaded = ServeArgs::parse(&strings(&["--search-threads", "4"])).unwrap();
        assert_eq!(threaded.search_threads, 4);
        assert_eq!(resolve_search_threads(&threaded), 4);
        // Auto sizes against the worker pool and never returns 0.
        assert!(resolve_search_threads(&ServeArgs::default()) >= 1);
        assert!(ServeArgs::parse(&strings(&["--search-threads", "x"])).is_err());
        assert_eq!(
            args.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/banks-data"))
        );
        assert!(args.no_fsync);
        assert_eq!(args.compact_wal_batches, 32);
        assert!(!args.no_ingest);
        assert!(
            ServeArgs::parse(&strings(&["--no-ingest"]))
                .unwrap()
                .no_ingest
        );
        let paged = ServeArgs::parse(&strings(&[
            "--data-dir",
            "/tmp/x",
            "--paged",
            "--memory-budget",
            "64m",
        ]))
        .unwrap();
        assert!(paged.paged);
        assert_eq!(paged.memory_budget, 64 << 20);
        assert_eq!(parse_byte_size("123").unwrap(), 123);
        assert_eq!(parse_byte_size("2G").unwrap(), 2 << 30);
        assert!(parse_byte_size("lots").is_err());
        // --paged without a data dir is refused at parse time.
        assert!(ServeArgs::parse(&strings(&["--paged"])).is_err());
        assert_eq!(
            ServeArgs::parse(&strings(&["--follow", "127.0.0.1:7331"]))
                .unwrap()
                .follow
                .as_deref(),
            Some("127.0.0.1:7331")
        );
    }

    #[test]
    fn parse_overload_control_flags() {
        let args = ServeArgs::parse(&strings(&[
            "--default-deadline-ms",
            "250",
            "--max-deadline-ms",
            "2000",
            "--max-body-bytes",
            "1m",
            "--rate-limit-rps",
            "50",
            "--shed-after-ms",
            "100",
            "--header-read-timeout-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(args.default_deadline_ms, Some(250));
        assert_eq!(args.max_deadline_ms, 2000);
        assert_eq!(args.max_body_bytes, 1 << 20);
        assert_eq!(args.rate_limit_rps, Some(50.0));
        assert_eq!(args.shed_after_ms, 100);
        assert_eq!(args.header_read_timeout_ms, 500);
        let config = server_config(&args, 2, None);
        assert_eq!(config.default_deadline_ms, Some(250));
        assert_eq!(config.max_deadline_ms, 2000);
        assert_eq!(config.max_body_bytes, 1 << 20);
        assert_eq!(config.rate_limit_rps, Some(50.0));
        assert_eq!(config.shed_after, Duration::from_millis(100));
        assert_eq!(config.header_read_timeout, Duration::from_millis(500));
        // Defaults mirror the server crate's own.
        let defaults = ServeArgs::default();
        assert_eq!(
            defaults.max_body_bytes,
            ServerConfig::default().max_body_bytes
        );
        assert_eq!(defaults.rate_limit_rps, None);
        // Bad values are refused with a flag-specific message.
        assert!(ServeArgs::parse(&strings(&["--rate-limit-rps", "0"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--rate-limit-rps", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--default-deadline-ms", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--max-body-bytes", "lots"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ServeArgs::parse(&strings(&["--seed"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--seed", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--compact-wal-batches", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--wat"])).is_err());
        assert!(build_service(&ServeArgs {
            corpus: "wat".into(),
            ..ServeArgs::default()
        })
        .is_err());
        // Follower mode without a data directory is refused up front.
        match start(&ServeArgs {
            follow: Some("127.0.0.1:1".into()),
            ..ServeArgs::default()
        }) {
            Err(err) => assert!(err.contains("--data-dir"), "{err}"),
            Ok(_) => panic!("follower mode without --data-dir must fail"),
        }
    }

    #[test]
    fn paged_serve_matches_in_ram_answers() {
        let dir = tmp_dir("paged");
        let base = ServeArgs {
            corpus: "dblp".into(),
            data_dir: Some(dir.clone()),
            ..ServeArgs::default()
        };
        // Cold start in-RAM: builds the corpus and writes the bundle.
        let (in_ram, _, durable) = build_service(&base).unwrap();
        let expected = in_ram.search("mohan", Default::default()).unwrap();
        drop(durable);
        drop(in_ram);
        // Reopen the same directory paged, under a small budget.
        let args = ServeArgs {
            paged: true,
            memory_budget: 1 << 20,
            ..base
        };
        let (paged, summary, durable) = build_service(&args).unwrap();
        assert!(summary.contains("paged backend"), "{summary}");
        assert!(durable.is_some());
        let got = paged.search("mohan", Default::default()).unwrap();
        assert_eq!(expected.result.answers.len(), got.result.answers.len());
        for (a, b) in expected.result.answers.iter().zip(&got.result.answers) {
            assert_eq!(a.tree.signature(), b.tree.signature());
        }
        drop(durable);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn data_dir_cold_start_then_recovery() {
        let dir = tmp_dir("datadir");
        let args = ServeArgs {
            corpus: "dblp".into(),
            data_dir: Some(dir.clone()),
            ..ServeArgs::default()
        };
        // Cold start: builds and writes the initial bundle.
        let (service, summary, durable) = build_service(&args).unwrap();
        assert!(summary.contains("initial bundle saved"), "{summary}");
        let parts = durable.expect("durable parts");
        assert_eq!(parts.publisher.epoch(), 0);
        assert_eq!(service.epoch(), 0);
        let cold = service.search("mohan", Default::default()).unwrap();
        drop(parts);
        drop(service);

        // Restart: recovered from the bundle, identical answers.
        let (service2, summary2, durable2) = build_service(&args).unwrap();
        assert!(summary2.contains("recovered from"), "{summary2}");
        assert!(durable2.is_some());
        let warm = service2.search("mohan", Default::default()).unwrap();
        assert_eq!(cold.result.answers.len(), warm.result.answers.len());
        for (a, b) in cold.result.answers.iter().zip(&warm.result.answers) {
            assert_eq!(a.tree.signature(), b.tree.signature());
        }
        drop(durable2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_read_only_server_reports_persistence_stats() {
        use std::io::{Read, Write};

        let dir = tmp_dir("ro_stats");
        // Seed the directory with a recoverable state.
        {
            let args = ServeArgs {
                corpus: "dblp".into(),
                data_dir: Some(dir.clone()),
                ..ServeArgs::default()
            };
            build_service(&args).unwrap();
        }
        // Durable read-only: no ingest endpoint, but /stats must still
        // carry the recovery counters.
        let args = ServeArgs {
            corpus: "dblp".into(),
            data_dir: Some(dir.clone()),
            no_ingest: true,
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeArgs::default()
        };
        let (_service, server, _replica) = start(&args).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.contains(r#""persistence""#), "{body}");
        assert!(body.contains(r#""recovered_epoch":0"#), "{body}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn start_binds_ephemeral_port() {
        let args = ServeArgs {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeArgs::default()
        };
        let (service, server, replica) = start(&args).unwrap();
        assert!(replica.is_none());
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(service.stats().queries, 0);
        server.shutdown();
    }
}
