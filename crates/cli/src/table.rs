//! Plain-text table rendering for the shell.

use banks_browse::RenderedView;

/// Render a [`RenderedView`] as an aligned ASCII table with a pagination
/// footer. Link-bearing cells are bracketed so navigation targets are
/// visible in a terminal.
pub fn render_text_table(view: &RenderedView) -> String {
    let mut widths: Vec<usize> = view.columns.iter().map(|c| c.chars().count()).collect();
    let cells: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| {
                    if cell.link.is_some() {
                        format!("[{}]", cell.text)
                    } else {
                        cell.text.clone()
                    }
                })
                .collect()
        })
        .collect();
    for row in &cells {
        for (i, text) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(text.chars().count());
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", view.title));
    let header: Vec<String> = view
        .columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect();
    out.push_str(&header.join(" | "));
    out.push('\n');
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&rule.join("-+-"));
    out.push('\n');
    for row in &cells {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(t, w)| format!("{t:<w$}"))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out.push_str(&format!(
        "page {}/{} — {} rows total\n",
        view.page + 1,
        view.page_count,
        view.total_rows
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_browse::{render, ViewSpec};
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn table_is_aligned_and_marks_links() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let spec = ViewSpec::relation(d.db.relation_id("Student").unwrap());
        let view = render(&d.db, &spec).unwrap();
        let text = render_text_table(&view);
        assert!(text.contains("== Student =="));
        assert!(text.contains(" | "));
        assert!(text.contains('['), "links are bracketed");
        assert!(text.contains("page 1/"));
        // All data lines have equal width.
        let lines: Vec<&str> = text.lines().skip(1).take(5).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }
}
