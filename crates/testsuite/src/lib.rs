//! Host crate for the workspace's cross-crate integration tests.
//!
//! The test sources live in the repository-level `tests/` directory; run
//! them with `cargo test -p banks-testsuite`.
