//! Error type for the ingestion pipeline.

use banks_core::BanksError;
use banks_storage::StorageError;
use std::fmt;

/// Result alias for ingestion operations.
pub type IngestResult<T> = Result<T, IngestError>;

/// Errors raised while parsing, validating, or applying a delta batch.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The delta file / request body is malformed.
    Parse(String),
    /// A tuple operation violated a storage constraint (schema arity or
    /// types, primary-key uniqueness, the FK catalog, RESTRICT deletes).
    Storage(StorageError),
    /// Re-snapshotting the patched parts into a `Banks` failed.
    Banks(BanksError),
    /// The active configuration cannot be maintained incrementally
    /// (e.g. authority-transfer prestige is a global iteration).
    Unsupported(String),
    /// The durability hook refused the batch: the write-ahead log could
    /// not be appended or fsync'd, so the publication was aborted —
    /// an acked ingest must never be less durable than the log.
    Durability(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Parse(m) => write!(f, "bad delta: {m}"),
            IngestError::Storage(e) => write!(f, "delta rejected: {e}"),
            IngestError::Banks(e) => write!(f, "snapshot publication failed: {e}"),
            IngestError::Unsupported(m) => write!(f, "unsupported for incremental apply: {m}"),
            IngestError::Durability(m) => write!(f, "durability failure, publish aborted: {m}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Storage(e) => Some(e),
            IngestError::Banks(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IngestError {
    fn from(e: StorageError) -> Self {
        IngestError::Storage(e)
    }
}

impl From<BanksError> for IngestError {
    fn from(e: BanksError) -> Self {
        IngestError::Banks(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: IngestError = StorageError::UnknownRelation("X".into()).into();
        assert!(e.to_string().contains("delta rejected"));
        assert!(std::error::Error::source(&e).is_some());
        let e: IngestError = BanksError::EmptyQuery.into();
        assert!(e.to_string().contains("publication failed"));
        assert!(IngestError::Parse("nope".into())
            .to_string()
            .contains("nope"));
    }
}
