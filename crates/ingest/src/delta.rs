//! The delta log: tuple-level operations and their wire formats.
//!
//! A [`DeltaBatch`] is an ordered list of [`TupleOp`]s — the unit of
//! atomic publication. Two serializations are supported:
//!
//! * **JSON** (typed values):
//!
//!   ```json
//!   {"ops": [
//!     {"op": "insert", "relation": "Author", "values": ["A9", "Jane Doe"]},
//!     {"op": "update", "relation": "Author", "key": ["A9"],
//!      "set": {"AuthorName": "Janet Doe"}},
//!     {"op": "delete", "relation": "Writes", "key": ["A9", "P1"]}
//!   ]}
//!   ```
//!
//!   A bare top-level array of ops is also accepted. JSON strings map to
//!   [`Value::Text`], integers to [`Value::Int`], other numbers to
//!   [`Value::Float`], booleans and nulls to their counterparts.
//!
//! * **CSV** (text values, coerced to the column type at apply time;
//!   `#` starts a comment):
//!
//!   ```text
//!   insert,Author,A9,Jane Doe
//!   update,Author,A9,AuthorName=Janet Doe
//!   delete,Writes,A9,P1
//!   ```
//!
//!   For `update`, every field between the relation and the final
//!   `column=value` field is a primary-key part.
//!
//! Referential validation (schema arity/types, primary keys, the FK
//! catalog) happens when the batch is applied — see [`crate::apply`] —
//! because it needs the live database.

use crate::error::IngestError;
use banks_storage::Value;
use banks_util::json::Json;

/// One tuple-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TupleOp {
    /// Insert a full tuple into `relation`.
    Insert {
        /// Target relation name.
        relation: String,
        /// Column values in schema order.
        values: Vec<Value>,
    },
    /// Update columns of the tuple with primary key `key`.
    Update {
        /// Target relation name.
        relation: String,
        /// Full primary-key value of the tuple to update.
        key: Vec<Value>,
        /// `(column name, new value)` assignments.
        set: Vec<(String, Value)>,
    },
    /// Delete the tuple with primary key `key`.
    Delete {
        /// Target relation name.
        relation: String,
        /// Full primary-key value of the tuple to delete.
        key: Vec<Value>,
    },
}

impl TupleOp {
    /// The relation this op targets.
    pub fn relation(&self) -> &str {
        match self {
            TupleOp::Insert { relation, .. }
            | TupleOp::Update { relation, .. }
            | TupleOp::Delete { relation, .. } => relation,
        }
    }
}

/// An ordered batch of tuple operations — the unit of atomic publication.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// Operations, applied in order.
    pub ops: Vec<TupleOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parse the JSON wire format (see module docs).
    pub fn from_json(text: &str) -> Result<DeltaBatch, IngestError> {
        let root = Json::parse(text).map_err(|e| IngestError::Parse(e.to_string()))?;
        let ops_json = match &root {
            Json::Arr(items) => items.as_slice(),
            Json::Obj(_) => root
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or_else(|| IngestError::Parse("missing `ops` array".into()))?,
            _ => return Err(IngestError::Parse("expected an object or array".into())),
        };
        let mut ops = Vec::with_capacity(ops_json.len());
        for (i, op) in ops_json.iter().enumerate() {
            ops.push(Self::op_from_json(op).map_err(|e| match e {
                IngestError::Parse(m) => IngestError::Parse(format!("op #{i}: {m}")),
                other => other,
            })?);
        }
        Ok(DeltaBatch { ops })
    }

    fn op_from_json(op: &Json) -> Result<TupleOp, IngestError> {
        let kind = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| IngestError::Parse("missing `op` kind".into()))?;
        let relation = op
            .get("relation")
            .and_then(Json::as_str)
            .ok_or_else(|| IngestError::Parse("missing `relation`".into()))?
            .to_string();
        let values_of = |field: &str| -> Result<Vec<Value>, IngestError> {
            op.get(field)
                .and_then(Json::as_arr)
                .ok_or_else(|| IngestError::Parse(format!("missing `{field}` array")))?
                .iter()
                .map(value_from_json)
                .collect()
        };
        match kind {
            "insert" => Ok(TupleOp::Insert {
                relation,
                values: values_of("values")?,
            }),
            "delete" => Ok(TupleOp::Delete {
                relation,
                key: values_of("key")?,
            }),
            "update" => {
                let set_json = op
                    .get("set")
                    .ok_or_else(|| IngestError::Parse("missing `set` object".into()))?;
                let Json::Obj(pairs) = set_json else {
                    return Err(IngestError::Parse("`set` must be an object".into()));
                };
                if pairs.is_empty() {
                    return Err(IngestError::Parse("`set` must not be empty".into()));
                }
                let set = pairs
                    .iter()
                    .map(|(col, v)| Ok((col.clone(), value_from_json(v)?)))
                    .collect::<Result<Vec<_>, IngestError>>()?;
                Ok(TupleOp::Update {
                    relation,
                    key: values_of("key")?,
                    set,
                })
            }
            other => Err(IngestError::Parse(format!("unknown op kind `{other}`"))),
        }
    }

    /// Parse the CSV wire format (see module docs). All values are text;
    /// the applier coerces them to the target column type.
    pub fn from_csv(text: &str) -> Result<DeltaBatch, IngestError> {
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_csv_line(line)
                .map_err(|m| IngestError::Parse(format!("line {}: {m}", lineno + 1)))?;
            let err = |m: &str| IngestError::Parse(format!("line {}: {m}", lineno + 1));
            if fields.len() < 2 {
                return Err(err("expected `op,relation,...`"));
            }
            let relation = fields[1].clone();
            let rest = &fields[2..];
            let text_values = |fs: &[String]| fs.iter().map(Value::text).collect::<Vec<_>>();
            match fields[0].as_str() {
                "insert" => ops.push(TupleOp::Insert {
                    relation,
                    values: text_values(rest),
                }),
                "delete" => {
                    if rest.is_empty() {
                        return Err(err("delete needs key fields"));
                    }
                    ops.push(TupleOp::Delete {
                        relation,
                        key: text_values(rest),
                    });
                }
                "update" => {
                    let Some((assignment, key_fields)) = rest.split_last() else {
                        return Err(err("update needs key fields and `column=value`"));
                    };
                    let Some((col, value)) = assignment.split_once('=') else {
                        return Err(err("update's last field must be `column=value`"));
                    };
                    if key_fields.is_empty() {
                        return Err(err("update needs key fields before `column=value`"));
                    }
                    ops.push(TupleOp::Update {
                        relation,
                        key: text_values(key_fields),
                        set: vec![(col.to_string(), Value::text(value))],
                    });
                }
                other => return Err(err(&format!("unknown op `{other}`"))),
            }
        }
        Ok(DeltaBatch { ops })
    }

    /// Serialize to the JSON wire format (what `banks ingest` POSTs).
    pub fn to_json(&self) -> Json {
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                TupleOp::Insert { relation, values } => Json::obj([
                    ("op", Json::Str("insert".into())),
                    ("relation", Json::Str(relation.clone())),
                    (
                        "values",
                        Json::Arr(values.iter().map(value_to_json).collect()),
                    ),
                ]),
                TupleOp::Update { relation, key, set } => Json::obj([
                    ("op", Json::Str("update".into())),
                    ("relation", Json::Str(relation.clone())),
                    ("key", Json::Arr(key.iter().map(value_to_json).collect())),
                    (
                        "set",
                        Json::Obj(
                            set.iter()
                                .map(|(c, v)| (c.clone(), value_to_json(v)))
                                .collect(),
                        ),
                    ),
                ]),
                TupleOp::Delete { relation, key } => Json::obj([
                    ("op", Json::Str("delete".into())),
                    ("relation", Json::Str(relation.clone())),
                    ("key", Json::Arr(key.iter().map(value_to_json).collect())),
                ]),
            })
            .collect();
        Json::obj([("ops", Json::Arr(ops))])
    }
}

/// JSON scalar → storage [`Value`].
pub fn value_from_json(v: &Json) -> Result<Value, IngestError> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Uint(u) => i64::try_from(*u)
            .map(Value::Int)
            .or(Ok(Value::Float(*u as f64))),
        Json::Num(n) => Ok(Value::Float(*n)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Arr(_) | Json::Obj(_) => Err(IngestError::Parse(
            "tuple values must be JSON scalars".into(),
        )),
    }
}

/// Storage [`Value`] → JSON scalar.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Num(*f),
        Value::Text(s) => Json::Str(s.clone()),
    }
}

/// Split one CSV line into fields: `,` separates, `"` quotes (doubled to
/// escape), no embedded newlines.
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    field.push('"');
                    chars.next();
                }
                '"' => quoted = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    if quoted {
        return Err("unterminated quote".into());
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_all_ops() {
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("A9"), Value::text("Jane Doe"), Value::Int(3)],
                },
                TupleOp::Update {
                    relation: "Author".into(),
                    key: vec![Value::text("A9")],
                    set: vec![
                        ("AuthorName".into(), Value::text("Janet")),
                        ("HIndex".into(), Value::Null),
                    ],
                },
                TupleOp::Delete {
                    relation: "Writes".into(),
                    key: vec![Value::text("A9"), Value::text("P1")],
                },
            ],
        };
        let text = batch.to_json().compact();
        assert_eq!(DeltaBatch::from_json(&text).unwrap(), batch);
        // Pretty form and bare-array form parse too.
        assert_eq!(
            DeltaBatch::from_json(&batch.to_json().pretty()).unwrap(),
            batch
        );
        let bare = Json::Arr(match batch.to_json() {
            Json::Obj(pairs) => pairs[0].1.as_arr().unwrap().to_vec(),
            _ => unreachable!(),
        })
        .compact();
        assert_eq!(DeltaBatch::from_json(&bare).unwrap(), batch);
    }

    #[test]
    fn json_typed_values() {
        let b = DeltaBatch::from_json(
            r#"{"ops":[{"op":"insert","relation":"R","values":[1, 2.5, true, null, "x"]}]}"#,
        )
        .unwrap();
        match &b.ops[0] {
            TupleOp::Insert { values, .. } => assert_eq!(
                values,
                &vec![
                    Value::Int(1),
                    Value::Float(2.5),
                    Value::Bool(true),
                    Value::Null,
                    Value::text("x"),
                ]
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn json_rejects_malformed_batches() {
        for bad in [
            "{",
            "7",
            r#"{"ops": 3}"#,
            r#"{"ops":[{"relation":"R"}]}"#,
            r#"{"ops":[{"op":"insert"}]}"#,
            r#"{"ops":[{"op":"teleport","relation":"R"}]}"#,
            r#"{"ops":[{"op":"insert","relation":"R","values":[[1]]}]}"#,
            r#"{"ops":[{"op":"update","relation":"R","key":["k"],"set":{}}]}"#,
            r#"{"ops":[{"op":"update","relation":"R","key":["k"],"set":[1]}]}"#,
            r#"{"ops":[{"op":"delete","relation":"R"}]}"#,
        ] {
            assert!(DeltaBatch::from_json(bad).is_err(), "{bad} must not parse");
        }
        // Errors carry the op index.
        let err = DeltaBatch::from_json(
            r#"{"ops":[{"op":"insert","relation":"R","values":[]},{"op":"wat","relation":"R"}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("op #1"), "{err}");
    }

    #[test]
    fn csv_all_ops_and_quoting() {
        let text = "\n# a comment\ninsert,Author,A9,\"Doe, Jane\"\nupdate,Author,A9,AuthorName=Janet Doe\ndelete,Writes,A9,P1\n";
        let b = DeltaBatch::from_csv(text).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.ops[0],
            TupleOp::Insert {
                relation: "Author".into(),
                values: vec![Value::text("A9"), Value::text("Doe, Jane")],
            }
        );
        assert_eq!(
            b.ops[1],
            TupleOp::Update {
                relation: "Author".into(),
                key: vec![Value::text("A9")],
                set: vec![("AuthorName".into(), Value::text("Janet Doe"))],
            }
        );
        assert_eq!(
            b.ops[2],
            TupleOp::Delete {
                relation: "Writes".into(),
                key: vec![Value::text("A9"), Value::text("P1")],
            }
        );
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        for bad in [
            "teleport,R,x",
            "insert",
            "delete,R",
            "update,R,k",
            "update,R,AuthorName=x", // no key fields
            "insert,R,\"unterminated",
        ] {
            let err = DeltaBatch::from_csv(bad).unwrap_err();
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }
}
