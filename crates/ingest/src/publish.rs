//! Epoch-versioned snapshot publication.
//!
//! A [`SnapshotPublisher`] owns the write side of the system: it holds
//! the current immutable [`Banks`] snapshot, batches staged delta
//! operations, and on publish derives the successor snapshot —
//! incrementally where the configuration allows, by full rebuild
//! otherwise — stamped with a monotonically increasing **epoch**.
//!
//! Publication is atomic and non-blocking for readers: the new snapshot
//! is a fresh `Arc<Banks>`; serving layers swap the pointer (see
//! `banks-server`'s `QueryService::install_snapshot`) while in-flight
//! queries finish on whatever epoch they started with. A failed publish
//! leaves the current snapshot untouched — ops are applied to a scratch
//! clone that is only promoted on success.

use crate::apply::{apply_batch, apply_to_database, OpCounts};
use crate::delta::{DeltaBatch, TupleOp};
use crate::error::{IngestError, IngestResult};
use banks_core::{Banks, NodeWeightMode};
use banks_storage::Tokenizer;
use std::collections::VecDeque;
use std::sync::Arc;

/// How many published epochs the history ring keeps (for `/epochs`).
pub const HISTORY_CAP: usize = 64;

/// Summary of one published epoch.
#[derive(Debug, Clone)]
pub struct EpochInfo {
    /// The epoch this publication produced.
    pub epoch: u64,
    /// Number of delta operations in the batch.
    pub ops: usize,
    /// Per-kind operation counts.
    pub counts: OpCounts,
    /// Graph node count after publication.
    pub nodes: usize,
    /// Graph edge count after publication.
    pub edges: usize,
    /// Whether the snapshot was derived incrementally (vs full rebuild).
    pub incremental: bool,
    /// Caller-supplied publication timestamp (the publisher keeps no
    /// clock of its own; servers pass wall-clock time through).
    pub published_at: Option<String>,
}

/// What a successful publication returns.
#[derive(Debug, Clone)]
pub struct Published {
    /// The new snapshot (also installed as the publisher's current one).
    pub banks: Arc<Banks>,
    /// Its summary.
    pub info: EpochInfo,
}

/// The persistence hook of the write path: called with the validated
/// batch and the epoch it is about to become, **after** the successor
/// snapshot has been derived but **before** it is promoted. An `Err`
/// aborts the publication — the epoch does not advance and readers never
/// see the new snapshot — so a successful publish implies the hook made
/// the batch durable first (`banks-persist` appends a WAL frame and
/// fsyncs here).
pub trait DurabilityHook: Send {
    /// Make `batch` durable as the write that produces `epoch`.
    fn persist_batch(&mut self, epoch: u64, batch: &DeltaBatch) -> Result<(), String>;
}

/// The write side of a BANKS deployment: batches deltas and publishes
/// epoch-stamped successor snapshots. See the module docs.
pub struct SnapshotPublisher {
    current: Arc<Banks>,
    epoch: u64,
    history: VecDeque<EpochInfo>,
    pending: DeltaBatch,
    durability: Option<Box<dyn DurabilityHook>>,
}

impl std::fmt::Debug for SnapshotPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPublisher")
            .field("epoch", &self.epoch)
            .field("pending", &self.pending.len())
            .field("durable", &self.durability.is_some())
            .finish()
    }
}

impl SnapshotPublisher {
    /// Wrap the initial snapshot as epoch 0.
    pub fn new(banks: Arc<Banks>) -> SnapshotPublisher {
        SnapshotPublisher::with_epoch(banks, 0)
    }

    /// Wrap a snapshot recovered at a known epoch — the crash-recovery
    /// path, where the WAL replay reconstructed the state of epoch `N`
    /// and the next publication must be `N + 1`.
    pub fn with_epoch(banks: Arc<Banks>, epoch: u64) -> SnapshotPublisher {
        SnapshotPublisher {
            current: banks,
            epoch,
            history: VecDeque::new(),
            pending: DeltaBatch::new(),
            durability: None,
        }
    }

    /// Install the persistence hook (see [`DurabilityHook`]). At most one
    /// hook is active; installing replaces the previous one.
    pub fn set_durability_hook(&mut self, hook: Box<dyn DurabilityHook>) {
        self.durability = Some(hook);
    }

    /// The current snapshot.
    pub fn current(&self) -> Arc<Banks> {
        Arc::clone(&self.current)
    }

    /// The current epoch (0 until the first publication).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Recently published epochs, oldest first (capped at
    /// [`HISTORY_CAP`]).
    pub fn history(&self) -> impl Iterator<Item = &EpochInfo> + '_ {
        self.history.iter()
    }

    /// Stage operations for the next [`publish_pending`] call without
    /// deriving anything yet; returns the pending count. This is the
    /// batching knob: many small writers can stage, one timer or
    /// size-threshold trigger publishes.
    ///
    /// [`publish_pending`]: SnapshotPublisher::publish_pending
    pub fn stage(&mut self, ops: impl IntoIterator<Item = TupleOp>) -> usize {
        self.pending.ops.extend(ops);
        self.pending.len()
    }

    /// Number of staged-but-unpublished operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Publish everything staged via [`SnapshotPublisher::stage`] as one
    /// batch. On failure the staged ops are discarded (they were
    /// rejected; retrying identically would fail identically) and the
    /// current snapshot is unchanged.
    pub fn publish_pending(&mut self, published_at: Option<String>) -> IngestResult<Published> {
        let batch = std::mem::take(&mut self.pending);
        self.publish(&batch, published_at)
    }

    /// Derive, stamp, and install the successor snapshot for `batch`.
    ///
    /// The whole batch is atomic: ops apply in order to a scratch clone
    /// of the current database, and only a fully successful batch is
    /// promoted. Readers keep resolving against the previous snapshot
    /// for as long as they hold its `Arc`.
    pub fn publish(
        &mut self,
        batch: &DeltaBatch,
        published_at: Option<String>,
    ) -> IngestResult<Published> {
        if batch.is_empty() {
            return Err(IngestError::Parse("empty delta batch".into()));
        }
        let config = self.current.config().clone();
        let mut db = self.current.db().clone();
        let tokenizer = Tokenizer::new();
        let incremental = !matches!(
            config.graph.node_weight,
            NodeWeightMode::AuthorityTransfer { .. }
        );
        let (banks, counts) = if incremental {
            let mut text_index = self.current.text_index().clone();
            let (tuple_graph, stats) = apply_batch(
                &mut db,
                self.current.tuple_graph(),
                &mut text_index,
                batch,
                &config.graph,
                &tokenizer,
            )?;
            (
                Banks::from_parts(db, config, tuple_graph, text_index)?,
                stats.counts,
            )
        } else {
            // Global prestige iteration: mutate the clone, rebuild all
            // derived structures from scratch.
            let changes = apply_to_database(&mut db, batch, None)?;
            (Banks::with_config(db, config)?, changes.counts)
        };

        // Durable-then-publish: the batch survived validation and the
        // successor snapshot exists, but readers cannot see it until the
        // write-ahead hook has made the batch crash-safe. A hook failure
        // aborts with the current snapshot and epoch untouched, so an
        // *acked* ingest is always recoverable.
        if let Some(hook) = self.durability.as_mut() {
            hook.persist_batch(self.epoch + 1, batch)
                .map_err(IngestError::Durability)?;
        }

        self.epoch += 1;
        let info = EpochInfo {
            epoch: self.epoch,
            ops: batch.len(),
            counts,
            nodes: banks.tuple_graph().node_count(),
            edges: banks.tuple_graph().graph().edge_count(),
            incremental,
            published_at,
        };
        self.current = Arc::new(banks);
        if self.history.len() == HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(info.clone());
        Ok(Published {
            banks: Arc::clone(&self.current),
            info,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Author",
            vec![Value::text("MohanC"), Value::text("C. Mohan")],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("P1"), Value::text("Transaction Recovery")],
        )
        .unwrap();
        db.insert("Writes", vec![Value::text("MohanC"), Value::text("P1")])
            .unwrap();
        db
    }

    fn author_batch(id: &str, name: &str, paper: &str) -> DeltaBatch {
        DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text(id), Value::text(name)],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(id), Value::text(paper)],
                },
            ],
        }
    }

    #[test]
    fn publish_advances_epoch_and_serves_new_tuples() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::new(Arc::clone(&banks));
        assert_eq!(publisher.epoch(), 0);

        let old = publisher.current();
        let published = publisher
            .publish(
                &author_batch("SudarshanS", "S. Sudarshan", "P1"),
                Some("2026-07-30T12:00:00Z".into()),
            )
            .unwrap();
        assert_eq!(published.info.epoch, 1);
        assert!(published.info.incremental);
        assert_eq!(published.info.counts.inserted, 2);
        assert_eq!(
            published.info.published_at.as_deref(),
            Some("2026-07-30T12:00:00Z")
        );

        // The old snapshot is untouched; the new one answers the query.
        assert!(old.search("sudarshan").unwrap().is_empty());
        let answers = published.banks.search("mohan sudarshan").unwrap();
        assert!(!answers.is_empty(), "new author connects through P1");

        // And it matches a from-scratch build of the same database.
        let fresh = Banks::new(published.banks.db().clone()).unwrap();
        let expect = fresh.search("mohan sudarshan").unwrap();
        assert_eq!(answers.len(), expect.len());
        for (a, b) in answers.iter().zip(&expect) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert!((a.relevance - b.relevance).abs() < 1e-12);
        }
    }

    #[test]
    fn failed_publish_leaves_snapshot_and_epoch_untouched() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::new(banks);
        let before = publisher.current();
        let bad = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("A9"), Value::text("Fine")],
                },
                // Second op dangles — the whole batch must be discarded.
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text("A9"), Value::text("no-such-paper")],
                },
            ],
        };
        assert!(publisher.publish(&bad, None).is_err());
        assert_eq!(publisher.epoch(), 0);
        assert!(Arc::ptr_eq(&before, &publisher.current()));
        assert_eq!(publisher.current().db().total_tuples(), 3);
        assert!(
            publisher.publish(&DeltaBatch::new(), None).is_err(),
            "empty batch"
        );
    }

    #[test]
    fn staging_batches_deltas_until_published() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::new(banks);
        assert_eq!(
            publisher.stage(author_batch("A", "Alice Writer", "P1").ops),
            2
        );
        assert_eq!(
            publisher.stage(author_batch("B", "Bob Writer", "P1").ops),
            4
        );
        assert_eq!(publisher.pending_ops(), 4);
        // Staging derives nothing.
        assert_eq!(publisher.epoch(), 0);

        let published = publisher.publish_pending(None).unwrap();
        assert_eq!(published.info.ops, 4);
        assert_eq!(publisher.pending_ops(), 0);
        assert_eq!(publisher.epoch(), 1);
        assert_eq!(published.banks.search("alice").unwrap().len(), 1);
    }

    #[test]
    fn history_records_epochs_in_order() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::new(banks);
        for i in 0..3 {
            publisher
                .publish(
                    &author_batch(&format!("A{i}"), "Серіал Writer", "P1"),
                    Some(format!("t{i}")),
                )
                .unwrap();
        }
        let epochs: Vec<u64> = publisher.history().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        assert_eq!(publisher.epoch(), 3);
        let last = publisher.history().last().unwrap();
        assert_eq!(last.published_at.as_deref(), Some("t2"));
        assert!(last.nodes > 0 && last.edges > 0);
    }

    #[test]
    fn with_epoch_resumes_the_counter() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::with_epoch(banks, 41);
        assert_eq!(publisher.epoch(), 41);
        let published = publisher
            .publish(&author_batch("A", "Alice Writer", "P1"), None)
            .unwrap();
        assert_eq!(published.info.epoch, 42);
    }

    #[test]
    fn durability_hook_runs_before_promotion_and_can_abort() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Recorder {
            seen: Arc<std::sync::Mutex<Vec<(u64, usize)>>>,
            fail_on: Option<u64>,
        }
        impl DurabilityHook for Recorder {
            fn persist_batch(&mut self, epoch: u64, batch: &DeltaBatch) -> Result<(), String> {
                if self.fail_on == Some(epoch) {
                    return Err("disk full".into());
                }
                self.seen.lock().unwrap().push((epoch, batch.len()));
                Ok(())
            }
        }

        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let mut publisher = SnapshotPublisher::new(Arc::clone(&banks));
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        publisher.set_durability_hook(Box::new(Recorder {
            seen: Arc::clone(&seen),
            fail_on: Some(2),
        }));

        // Epoch 1 persists, then publishes.
        publisher
            .publish(&author_batch("A", "Alice Writer", "P1"), None)
            .unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![(1, 2)]);

        // The hook refuses epoch 2: the publish aborts, epoch and
        // snapshot unchanged — the ack is never less durable than the log.
        let before = publisher.current();
        let err = publisher
            .publish(&author_batch("B", "Bob Writer", "P1"), None)
            .unwrap_err();
        assert!(matches!(err, IngestError::Durability(_)), "{err:?}");
        assert!(err.to_string().contains("disk full"));
        assert_eq!(publisher.epoch(), 1);
        assert!(Arc::ptr_eq(&before, &publisher.current()));

        // An *invalid* batch is rejected before the hook ever runs: the
        // WAL must only ever contain validated batches.
        let calls = Arc::new(AtomicU64::new(0));
        struct Counter(Arc<AtomicU64>);
        impl DurabilityHook for Counter {
            fn persist_batch(&mut self, _: u64, _: &DeltaBatch) -> Result<(), String> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
        let mut scoped = SnapshotPublisher::new(banks);
        scoped.set_durability_hook(Box::new(Counter(Arc::clone(&calls))));
        let bad = DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Writes".into(),
                values: vec![Value::text("ghost"), Value::text("nope")],
            }],
        };
        assert!(scoped.publish(&bad, None).is_err());
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "invalid batch never logged"
        );
    }

    #[test]
    fn authority_transfer_falls_back_to_full_rebuild() {
        let mut config = banks_core::BanksConfig::default();
        config.graph.node_weight = NodeWeightMode::AuthorityTransfer {
            iterations: 5,
            damping: 0.85,
        };
        let banks = Arc::new(Banks::with_config(dblp(), config).unwrap());
        let mut publisher = SnapshotPublisher::new(banks);
        let published = publisher
            .publish(&author_batch("SudarshanS", "S. Sudarshan", "P1"), None)
            .unwrap();
        assert!(!published.info.incremental, "rebuild path taken");
        assert_eq!(published.info.epoch, 1);
        // The rebuilt snapshot matches a from-scratch build.
        let fresh = Banks::with_config(
            published.banks.db().clone(),
            published.banks.config().clone(),
        )
        .unwrap();
        let a = published.banks.search("mohan sudarshan").unwrap();
        let b = fresh.search("mohan sudarshan").unwrap();
        assert_eq!(a.len(), b.len());
    }
}
