//! The incremental applier: patch the database, the data graph, and the
//! text index in place of a from-scratch rebuild.
//!
//! The expensive artifacts of `Banks` construction are the data graph
//! (per-link foreign-key resolution — hash lookups on composite keys —
//! followed by an O(m log m) CSR sort) and the text index (re-tokenizing
//! every attribute of every tuple). A delta batch touches a tiny
//! fraction of either, so [`apply_batch`] re-derives only the **touched
//! neighborhood** and copies everything else through:
//!
//! * the mutated database yields a *monotone* node remap (tuple scan
//!   order is append-only per relation), letting the old CSR stream
//!   straight into [`banks_graph::GraphPatch`];
//! * node prestige (indegree) is recomputed only for nodes whose
//!   indegree changed; other weights are copied;
//! * edge weights are re-derived only for **dirty pairs** — pairs with a
//!   link added or removed, plus every `(target, referencer)` pair whose
//!   backward weight depends on an indegree count that changed
//!   (equation 1's `IN_{R(r)}(t)` hub-damping term);
//! * the text index gets posting insertions and tombstones for exactly
//!   the tuples the batch wrote.
//!
//! Equivalence with a full rebuild is enforced by unit tests here and by
//! the repository-level property test (`tests/ingest_equivalence.rs`).

use crate::delta::{DeltaBatch, TupleOp};
use crate::error::{IngestError, IngestResult};
use banks_core::{GraphConfig, NodeWeightMode, TupleGraph};
use banks_graph::{FxHashMap, FxHashSet, GraphPatch, NodeId};
use banks_storage::{
    ColumnType, Database, RelationSchema, Rid, StorageError, TextIndex, Tokenizer, Value,
};

/// Per-kind operation counts of an applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tuples inserted.
    pub inserted: usize,
    /// Tuples updated (one per update op, regardless of column count).
    pub updated: usize,
    /// Tuples deleted.
    pub deleted: usize,
}

/// What a batch did to the database (and, when patched incrementally,
/// to the graph).
#[derive(Debug, Clone, Default)]
pub struct ApplyStats {
    /// Operation counts.
    pub counts: OpCounts,
    /// Ordered node pairs whose edges were re-derived.
    pub dirty_pairs: usize,
    /// Re-derived edges actually present in the new graph.
    pub replacement_edges: usize,
}

/// Everything the database mutation recorded for the graph patch.
#[derive(Debug, Default)]
pub struct DbChanges {
    /// Rids inserted by the batch and still alive at its end — an
    /// insert-then-delete of the same tuple nets out of both lists.
    pub inserted: Vec<Rid>,
    /// Rids that existed before the batch and were deleted by it.
    pub deleted: Vec<Rid>,
    /// Foreign-key links that came into existence: `(referencer, target)`.
    pub added_links: Vec<(Rid, Rid)>,
    /// Foreign-key links that ceased to exist: `(referencer, target)`.
    pub removed_links: Vec<(Rid, Rid)>,
    /// Operation counts.
    pub counts: OpCounts,
}

/// Coerce a textual value to the column's type — the CSV wire format
/// carries text only. Unparseable text is left as-is so the storage
/// layer reports its usual typed mismatch error.
fn coerce(value: Value, ty: ColumnType) -> Value {
    match (&value, ty) {
        (Value::Text(s), ColumnType::Int) => s.parse().map(Value::Int).unwrap_or(value),
        (Value::Text(s), ColumnType::Float) => s.parse().map(Value::Float).unwrap_or(value),
        (Value::Text(s), ColumnType::Bool) => match s.as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => value,
        },
        _ => value,
    }
}

/// Coerce a primary-key value to the key columns' types.
fn coerce_key(schema: &RelationSchema, key: Vec<Value>) -> Vec<Value> {
    key.into_iter()
        .enumerate()
        .map(|(i, v)| match schema.primary_key.get(i) {
            Some(&col) => coerce(v, schema.columns[col].ty),
            None => v,
        })
        .collect()
}

fn lookup_key(db: &Database, relation: &str, key: &[Value]) -> IngestResult<Rid> {
    db.relation(relation)?.lookup_pk(key).ok_or_else(|| {
        IngestError::Storage(StorageError::InvalidRid(format!(
            "no `{relation}` tuple with key {key:?}"
        )))
    })
}

/// Text-column indices of a schema.
fn text_columns(schema: &RelationSchema) -> Vec<usize> {
    schema
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.ty, ColumnType::Text))
        .map(|(i, _)| i)
        .collect()
}

/// Apply a batch to the database only, recording link-level changes and
/// (optionally) maintaining a text index alongside.
///
/// Operations are validated by the storage layer (schema arity/types,
/// primary keys, the FK catalog, RESTRICT deletes) and applied in order;
/// the first failure aborts with earlier ops already applied — callers
/// wanting atomic semantics apply to a scratch clone and promote it only
/// on success, which is exactly what
/// [`SnapshotPublisher`](crate::SnapshotPublisher) does.
pub fn apply_to_database(
    db: &mut Database,
    batch: &DeltaBatch,
    mut text: Option<(&mut TextIndex, &Tokenizer)>,
) -> IngestResult<DbChanges> {
    let mut changes = DbChanges::default();
    for op in &batch.ops {
        match op {
            TupleOp::Insert { relation, values } => {
                let schema = db.relation(relation)?.schema().clone();
                let values: Vec<Value> = if values.len() == schema.arity() {
                    values
                        .iter()
                        .cloned()
                        .zip(schema.columns.iter())
                        .map(|(v, c)| coerce(v, c.ty))
                        .collect()
                } else {
                    values.clone() // let insert raise ArityMismatch
                };
                let rid = db.insert(relation, values)?;
                for fk_index in 0..schema.foreign_keys.len() {
                    if let Some(target) = db.resolve_fk(rid, fk_index)? {
                        changes.added_links.push((rid, target));
                    }
                }
                if let Some((index, tokenizer)) = text.as_mut() {
                    let tuple = db.tuple(rid)?.values().to_vec();
                    for col in text_columns(&schema) {
                        if let Some(s) = tuple[col].as_text() {
                            index.add_value(rid, col as u32, s, tokenizer);
                        }
                    }
                }
                changes.inserted.push(rid);
                changes.counts.inserted += 1;
            }
            TupleOp::Delete { relation, key } => {
                let schema = db.relation(relation)?.schema().clone();
                let rid = lookup_key(db, relation, &coerce_key(&schema, key.clone()))?;
                let mut dropped = Vec::new();
                for fk_index in 0..schema.foreign_keys.len() {
                    if let Some(target) = db.resolve_fk(rid, fk_index)? {
                        dropped.push((rid, target));
                    }
                }
                // RESTRICT semantics can still reject; record only after
                // the delete actually happened.
                let tuple = db.delete(rid)?;
                changes.removed_links.extend(dropped);
                // Deleting a tuple this same batch inserted nets out:
                // it neither survives nor existed before the batch.
                if let Some(pos) = changes.inserted.iter().position(|r| *r == rid) {
                    changes.inserted.swap_remove(pos);
                } else {
                    changes.deleted.push(rid);
                }
                if let Some((index, tokenizer)) = text.as_mut() {
                    for col in text_columns(&schema) {
                        if let Some(s) = tuple.values()[col].as_text() {
                            index.remove_value(rid, col as u32, s, tokenizer);
                        }
                    }
                }
                changes.counts.deleted += 1;
            }
            TupleOp::Update { relation, key, set } => {
                let schema = db.relation(relation)?.schema().clone();
                let rid = lookup_key(db, relation, &coerce_key(&schema, key.clone()))?;
                let mut assignments = Vec::with_capacity(set.len());
                for (col_name, value) in set {
                    let col = schema.column_index(col_name).ok_or_else(|| {
                        StorageError::UnknownColumn {
                            relation: schema.name.clone(),
                            column: col_name.clone(),
                        }
                    })?;
                    if assignments.iter().any(|&(a, _)| a == col) {
                        return Err(IngestError::Parse(format!(
                            "duplicate column `{col_name}` in update of `{relation}`"
                        )));
                    }
                    assignments.push((col, coerce(value.clone(), schema.columns[col].ty)));
                }
                let affected: Vec<usize> = schema
                    .foreign_keys
                    .iter()
                    .enumerate()
                    .filter(|(_, fk)| {
                        fk.columns
                            .iter()
                            .any(|c| assignments.iter().any(|&(a, _)| a == *c))
                    })
                    .map(|(i, _)| i)
                    .collect();
                let mut before = Vec::with_capacity(affected.len());
                for &fk_index in &affected {
                    before.push(db.resolve_fk(rid, fk_index)?);
                }
                // One unit: composite FKs spanning several updated
                // columns validate against the final state only.
                let old_values = db.update_columns(rid, &assignments)?;
                for (&fk_index, old_target) in affected.iter().zip(before) {
                    let new_target = db.resolve_fk(rid, fk_index)?;
                    if old_target != new_target {
                        if let Some(t) = old_target {
                            changes.removed_links.push((rid, t));
                        }
                        if let Some(t) = new_target {
                            changes.added_links.push((rid, t));
                        }
                    }
                }
                if let Some((index, tokenizer)) = text.as_mut() {
                    for (&(col, ref value), old_value) in assignments.iter().zip(&old_values) {
                        if !matches!(schema.columns[col].ty, ColumnType::Text) {
                            continue;
                        }
                        if let Some(s) = old_value.as_text() {
                            index.remove_value(rid, col as u32, s, tokenizer);
                        }
                        if let Some(s) = value.as_text() {
                            index.add_value(rid, col as u32, s, tokenizer);
                        }
                    }
                }
                changes.counts.updated += 1;
            }
        }
    }
    Ok(changes)
}

/// Edge weight for the ordered node pair `(a, b)` under the paper's
/// equation (1), derived directly from the live database: the minimum
/// over forward contributions (links `a → b`, weight `s(R(a), R(b))`)
/// and backward contributions (links `b → a`, weight
/// `s(R(b), R(a)) · IN_{R(b)}(a)`). `None` when no link connects the
/// pair — the semantics [`banks_core::TupleGraph::build`] realizes via
/// min-coalescing in the bulk path.
fn pair_weight(db: &Database, a: Rid, b: Rid, config: &GraphConfig) -> IngestResult<Option<f64>> {
    let mut weight = f64::INFINITY;
    let schema_a = db.table(a.relation).schema();
    for (fk_index, fk) in schema_a.foreign_keys.iter().enumerate() {
        if db.resolve_fk(a, fk_index)? == Some(b) {
            weight = weight.min(fk.similarity.unwrap_or(config.default_similarity));
        }
    }
    let schema_b = db.table(b.relation).schema();
    for (fk_index, fk) in schema_b.foreign_keys.iter().enumerate() {
        if db.resolve_fk(b, fk_index)? == Some(a) {
            let sim = fk.similarity.unwrap_or(config.default_similarity);
            let back = if config.indegree_backward_weights {
                sim * db.indegree_from(a, b.relation).max(1) as f64
            } else {
                sim
            };
            weight = weight.min(back);
        }
    }
    Ok(weight.is_finite().then_some(weight))
}

/// Apply `batch` to `db`, patching `text_index` and deriving the
/// successor of `old` incrementally. Returns the new tuple graph plus
/// apply statistics.
///
/// `old` must be the graph of `db`'s pre-batch state (the caller's
/// current snapshot), and `config` the graph configuration it was built
/// under. Authority-transfer prestige is a global fixed-point iteration
/// and cannot be patched locally — it returns
/// [`IngestError::Unsupported`], and callers fall back to a full
/// rebuild.
pub fn apply_batch(
    db: &mut Database,
    old: &TupleGraph,
    text_index: &mut TextIndex,
    batch: &DeltaBatch,
    config: &GraphConfig,
    tokenizer: &Tokenizer,
) -> IngestResult<(TupleGraph, ApplyStats)> {
    if let NodeWeightMode::AuthorityTransfer { .. } = config.node_weight {
        return Err(IngestError::Unsupported(
            "authority-transfer prestige is a global iteration; rebuild instead".into(),
        ));
    }
    let changes = apply_to_database(db, batch, Some((text_index, tokenizer)))?;

    // New node order (deterministic relations-scan order, the same
    // contract `TupleGraph::build`/`rebind` use) and the monotone remap
    // from old node ids.
    let total = db.total_tuples();
    let mut new_rids: Vec<Rid> = Vec::with_capacity(total);
    for table in db.relations() {
        let id = table.id();
        // Liveness only — on a lazily-opened database this walks the
        // presence bitmaps without decoding any tuple block.
        for slot in table.live_slots() {
            new_rids.push(Rid::new(id, slot));
        }
    }
    let mut node_of: FxHashMap<Rid, u32> = FxHashMap::default();
    node_of.reserve(total);
    let mut remap: Vec<Option<u32>> = vec![None; old.node_count()];
    for (i, &rid) in new_rids.iter().enumerate() {
        node_of.insert(rid, i as u32);
        if let Some(o) = old.node(rid) {
            remap[o.index()] = Some(i as u32);
        }
    }

    // Targets whose indegree changed, with the referencing relations
    // whose counts moved (those drive the backward-edge weights).
    let mut changed_in: FxHashMap<Rid, FxHashSet<u32>> = FxHashMap::default();
    for &(r, t) in changes.added_links.iter().chain(&changes.removed_links) {
        changed_in.entry(t).or_default().insert(r.relation.0);
    }

    // New node weights: recompute only brand-new nodes and nodes whose
    // indegree changed; copy everything else through.
    let mut weights = Vec::with_capacity(total);
    for &rid in &new_rids {
        let old_node = old.node(rid);
        let weight = match old_node {
            Some(o) if !changed_in.contains_key(&rid) => old.graph().node_weight(o),
            _ => match config.node_weight {
                NodeWeightMode::Uniform => 1.0,
                NodeWeightMode::Indegree => db.indegree(rid) as f64,
                NodeWeightMode::AuthorityTransfer { .. } => unreachable!("rejected above"),
            },
        };
        weights.push(weight);
    }

    // Dirty pairs: both orientations of every changed link, plus
    // `(target, referencer)` for every surviving referencer from a
    // relation whose fan-in to that target changed (their backward
    // weights embed the changed `IN` count).
    let alive = |rid: &Rid| node_of.contains_key(rid);
    let mut dirty: FxHashSet<(Rid, Rid)> = FxHashSet::default();
    for &(r, t) in changes.added_links.iter().chain(&changes.removed_links) {
        if alive(&r) && alive(&t) {
            dirty.insert((r, t));
            dirty.insert((t, r));
        }
    }
    for (&t, relations) in &changed_in {
        if !alive(&t) {
            continue;
        }
        for backref in db.referencing(t) {
            if relations.contains(&backref.from.relation.0) && alive(&backref.from) {
                dirty.insert((t, backref.from));
            }
        }
    }

    let mut patch = GraphPatch::new(remap, weights);
    let mut replacement_edges = 0usize;
    for &(a, b) in &dirty {
        let (na, nb) = (NodeId(node_of[&a]), NodeId(node_of[&b]));
        match pair_weight(db, a, b, config)? {
            Some(w) => {
                patch.set_edge(na, nb, w);
                replacement_edges += 1;
            }
            None => patch.mark_dirty(na, nb),
        }
    }
    let stats = ApplyStats {
        counts: changes.counts,
        dirty_pairs: patch.dirty_pairs(),
        replacement_edges,
    };
    let graph = patch.apply(old.graph());
    let tuple_graph = TupleGraph::rebind(db, graph)?;
    Ok((tuple_graph, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_core::BanksConfig;
    use banks_storage::RelationSchema;

    /// Bibliography schema with an extra non-key FK column so updates
    /// can repoint links.
    fn schema_db() -> Database {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .column("Year", ColumnType::Int)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("WriteId", ColumnType::Text)
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["WriteId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [("A1", "Soumen Chakrabarti"), ("A2", "Sunita Sarawagi")] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        for (id, title, year) in [
            ("P1", "Mining Surprising Patterns", 1998),
            ("P2", "Scalable Classification", 2000),
        ] {
            db.insert(
                "Paper",
                vec![Value::text(id), Value::text(title), Value::Int(year)],
            )
            .unwrap();
        }
        for (w, a, p) in [("W1", "A1", "P1"), ("W2", "A2", "P1"), ("W3", "A1", "P2")] {
            db.insert(
                "Writes",
                vec![Value::text(w), Value::text(a), Value::text(p)],
            )
            .unwrap();
        }
        db
    }

    fn graph_edges(tg: &TupleGraph) -> Vec<(Rid, Rid, u64)> {
        let g = tg.graph();
        let mut out = Vec::new();
        for v in g.nodes() {
            for (t, w) in g.out_edges(v) {
                out.push((tg.rid(v), tg.rid(t), w.to_bits()));
            }
        }
        out.sort_unstable();
        out
    }

    /// Assert the incrementally patched state equals a full rebuild of
    /// the mutated database — graph (nodes, edges, weights) and text
    /// index both.
    fn assert_matches_rebuild(db: &Database, tg: &TupleGraph, text: &TextIndex) {
        let config = BanksConfig::default().graph;
        let rebuilt = TupleGraph::build(db, &config).unwrap();
        assert_eq!(tg.node_count(), rebuilt.node_count(), "node counts");
        for node in rebuilt.graph().nodes() {
            assert_eq!(
                tg.graph().node_weight(node),
                rebuilt.graph().node_weight(node),
                "weight of node {node}"
            );
            assert_eq!(tg.rid(node), rebuilt.rid(node), "rid of node {node}");
        }
        assert_eq!(graph_edges(tg), graph_edges(&rebuilt), "edge sets");

        let fresh_text = TextIndex::build(db, &Tokenizer::new());
        assert_eq!(text.distinct_tokens(), fresh_text.distinct_tokens());
        assert_eq!(text.posting_count(), fresh_text.posting_count());
        for token in fresh_text.tokens() {
            assert_eq!(
                text.lookup(token),
                fresh_text.lookup(token),
                "token {token}"
            );
        }
    }

    fn run_batch(db: &mut Database, batch: &DeltaBatch) -> (TupleGraph, TextIndex, ApplyStats) {
        let config = BanksConfig::default().graph;
        let tokenizer = Tokenizer::new();
        let old = TupleGraph::build(db, &config).unwrap();
        let mut text = TextIndex::build(db, &tokenizer);
        let (tg, stats) = apply_batch(db, &old, &mut text, batch, &config, &tokenizer).unwrap();
        (tg, text, stats)
    }

    #[test]
    fn insert_batch_matches_rebuild() {
        let mut db = schema_db();
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("A3"), Value::text("Byron Dom")],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text("W4"), Value::text("A3"), Value::text("P1")],
                },
                // CSV-style text year coerced to Int.
                TupleOp::Insert {
                    relation: "Paper".into(),
                    values: vec![
                        Value::text("P3"),
                        Value::text("Keyword Searching in Databases"),
                        Value::text("2002"),
                    ],
                },
            ],
        };
        let (tg, text, stats) = run_batch(&mut db, &batch);
        assert_eq!(stats.counts.inserted, 3);
        assert!(stats.dirty_pairs >= 4, "P1 hub neighborhood re-derived");
        assert_matches_rebuild(&db, &tg, &text);
    }

    #[test]
    fn delete_batch_matches_rebuild() {
        let mut db = schema_db();
        let batch = DeltaBatch {
            ops: vec![TupleOp::Delete {
                relation: "Writes".into(),
                key: vec![Value::text("W2")],
            }],
        };
        let (tg, text, stats) = run_batch(&mut db, &batch);
        assert_eq!(stats.counts.deleted, 1);
        assert_matches_rebuild(&db, &tg, &text);
    }

    #[test]
    fn update_repointing_fk_matches_rebuild() {
        let mut db = schema_db();
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Update {
                    relation: "Writes".into(),
                    key: vec![Value::text("W2")],
                    set: vec![("PaperId".into(), Value::text("P2"))],
                },
                TupleOp::Update {
                    relation: "Paper".into(),
                    key: vec![Value::text("P1")],
                    set: vec![("PaperName".into(), Value::text("Mining Renamed Patterns"))],
                },
            ],
        };
        let (tg, text, stats) = run_batch(&mut db, &batch);
        assert_eq!(stats.counts.updated, 2);
        assert_matches_rebuild(&db, &tg, &text);
        // The renamed title is searchable, the old one is gone.
        assert!(!text.lookup("renamed").is_empty());
        assert!(text.lookup("surprising").is_empty());
    }

    #[test]
    fn mixed_batch_including_insert_then_delete() {
        let mut db = schema_db();
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("A9"), Value::text("Ephemeral Author")],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text("W9"), Value::text("A9"), Value::text("P2")],
                },
                TupleOp::Delete {
                    relation: "Writes".into(),
                    key: vec![Value::text("W9")],
                },
                TupleOp::Delete {
                    relation: "Author".into(),
                    key: vec![Value::text("A9")],
                },
                TupleOp::Delete {
                    relation: "Writes".into(),
                    key: vec![Value::text("W1")],
                },
            ],
        };
        let (tg, text, _) = run_batch(&mut db, &batch);
        assert_matches_rebuild(&db, &tg, &text);
        assert!(text.lookup("ephemeral").is_empty());
    }

    #[test]
    fn insert_then_delete_nets_out_of_changes() {
        let mut db = schema_db();
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("A9"), Value::text("Ephemeral")],
                },
                TupleOp::Delete {
                    relation: "Author".into(),
                    key: vec![Value::text("A9")],
                },
                TupleOp::Delete {
                    relation: "Writes".into(),
                    key: vec![Value::text("W1")],
                },
            ],
        };
        let changes = apply_to_database(&mut db, &batch, None).unwrap();
        assert!(
            changes.inserted.is_empty(),
            "in-batch insert+delete must not survive in `inserted`"
        );
        assert_eq!(changes.deleted.len(), 1, "only the pre-existing W1");
        // Op counts still reflect what was executed.
        assert_eq!(changes.counts.inserted, 1);
        assert_eq!(changes.counts.deleted, 2);
    }

    #[test]
    fn composite_fk_update_applies_as_a_unit() {
        // Schema where a two-column FK can only be repointed atomically.
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Slot")
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .column("Label", ColumnType::Text)
                .primary_key(&["Room", "Hour"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Booking")
                .column("Id", ColumnType::Text)
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["Room", "Hour"], "Slot")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (r, h, l) in [
            ("r1", "h1", "morning lecture"),
            ("r2", "h2", "evening seminar"),
        ] {
            db.insert("Slot", vec![Value::text(r), Value::text(h), Value::text(l)])
                .unwrap();
        }
        db.insert(
            "Booking",
            vec![Value::text("b"), Value::text("r1"), Value::text("h1")],
        )
        .unwrap();

        let batch = DeltaBatch {
            ops: vec![TupleOp::Update {
                relation: "Booking".into(),
                key: vec![Value::text("b")],
                set: vec![
                    ("Room".into(), Value::text("r2")),
                    ("Hour".into(), Value::text("h2")),
                ],
            }],
        };
        let (tg, text, stats) = run_batch(&mut db, &batch);
        assert_eq!(stats.counts.updated, 1);
        assert_matches_rebuild(&db, &tg, &text);

        // Duplicate columns in one update are rejected up front.
        let dup = DeltaBatch {
            ops: vec![TupleOp::Update {
                relation: "Booking".into(),
                key: vec![Value::text("b")],
                set: vec![
                    ("Room".into(), Value::text("r1")),
                    ("Room".into(), Value::text("r2")),
                ],
            }],
        };
        let config = BanksConfig::default().graph;
        let tokenizer = Tokenizer::new();
        let old = TupleGraph::build(&db, &config).unwrap();
        let mut text = TextIndex::build(&db, &tokenizer);
        assert!(matches!(
            apply_batch(&mut db, &old, &mut text, &dup, &config, &tokenizer).unwrap_err(),
            IngestError::Parse(_)
        ));
    }

    #[test]
    fn constraint_violations_are_typed_errors() {
        let config = BanksConfig::default().graph;
        let tokenizer = Tokenizer::new();

        // Dangling FK insert.
        let mut db = schema_db();
        let old = TupleGraph::build(&db, &config).unwrap();
        let mut text = TextIndex::build(&db, &tokenizer);
        let dangling = DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Writes".into(),
                values: vec![Value::text("W9"), Value::text("ghost"), Value::text("P1")],
            }],
        };
        assert!(matches!(
            apply_batch(&mut db, &old, &mut text, &dangling, &config, &tokenizer).unwrap_err(),
            IngestError::Storage(StorageError::ForeignKeyViolation { .. })
        ));

        // RESTRICT delete of a referenced paper.
        let mut db = schema_db();
        let old = TupleGraph::build(&db, &config).unwrap();
        let mut text = TextIndex::build(&db, &tokenizer);
        let restricted = DeltaBatch {
            ops: vec![TupleOp::Delete {
                relation: "Paper".into(),
                key: vec![Value::text("P1")],
            }],
        };
        assert!(matches!(
            apply_batch(&mut db, &old, &mut text, &restricted, &config, &tokenizer).unwrap_err(),
            IngestError::Storage(StorageError::ForeignKeyViolation { .. })
        ));

        // Unknown relation / missing key / unknown column.
        for batch in [
            DeltaBatch {
                ops: vec![TupleOp::Insert {
                    relation: "Nope".into(),
                    values: vec![],
                }],
            },
            DeltaBatch {
                ops: vec![TupleOp::Delete {
                    relation: "Author".into(),
                    key: vec![Value::text("missing")],
                }],
            },
            DeltaBatch {
                ops: vec![TupleOp::Update {
                    relation: "Author".into(),
                    key: vec![Value::text("A1")],
                    set: vec![("Nope".into(), Value::Null)],
                }],
            },
        ] {
            let mut db = schema_db();
            let old = TupleGraph::build(&db, &config).unwrap();
            let mut text = TextIndex::build(&db, &tokenizer);
            assert!(matches!(
                apply_batch(&mut db, &old, &mut text, &batch, &config, &tokenizer).unwrap_err(),
                IngestError::Storage(_)
            ));
        }
    }

    #[test]
    fn authority_transfer_config_is_unsupported() {
        let mut db = schema_db();
        let mut config = BanksConfig::default().graph;
        config.node_weight = NodeWeightMode::AuthorityTransfer {
            iterations: 3,
            damping: 0.85,
        };
        let old = TupleGraph::build(&db, &config).unwrap();
        let mut text = TextIndex::build(&db, &Tokenizer::new());
        let batch = DeltaBatch {
            ops: vec![TupleOp::Delete {
                relation: "Writes".into(),
                key: vec![Value::text("W1")],
            }],
        };
        let err =
            apply_batch(&mut db, &old, &mut text, &batch, &config, &Tokenizer::new()).unwrap_err();
        assert!(matches!(err, IngestError::Unsupported(_)));
        // Nothing was applied: the check precedes mutation.
        assert_eq!(db.total_tuples(), 7);
    }
}
