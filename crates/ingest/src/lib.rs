//! # banks-ingest
//!
//! Live tuple ingestion for BANKS — the first write path in the system.
//!
//! The paper assumes a static database: the graph and indexes are built
//! once, and every mutation implies an offline rebuild. EMBANKS (Gupta &
//! Sudarshan) pushes BANKS toward incrementally maintainable structures,
//! and Mragyati (Sarda & Jain) serves keyword search over a database
//! that keeps changing underneath it; this crate brings that capability
//! to the workspace, in three layers:
//!
//! * [`delta`] — the **delta log**: tuple-level [`TupleOp`]s
//!   (`Insert` / `Update` / `Delete`) grouped into [`DeltaBatch`]es,
//!   with JSON and CSV wire formats. Validation against the schema and
//!   FK catalog happens on apply, through the storage layer's own
//!   constraint machinery.
//! * [`apply`] — the **incremental applier**: [`apply_batch`] mutates
//!   the database and patches the `TupleGraph` (add/remove nodes and FK
//!   edges, recompute prestige and the indegree-scaled backward weights
//!   of equation 1 only in the touched neighborhood, via
//!   `banks_graph::GraphPatch`) and the `TextIndex` (posting insertions
//!   and tombstones) instead of re-deriving either from scratch.
//! * [`publish`] — the **epoch-versioned publisher**:
//!   [`SnapshotPublisher`] batches staged deltas and atomically derives
//!   a new `Arc<Banks>` stamped with a monotone epoch. Readers never
//!   block: serving layers swap the pointer, in-flight queries finish on
//!   their old epoch, and a failed batch leaves the current snapshot
//!   untouched.
//!
//! `banks-server` wires this into `POST /ingest` / `GET /epochs` and
//! epoch-stamps its result cache so stale entries invalidate lazily on
//! publish; `banks-cli ingest` applies delta files against a running
//! server or a local corpus.
//!
//! ```
//! use std::sync::Arc;
//! use banks_core::Banks;
//! use banks_ingest::{DeltaBatch, SnapshotPublisher};
//! use banks_storage::{ColumnType, Database, RelationSchema, Value};
//!
//! let mut db = Database::new("mini");
//! db.create_relation(
//!     RelationSchema::builder("Paper")
//!         .column("Id", ColumnType::Text)
//!         .column("Title", ColumnType::Text)
//!         .primary_key(&["Id"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//! db.insert("Paper", vec![Value::text("p1"), Value::text("The Transaction Concept")])
//!     .unwrap();
//!
//! let mut publisher = SnapshotPublisher::new(Arc::new(Banks::new(db).unwrap()));
//! let batch = DeltaBatch::from_json(
//!     r#"{"ops":[{"op":"insert","relation":"Paper",
//!                 "values":["p2","Recovery Methods Survey"]}]}"#,
//! )
//! .unwrap();
//! let published = publisher.publish(&batch, None).unwrap();
//! assert_eq!(published.info.epoch, 1);
//! assert_eq!(published.banks.search("recovery").unwrap().len(), 1);
//! ```

pub mod apply;
pub mod delta;
pub mod error;
pub mod publish;

pub use apply::{apply_batch, apply_to_database, ApplyStats, DbChanges, OpCounts};
pub use delta::{DeltaBatch, TupleOp};
pub use error::{IngestError, IngestResult};
pub use publish::{DurabilityHook, EpochInfo, Published, SnapshotPublisher, HISTORY_CAP};
