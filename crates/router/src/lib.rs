//! # banks-router
//!
//! A query-routing front door for a replicated BANKS cluster: one
//! leader (`banks serve --data-dir`), any number of WAL-tailing
//! followers (`banks-replica`), and this broker in front deciding who
//! answers what.
//!
//! * **Circuit-broken registry** — each backend carries a three-state
//!   breaker. **Closed**: in rotation, probed on a fixed cadence;
//!   `eject_after` consecutive failures (or one in-request connect
//!   failure) trip it. **Open**: out of rotation, no traffic at all,
//!   for a doubling backoff window. **Half-open**: the window lapsed;
//!   exactly one trial probe is allowed — success re-closes the breaker
//!   (re-admission), failure re-opens it with a longer window. Clients
//!   never pay to discover a dead backend twice.
//! * **Cache-affinity routing** — `/search` traffic is spread over
//!   followers by **rendezvous (highest-random-weight) hashing** of the
//!   PR-1 normalized query key ([`banks_server::QueryKey`]): `mohan
//!   sudarshan` and `Sudarshan  Mohan` hash identically, so a repeated
//!   query lands on the follower that already has it cached, while
//!   distinct queries spread evenly and a dead follower redistributes
//!   only its own keys.
//! * **Leader-only writes** — `POST /ingest` (and `/epochs`) always
//!   forward to the leader; followers never see a write.
//! * **Staleness-aware fallback** — every probe records the backend's
//!   epoch. A follower lagging more than `staleness_bound` epochs
//!   behind the newest known epoch leaves rotation until it catches
//!   up; if *every* follower lags, reads fall back to the leader.
//! * **Failover, not errors** — a connect failure, timeout, or 5xx
//!   from a follower marks it down and retries the next candidate,
//!   ending at the leader; a follower's `409` (a `min_epoch` the
//!   follower couldn't reach) retries against the leader, which by
//!   definition has the newest epoch. Clients see a failed read only
//!   when **no** backend at all is reachable — answered as `503` with
//!   a `Retry-After` hint and a JSON error body.
//!
//! The router is deliberately dumb about payloads: responses stream
//! back verbatim (status, content type, epoch headers), so everything
//! the backends guarantee — deterministic ranking, epoch stamps,
//! `min_epoch` semantics — passes through unchanged.

use banks_server::{QueryKey, QueryOptions};
use banks_telemetry::{CollectedFamily, Kind, Registry, Sample};
use banks_util::fxhash::FxHasher;
use banks_util::http::{http_request, parse_query_string, query_param, ClientError, HttpResponse};
use banks_util::json::Json;
use banks_util::retry::Outcome;
use std::hash::Hasher;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest request the router accepts (mirrors the backend cap).
const MAX_REQUEST_BYTES: u64 = 8 * 1024 * 1024;

/// Router tuning. `Default` matches a small local cluster.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` for tests).
    pub addr: String,
    /// The leader's address (`host:port`).
    pub leader: String,
    /// Follower addresses.
    pub followers: Vec<String>,
    /// Worker threads serving client connections.
    pub workers: usize,
    /// Accept queue depth.
    pub backlog: usize,
    /// Cadence of `/health` probes against healthy backends.
    pub probe_interval: Duration,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Per-forwarded-request timeout (must exceed the backends'
    /// `min_epoch` wait ceiling for pass-through waits to work).
    pub request_timeout: Duration,
    /// Consecutive probe failures before a backend's breaker opens.
    pub eject_after: u32,
    /// Ceiling for the doubling open-window of a tripped breaker.
    pub max_probe_backoff: Duration,
    /// Retry policy for forwarded requests that failed before any byte
    /// reached the backend (connect errors — idempotent-safe).
    pub retry: banks_util::retry::RetryPolicy,
    /// Retry tokens shared across all forwarded requests; a dead
    /// backend drains it and later calls fail fast (storm protection).
    pub retry_budget_tokens: u64,
    /// Max epochs a follower may lag behind the newest known epoch and
    /// still serve reads.
    pub staleness_bound: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            leader: "127.0.0.1:7331".to_string(),
            followers: Vec::new(),
            workers: 4,
            backlog: 64,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(40),
            eject_after: 2,
            max_probe_backoff: Duration::from_secs(5),
            staleness_bound: 8,
            retry: banks_util::retry::RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(50),
                cap: Duration::from_millis(500),
                ..banks_util::retry::RetryPolicy::default()
            },
            retry_budget_tokens: 64,
        }
    }
}

/// Breaker position of one backend.
///
/// `Closed` is the only state that serves client traffic. `Open` means
/// the breaker tripped and the backend is resting out its backoff
/// window. `HalfOpen` means the window lapsed and the prober owes it
/// one trial probe; the outcome snaps the breaker shut or re-opens it
/// with a doubled window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// In rotation; failures are being counted against `eject_after`.
    Closed,
    /// Tripped; no traffic until the backoff window lapses.
    Open,
    /// Probation: one trial probe decides closed vs re-opened.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for `/stats` and the `banks_breaker_state` gauge.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Gauge encoding: 0 closed, 1 half-open, 2 open (higher = worse).
    pub fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// One backend as the registry currently sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSnapshot {
    /// Address.
    pub url: String,
    /// `"leader"` or `"follower"`.
    pub role: &'static str,
    /// In rotation? (breaker closed)
    pub healthy: bool,
    /// Breaker position.
    pub breaker: BreakerState,
    /// Serving epoch at the last successful probe.
    pub epoch: u64,
    /// Requests forwarded here.
    pub forwarded: u64,
    /// Times ejected from rotation.
    pub ejections: u64,
    /// Times re-admitted after an ejection.
    pub readmissions: u64,
    /// Round-trip time of the last successful `/health` probe, in
    /// microseconds (0 until the first success).
    pub last_probe_us: u64,
}

/// Router-level counters plus the registry.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// `/search` requests routed.
    pub searches: u64,
    /// `POST /ingest` requests forwarded to the leader.
    pub ingests: u64,
    /// Mid-request failovers (backend errored, next candidate tried).
    pub failovers: u64,
    /// Reads that fell back to the leader because every follower was
    /// out of rotation or past the staleness bound.
    pub leader_fallbacks: u64,
    /// Requests answered `503` because no backend was reachable.
    pub unavailable: u64,
    /// Health probes sent.
    pub probes: u64,
    /// Forwarding retries performed under the shared retry policy.
    pub retries: u64,
    /// Whole retry tokens left in the shared budget.
    pub retry_tokens: u64,
    /// Registry snapshot (leader first).
    pub backends: Vec<BackendSnapshot>,
}

struct Backend {
    url: String,
    is_leader: bool,
    breaker: BreakerState,
    consecutive_failures: u32,
    /// Open-window length; doubles on every re-open up to the ceiling.
    open_backoff: Duration,
    /// Closed: next cadence probe. Open: when the window lapses and the
    /// breaker may go half-open. HalfOpen: probe due immediately.
    next_probe: Instant,
    epoch: u64,
    forwarded: u64,
    ejections: u64,
    readmissions: u64,
    last_probe_us: u64,
}

impl Backend {
    fn new(url: String, is_leader: bool, now: Instant) -> Backend {
        Backend {
            url,
            is_leader,
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            open_backoff: Duration::ZERO,
            next_probe: now, // probe immediately on startup
            epoch: 0,
            forwarded: 0,
            ejections: 0,
            readmissions: 0,
            last_probe_us: 0,
        }
    }

    fn healthy(&self) -> bool {
        self.breaker == BreakerState::Closed
    }

    fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot {
            url: self.url.clone(),
            role: if self.is_leader { "leader" } else { "follower" },
            healthy: self.healthy(),
            breaker: self.breaker,
            epoch: self.epoch,
            forwarded: self.forwarded,
            ejections: self.ejections,
            readmissions: self.readmissions,
            last_probe_us: self.last_probe_us,
        }
    }
}

#[derive(Default)]
struct Counters {
    searches: AtomicU64,
    ingests: AtomicU64,
    failovers: AtomicU64,
    leader_fallbacks: AtomicU64,
    unavailable: AtomicU64,
    probes: AtomicU64,
    retries: AtomicU64,
}

struct Shared {
    config: RouterConfig,
    backends: Mutex<Vec<Backend>>,
    counters: Counters,
    shutdown: AtomicBool,
    registry: Registry,
    started: Instant,
    retry_budget: banks_util::retry::RetryBudget,
}

impl Shared {
    fn with_backend(&self, url: &str, f: impl FnOnce(&mut Backend)) {
        let mut backends = self.backends.lock().expect("registry lock");
        if let Some(backend) = backends.iter_mut().find(|b| b.url == url) {
            f(backend);
        }
    }

    /// A probe (or in-request attempt) failed. A closed breaker takes
    /// `eject_after` strikes (one, for an in-request connect failure)
    /// before tripping open; a half-open breaker re-opens immediately
    /// with its backoff window doubled — probation admits no strikes.
    fn note_failure(&self, url: &str, immediate: bool) {
        let (interval, max_backoff, eject_after) = (
            self.config.probe_interval,
            self.config.max_probe_backoff,
            self.config.eject_after,
        );
        self.with_backend(url, |b| {
            b.consecutive_failures = b.consecutive_failures.saturating_add(1);
            match b.breaker {
                BreakerState::Closed => {
                    if immediate || b.consecutive_failures >= eject_after {
                        b.breaker = BreakerState::Open;
                        b.ejections += 1;
                        b.open_backoff = interval;
                    }
                }
                BreakerState::HalfOpen | BreakerState::Open => {
                    b.breaker = BreakerState::Open;
                    b.open_backoff = (b.open_backoff * 2).min(max_backoff).max(interval);
                }
            }
            b.next_probe = Instant::now()
                + match b.breaker {
                    BreakerState::Closed => interval,
                    _ => b.open_backoff,
                };
        });
    }

    /// A probe succeeded at `epoch` after `latency`: snap the breaker
    /// shut (re-admission when it was open/half-open), reset strikes,
    /// record the round trip.
    fn note_success(&self, url: &str, epoch: u64, latency: Duration) {
        let interval = self.config.probe_interval;
        self.with_backend(url, |b| {
            if b.breaker != BreakerState::Closed {
                b.readmissions += 1;
            }
            b.breaker = BreakerState::Closed;
            b.consecutive_failures = 0;
            b.open_backoff = Duration::ZERO;
            b.epoch = epoch.max(b.epoch);
            b.last_probe_us = latency.as_micros() as u64;
            b.next_probe = Instant::now() + interval;
        });
    }

    /// Breakers whose open window has lapsed move to half-open; the
    /// returned URLs owe a trial probe *now*. Runs under the same lock
    /// as the due-probe scan, so a window cannot lapse twice.
    fn take_due_probes(&self, now: Instant) -> Vec<String> {
        let mut backends = self.backends.lock().expect("registry lock");
        backends
            .iter_mut()
            .filter(|b| b.next_probe <= now)
            .map(|b| {
                if b.breaker == BreakerState::Open {
                    b.breaker = BreakerState::HalfOpen;
                }
                b.url.clone()
            })
            .collect()
    }

    fn note_forward(&self, url: &str) {
        self.with_backend(url, |b| b.forwarded += 1);
    }

    /// Candidate order for a read: eligible followers by descending
    /// rendezvous score, then the leader as the unconditional last
    /// resort. Returns `(candidates, fell_back_to_leader_only)`.
    fn read_plan(&self, affinity: u64) -> (Vec<String>, bool) {
        let backends = self.backends.lock().expect("registry lock");
        // The staleness reference is the newest epoch any backend has
        // reported — the leader's, unless the leader is unreachable and
        // a follower is ahead of our last sighting of it.
        let newest = backends.iter().map(|b| b.epoch).max().unwrap_or(0);
        let mut scored: Vec<(u64, &str)> = backends
            .iter()
            .filter(|b| {
                !b.is_leader
                    && b.healthy()
                    && newest.saturating_sub(b.epoch) <= self.config.staleness_bound
            })
            .map(|b| (rendezvous_score(&b.url, affinity), b.url.as_str()))
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        let had_followers = backends.iter().any(|b| !b.is_leader);
        let leader_only = had_followers && scored.is_empty();
        let mut plan: Vec<String> = scored.into_iter().map(|(_, url)| url.to_string()).collect();
        if let Some(leader) = backends.iter().find(|b| b.is_leader) {
            plan.push(leader.url.clone());
        }
        (plan, leader_only)
    }

    fn stats(&self) -> RouterStats {
        let backends = self.backends.lock().expect("registry lock");
        RouterStats {
            searches: self.counters.searches.load(Ordering::Relaxed),
            ingests: self.counters.ingests.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            leader_fallbacks: self.counters.leader_fallbacks.load(Ordering::Relaxed),
            unavailable: self.counters.unavailable.load(Ordering::Relaxed),
            probes: self.counters.probes.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            retry_tokens: self.retry_budget.available(),
            backends: backends.iter().map(Backend::snapshot).collect(),
        }
    }
}

/// Rendezvous (highest-random-weight) score of one backend for one
/// affinity key: every router instance ranks backends identically, and
/// removing a backend reassigns only the keys it owned.
fn rendezvous_score(url: &str, affinity: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write(url.as_bytes());
    h.write_u64(affinity);
    h.finish()
}

/// Affinity of a `/search` target: the PR-1 normalized cache key terms
/// (sorted, case-folded — `mohan sudarshan` ≡ `Sudarshan  Mohan`) plus
/// the raw strategy/limit parameters.
fn search_affinity(params: &[(String, String)]) -> u64 {
    let q = query_param(params, "q").unwrap_or("");
    let key = QueryKey::normalize(q, QueryOptions::default(), 0, 0);
    let mut h = FxHasher::default();
    for term in &key.terms {
        h.write(term.as_bytes());
        h.write_u8(0xff);
    }
    h.write(query_param(params, "strategy").unwrap_or("").as_bytes());
    h.write_u8(0xff);
    h.write(query_param(params, "limit").unwrap_or("").as_bytes());
    h.finish()
}

/// Affinity of any other read: the raw target string.
fn target_affinity(target: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(target.as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------------
// The router server.
// ---------------------------------------------------------------------------

/// A running router. Dropping (or [`Router::shutdown`]) stops the
/// prober, acceptor, and workers.
pub struct Router {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Bind and start routing.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let now = Instant::now();
        let mut backends = vec![Backend::new(config.leader.clone(), true, now)];
        backends.extend(
            config
                .followers
                .iter()
                .map(|f| Backend::new(f.clone(), false, now)),
        );
        let shared = Arc::new(Shared {
            backends: Mutex::new(backends),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            retry_budget: banks_util::retry::RetryBudget::new(config.retry_budget_tokens),
            config,
            registry: Registry::new(),
            started: now,
        });
        // The registry lives inside `Shared`, so the scrape collector
        // holds a `Weak` back-reference to avoid an `Arc` cycle.
        {
            let weak = Arc::downgrade(&shared);
            shared.registry.register_collector(move || {
                weak.upgrade()
                    .map(|shared| router_families(&shared))
                    .unwrap_or_default()
            });
        }

        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(shared.config.backlog);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("banks-router-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn router worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("banks-router-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(stream) => stream,
                            Err(_) => {
                                // Back off on transient accept errors
                                // instead of spinning.
                                std::thread::sleep(Duration::from_millis(10));
                                continue;
                            }
                        };
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn router acceptor")
        };

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("banks-router-probe".to_string())
                .spawn(move || prober_loop(&shared))
                .expect("spawn router prober")
        };

        Ok(Router {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            prober: Some(prober),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters + registry snapshot.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// Stop and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the router is shut down from another thread (the CLI
    /// foreground mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Probe every due backend, apply results, nap, repeat. An open
/// breaker whose window lapsed flips to half-open here and gets its
/// trial probe in the same pass.
fn prober_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let due = shared.take_due_probes(Instant::now());
        for url in due {
            shared.counters.probes.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            match probe(&url, shared.config.probe_timeout) {
                Some(epoch) => shared.note_success(&url, epoch, t0.elapsed()),
                None => shared.note_failure(&url, false),
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One `/health` probe: `Some(epoch)` on a parseable 200.
fn probe(url: &str, timeout: Duration) -> Option<u64> {
    let resp = http_request(url, "GET", "/health", None, timeout).ok()?;
    if resp.status != 200 {
        return None;
    }
    Json::parse(&resp.text()).ok()?.get("epoch")?.as_u64()
}

// ---------------------------------------------------------------------------
// Connection handling.
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A backend response relayed verbatim: status, body, content type,
    /// and the headers clients act on (`Retry-After`, `X-Banks-Epoch`).
    fn passthrough(resp: HttpResponse) -> Reply {
        let mut headers = Vec::new();
        for name in ["retry-after", "x-banks-epoch"] {
            if let Some(value) = resp.header(name) {
                headers.push((name.to_string(), value.to_string()));
            }
        }
        let content_type = match resp.header("content-type") {
            Some(ct) if ct.starts_with("application/octet-stream") => "application/octet-stream",
            Some(ct) if ct.starts_with("text/plain") => "text/plain; charset=utf-8",
            _ => "application/json",
        };
        Reply {
            status: resp.status,
            content_type,
            headers,
            body: resp.body,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    loop {
        let stream = {
            let rx = rx.lock().expect("router rx lock");
            rx.recv()
        };
        match stream {
            Ok(stream) => {
                let _ = handle_connection(stream, shared);
            }
            Err(_) => break, // acceptor gone
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_REQUEST_BYTES);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut content_length: u64 = 0;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        if header == "\r\n" || header == "\n" {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_REQUEST_BYTES) as usize];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("/").to_string();
    let reply = route(shared, &method, &target, &body);

    let mut stream = stream;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reply.status,
        reason(reply.status),
        reply.content_type,
        reply.body.len()
    );
    for (name, value) in &reply.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&reply.body)?;
    stream.flush()
}

fn route(shared: &Shared, method: &str, target: &str, body: &[u8]) -> Reply {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match (method, path) {
        ("GET", "/health") => health_reply(shared),
        ("GET", "/stats") => stats_reply(shared),
        ("GET", "/metrics") => Reply {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: shared.registry.render().into_bytes(),
        },
        ("POST", "/ingest") => forward_write(shared, target, body),
        ("GET", "/epochs") => forward_write(shared, target, &[]),
        ("GET", _) => {
            let affinity = if path == "/search" {
                shared.counters.searches.fetch_add(1, Ordering::Relaxed);
                search_affinity(&parse_query_string(query))
            } else {
                target_affinity(target)
            };
            forward_read(shared, target, affinity)
        }
        _ => Reply::json(
            405,
            r#"{"error":"only GET (and POST /ingest) are supported"}"#.to_string(),
        ),
    }
}

/// One forwarded request under the shared retry policy: only connect
/// failures — where no byte reached the backend, so nothing can
/// double-apply — are retried, with full-jitter backoff and the
/// router-wide retry budget. Everything else surfaces to the caller's
/// failover logic.
fn forward_with_retry(
    shared: &Shared,
    url: &str,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
) -> Result<HttpResponse, ClientError> {
    shared.config.retry.run(
        Some(&shared.retry_budget),
        |_| http_request(url, method, target, body, shared.config.request_timeout),
        |e| match e {
            ClientError::Connect(_) => Outcome::Retryable,
            _ => Outcome::Fatal,
        },
        |_, _, sleep| {
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
            sleep
        },
    )
}

/// Reads: walk the rendezvous plan, failing over past dead or lagging
/// backends; the leader is always the last resort.
fn forward_read(shared: &Shared, target: &str, affinity: u64) -> Reply {
    let (plan, leader_only) = shared.read_plan(affinity);
    if leader_only {
        shared
            .counters
            .leader_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }
    let total = plan.len();
    for (i, url) in plan.iter().enumerate() {
        let is_last = i + 1 == total;
        match forward_with_retry(shared, url, "GET", target, None) {
            Ok(resp) if resp.status == 409 && !is_last => {
                // This backend couldn't reach the client's `min_epoch`
                // in time; someone later in the plan (ultimately the
                // leader) has a newer epoch.
                shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Ok(resp) if resp.status >= 500 && !is_last => {
                shared.note_failure(url, true);
                shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Ok(resp) => {
                shared.note_forward(url);
                return Reply::passthrough(resp);
            }
            Err(_) => {
                shared.note_failure(url, true);
                if !is_last {
                    shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }
    shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
    let mut reply = Reply::json(
        503,
        r#"{"error":"no healthy backend","hint":"all backends unreachable; retry shortly"}"#
            .to_string(),
    );
    reply
        .headers
        .push(("retry-after".to_string(), "1".to_string()));
    reply
}

/// Writes (and `/epochs`) go to the leader, never a follower.
fn forward_write(shared: &Shared, target: &str, body: &[u8]) -> Reply {
    shared.counters.ingests.fetch_add(1, Ordering::Relaxed);
    let leader = shared.config.leader.clone();
    let method = if body.is_empty() { "GET" } else { "POST" };
    let payload = if body.is_empty() { None } else { Some(body) };
    match forward_with_retry(shared, &leader, method, target, payload) {
        Ok(resp) => {
            shared.note_forward(&leader);
            Reply::passthrough(resp)
        }
        Err(e) => {
            shared.note_failure(&leader, true);
            shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
            let mut reply = Reply::json(
                503,
                format!(
                    r#"{{"error":"leader unreachable","detail":"{}"}}"#,
                    e.to_string().replace('"', "'")
                ),
            );
            reply
                .headers
                .push(("retry-after".to_string(), "1".to_string()));
            reply
        }
    }
}

fn health_reply(shared: &Shared) -> Reply {
    let stats = shared.stats();
    let healthy = stats.backends.iter().filter(|b| b.healthy).count();
    Reply::json(
        200,
        Json::obj([
            ("status", Json::Str("ok".to_string())),
            ("version", Json::Str(banks_util::build::version())),
            ("uptime_s", Json::Uint(shared.started.elapsed().as_secs())),
            ("backends", Json::Uint(stats.backends.len() as u64)),
            ("healthy", Json::Uint(healthy as u64)),
        ])
        .compact(),
    )
}

fn stats_reply(shared: &Shared) -> Reply {
    let stats = shared.stats();
    let backends = stats
        .backends
        .iter()
        .map(|b| {
            Json::obj([
                ("url", Json::Str(b.url.clone())),
                ("role", Json::Str(b.role.to_string())),
                ("healthy", Json::Bool(b.healthy)),
                ("breaker", Json::Str(b.breaker.label().to_string())),
                ("epoch", Json::Uint(b.epoch)),
                ("forwarded", Json::Uint(b.forwarded)),
                ("ejections", Json::Uint(b.ejections)),
                ("readmissions", Json::Uint(b.readmissions)),
                ("last_probe_us", Json::Uint(b.last_probe_us)),
            ])
        })
        .collect();
    Reply::json(
        200,
        Json::obj([
            (
                "router",
                Json::obj([
                    ("searches", Json::Uint(stats.searches)),
                    ("ingests", Json::Uint(stats.ingests)),
                    ("failovers", Json::Uint(stats.failovers)),
                    ("leader_fallbacks", Json::Uint(stats.leader_fallbacks)),
                    ("unavailable", Json::Uint(stats.unavailable)),
                    ("probes", Json::Uint(stats.probes)),
                    ("retries", Json::Uint(stats.retries)),
                    ("retry_tokens", Json::Uint(stats.retry_tokens)),
                ]),
            ),
            ("backends", Json::Arr(backends)),
        ])
        .compact(),
    )
}

/// The router's Prometheus families, collected at scrape time from the
/// same counter snapshot `/stats` reads: routing totals plus one
/// labeled sample per backend (`backend`, `role`).
fn router_families(shared: &Shared) -> Vec<CollectedFamily> {
    let stats = shared.stats();
    let c = Kind::Counter;
    let g = Kind::Gauge;
    let mut fams = vec![
        CollectedFamily::scalar(
            "banks_router_searches_total",
            "`/search` requests routed.",
            c,
            stats.searches as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_ingests_total",
            "Write requests forwarded to the leader.",
            c,
            stats.ingests as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_failovers_total",
            "Mid-request failovers to the next read candidate.",
            c,
            stats.failovers as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_leader_fallbacks_total",
            "Reads answered by the leader because no follower was eligible.",
            c,
            stats.leader_fallbacks as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_unavailable_total",
            "Requests answered 503 with no reachable backend.",
            c,
            stats.unavailable as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_probes_total",
            "Health probes sent.",
            c,
            stats.probes as f64,
        ),
        CollectedFamily::scalar(
            "banks_retries_total",
            "Forwarding retries under the shared retry policy.",
            c,
            stats.retries as f64,
        ),
        CollectedFamily::scalar(
            "banks_retry_budget_tokens",
            "Whole retry tokens left in the router's shared budget.",
            g,
            stats.retry_tokens as f64,
        ),
        CollectedFamily::scalar(
            "banks_router_uptime_seconds",
            "Seconds since the router was bound.",
            g,
            shared.started.elapsed().as_secs_f64(),
        ),
    ];
    let labeled = |f: fn(&BackendSnapshot) -> f64| -> Vec<Sample> {
        stats
            .backends
            .iter()
            .map(|b| Sample {
                labels: vec![("backend", b.url.clone()), ("role", b.role.to_string())],
                value: f(b),
            })
            .collect()
    };
    for (name, help, kind, f) in [
        (
            "banks_router_backend_healthy",
            "1 when the backend is in rotation.",
            g,
            (|b| if b.healthy { 1.0 } else { 0.0 }) as fn(&BackendSnapshot) -> f64,
        ),
        (
            "banks_breaker_state",
            "Backend circuit breaker: 0 closed, 1 half-open, 2 open.",
            g,
            |b| b.breaker.gauge(),
        ),
        (
            "banks_router_backend_epoch",
            "Serving epoch at the backend's last successful probe.",
            g,
            |b| b.epoch as f64,
        ),
        (
            "banks_router_backend_forwarded_total",
            "Requests forwarded to the backend.",
            c,
            |b| b.forwarded as f64,
        ),
        (
            "banks_router_backend_ejections_total",
            "Times the backend left rotation.",
            c,
            |b| b.ejections as f64,
        ),
        (
            "banks_router_backend_readmissions_total",
            "Times the backend re-entered rotation.",
            c,
            |b| b.readmissions as f64,
        ),
        (
            "banks_router_backend_last_probe_seconds",
            "Round-trip time of the backend's last successful probe.",
            g,
            |b| b.last_probe_us as f64 * 1e-6,
        ),
    ] {
        fams.push(CollectedFamily {
            name,
            help,
            kind,
            samples: labeled(f),
        });
    }
    fams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_deterministic_and_minimal() {
        let urls = ["127.0.0.1:1001", "127.0.0.1:1002", "127.0.0.1:1003"];
        let rank = |affinity: u64, pool: &[&str]| -> Vec<String> {
            let mut scored: Vec<(u64, &str)> = pool
                .iter()
                .map(|u| (rendezvous_score(u, affinity), *u))
                .collect();
            scored.sort_unstable_by(|a, b| b.cmp(a));
            scored.into_iter().map(|(_, u)| u.to_string()).collect()
        };
        for affinity in [0u64, 7, 42, 0xdead_beef] {
            // Order-independent: the ranking ignores registration order.
            let a = rank(affinity, &urls);
            let mut shuffled = urls;
            shuffled.reverse();
            let b = rank(affinity, &shuffled);
            assert_eq!(a, b);
            // Minimal disruption: removing a non-winner never changes
            // the winner.
            let winner = a[0].clone();
            for dropped in &urls {
                if *dropped == winner {
                    continue;
                }
                let pool: Vec<&str> = urls.iter().filter(|u| *u != dropped).copied().collect();
                assert_eq!(rank(affinity, &pool)[0], winner, "dropped {dropped}");
            }
        }
    }

    #[test]
    fn search_affinity_matches_the_cache_key() {
        let parse = |qs: &str| parse_query_string(qs);
        // Order- and case-insensitive, like QueryKey.
        assert_eq!(
            search_affinity(&parse("q=mohan+sudarshan")),
            search_affinity(&parse("q=Sudarshan++mohan"))
        );
        // Different terms, strategies, or limits split.
        assert_ne!(
            search_affinity(&parse("q=mohan")),
            search_affinity(&parse("q=sudarshan"))
        );
        assert_ne!(
            search_affinity(&parse("q=mohan&strategy=iterator")),
            search_affinity(&parse("q=mohan"))
        );
        assert_ne!(
            search_affinity(&parse("q=mohan&limit=3")),
            search_affinity(&parse("q=mohan&limit=5"))
        );
    }

    #[test]
    fn registry_ejects_and_readmits() {
        let shared = Shared {
            config: RouterConfig {
                leader: "l:1".to_string(),
                followers: vec!["f:1".to_string()],
                ..RouterConfig::default()
            },
            backends: Mutex::new(vec![
                Backend::new("l:1".to_string(), true, Instant::now()),
                Backend::new("f:1".to_string(), false, Instant::now()),
            ]),
            counters: Counters::default(),
            retry_budget: banks_util::retry::RetryBudget::new(64),
            shutdown: AtomicBool::new(false),
            registry: Registry::new(),
            started: Instant::now(),
        };
        // Two strikes eject; the plan then holds only the leader.
        shared.note_failure("f:1", false);
        assert!(shared.stats().backends[1].healthy);
        shared.note_failure("f:1", false);
        let stats = shared.stats();
        assert!(!stats.backends[1].healthy);
        assert_eq!(stats.backends[1].ejections, 1);
        let (plan, leader_only) = shared.read_plan(1);
        assert_eq!(plan, vec!["l:1".to_string()]);
        assert!(leader_only);
        // A successful probe re-admits and records its round trip.
        shared.note_success("f:1", 9, Duration::from_micros(250));
        let stats = shared.stats();
        assert!(stats.backends[1].healthy);
        assert_eq!(stats.backends[1].readmissions, 1);
        assert_eq!(stats.backends[1].epoch, 9);
        assert_eq!(stats.backends[1].last_probe_us, 250);
        let (plan, _) = shared.read_plan(1);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.last().unwrap(), "l:1");
    }

    #[test]
    fn breaker_walks_closed_open_half_open() {
        let shared = Shared {
            config: RouterConfig {
                leader: "l:1".to_string(),
                followers: vec!["f:1".to_string()],
                probe_interval: Duration::from_millis(10),
                max_probe_backoff: Duration::from_millis(80),
                ..RouterConfig::default()
            },
            backends: Mutex::new(vec![
                Backend::new("l:1".to_string(), true, Instant::now()),
                Backend::new("f:1".to_string(), false, Instant::now()),
            ]),
            counters: Counters::default(),
            retry_budget: banks_util::retry::RetryBudget::new(64),
            shutdown: AtomicBool::new(false),
            registry: Registry::new(),
            started: Instant::now(),
        };
        let breaker = |shared: &Shared| shared.stats().backends[1].breaker;
        // An in-request connect failure trips the breaker immediately.
        shared.note_failure("f:1", true);
        assert_eq!(breaker(&shared), BreakerState::Open);
        // Open absorbs traffic-free time; the window lapsing (simulated
        // by a far-future scan instant) flips it to half-open and owes
        // exactly one trial probe.
        let due = shared.take_due_probes(Instant::now() + Duration::from_secs(60));
        assert!(due.contains(&"f:1".to_string()));
        assert_eq!(breaker(&shared), BreakerState::HalfOpen);
        // A failed trial re-opens with a doubled window — no strikes in
        // probation.
        shared.note_failure("f:1", false);
        assert_eq!(breaker(&shared), BreakerState::Open);
        {
            let backends = shared.backends.lock().unwrap();
            assert_eq!(backends[1].open_backoff, Duration::from_millis(20));
            assert_eq!(backends[1].ejections, 1, "re-open is not a new ejection");
        }
        // Second lapse + successful trial: breaker snaps shut and the
        // backend is back in rotation.
        shared.take_due_probes(Instant::now() + Duration::from_secs(60));
        assert_eq!(breaker(&shared), BreakerState::HalfOpen);
        shared.note_success("f:1", 4, Duration::from_micros(100));
        assert_eq!(breaker(&shared), BreakerState::Closed);
        let stats = shared.stats();
        assert!(stats.backends[1].healthy);
        assert_eq!(stats.backends[1].readmissions, 1);
        assert!(shared.read_plan(1).0.contains(&"f:1".to_string()));
    }

    #[test]
    fn stale_followers_leave_rotation() {
        let config = RouterConfig {
            leader: "l:1".to_string(),
            followers: vec!["f:1".to_string(), "f:2".to_string()],
            staleness_bound: 2,
            ..RouterConfig::default()
        };
        let now = Instant::now();
        let shared = Shared {
            backends: Mutex::new(vec![
                Backend::new("l:1".to_string(), true, now),
                Backend::new("f:1".to_string(), false, now),
                Backend::new("f:2".to_string(), false, now),
            ]),
            counters: Counters::default(),
            retry_budget: banks_util::retry::RetryBudget::new(64),
            shutdown: AtomicBool::new(false),
            config,
            registry: Registry::new(),
            started: now,
        };
        shared.note_success("l:1", 10, Duration::ZERO);
        shared.note_success("f:1", 9, Duration::ZERO); // within bound
        shared.note_success("f:2", 3, Duration::ZERO); // hopelessly behind
        let (plan, leader_only) = shared.read_plan(1);
        assert!(!leader_only);
        assert_eq!(plan, vec!["f:1".to_string(), "l:1".to_string()]);
        // Every follower stale → leader-only fallback.
        shared.note_success("l:1", 20, Duration::ZERO);
        let (plan, leader_only) = shared.read_plan(1);
        assert_eq!(plan, vec!["l:1".to_string()]);
        assert!(leader_only);
    }

    #[test]
    fn metrics_cover_router_totals_and_labeled_backends() {
        let now = Instant::now();
        let shared = Arc::new(Shared {
            config: RouterConfig {
                leader: "l:1".to_string(),
                followers: vec!["f:1".to_string()],
                ..RouterConfig::default()
            },
            backends: Mutex::new(vec![
                Backend::new("l:1".to_string(), true, now),
                Backend::new("f:1".to_string(), false, now),
            ]),
            counters: Counters::default(),
            retry_budget: banks_util::retry::RetryBudget::new(64),
            shutdown: AtomicBool::new(false),
            registry: Registry::new(),
            started: now,
        });
        shared.counters.searches.fetch_add(3, Ordering::Relaxed);
        shared.note_success("f:1", 7, Duration::from_micros(100));
        let weak = Arc::downgrade(&shared);
        shared.registry.register_collector(move || {
            weak.upgrade()
                .map(|shared| router_families(&shared))
                .unwrap_or_default()
        });
        let text = shared.registry.render();
        for family in [
            "banks_router_searches_total",
            "banks_router_ingests_total",
            "banks_router_failovers_total",
            "banks_router_leader_fallbacks_total",
            "banks_router_unavailable_total",
            "banks_router_probes_total",
            "banks_retries_total",
            "banks_retry_budget_tokens",
            "banks_router_uptime_seconds",
            "banks_router_backend_healthy",
            "banks_breaker_state",
            "banks_router_backend_epoch",
            "banks_router_backend_forwarded_total",
            "banks_router_backend_ejections_total",
            "banks_router_backend_readmissions_total",
            "banks_router_backend_last_probe_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} missing:\n{text}"
            );
        }
        assert!(text.contains("banks_router_searches_total 3"));
        assert!(text.contains(r#"banks_router_backend_epoch{backend="f:1",role="follower"} 7"#));
        assert!(text.contains(r#"banks_router_backend_healthy{backend="l:1",role="leader"} 1"#));
        // The probe round trip exports in seconds (value check is done
        // on the collected sample — text rendering of floats varies).
        let fams = router_families(&shared);
        let probe = fams
            .iter()
            .find(|f| f.name == "banks_router_backend_last_probe_seconds")
            .and_then(|f| {
                f.samples
                    .iter()
                    .find(|s| s.labels.iter().any(|(_, v)| v == "f:1"))
            })
            .expect("f:1 probe sample");
        assert!((probe.value - 100e-6).abs() < 1e-9, "{}", probe.value);
    }
}
