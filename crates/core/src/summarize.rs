//! Answer summarization (§7): "group the output tuples into sets that have
//! the same tree structure, and allow the user to look for further answers
//! with a particular tree structure."
//!
//! Two answers share a group when their trees have the same *schema-level
//! shape*: the rooted tree obtained by replacing every tuple node with its
//! relation. E.g. all `Paper(Writes→Author, Writes→Author)` co-authorship
//! answers group together regardless of which paper and authors they bind.

use crate::answer::Answer;
use crate::graph_build::TupleGraph;
use banks_storage::Database;
use std::collections::HashMap;

/// A group of answers sharing one schema-level tree shape.
#[derive(Debug, Clone)]
pub struct AnswerGroup {
    /// Raw shape key (relation ids), stable across runs for one database.
    pub shape: String,
    /// Human-readable shape using relation names.
    pub label: String,
    /// Members, in their original rank order.
    pub answers: Vec<Answer>,
    /// Best (maximum) relevance among members.
    pub best_relevance: f64,
}

/// Group `answers` by tree shape, ordered by best member relevance.
pub fn summarize(db: &Database, tuple_graph: &TupleGraph, answers: &[Answer]) -> Vec<AnswerGroup> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, AnswerGroup> = HashMap::new();
    for answer in answers {
        let shape = answer.tree.shape_signature(tuple_graph);
        let group = groups.entry(shape.clone()).or_insert_with(|| {
            order.push(shape.clone());
            AnswerGroup {
                label: label_shape(db, &shape),
                shape,
                answers: Vec::new(),
                best_relevance: f64::NEG_INFINITY,
            }
        });
        group.best_relevance = group.best_relevance.max(answer.relevance);
        group.answers.push(answer.clone());
    }
    let mut out: Vec<AnswerGroup> = order
        .into_iter()
        .map(|s| groups.remove(&s).unwrap())
        .collect();
    out.sort_by(|a, b| b.best_relevance.total_cmp(&a.best_relevance));
    out
}

/// Replace `R<id>` tokens in a shape signature with relation names.
fn label_shape(db: &Database, shape: &str) -> String {
    let mut out = String::with_capacity(shape.len());
    let mut chars = shape.chars().peekable();
    while let Some(c) = chars.next() {
        if c == 'R' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            let mut num = String::new();
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                num.push(chars.next().unwrap());
            }
            let id: u32 = num.parse().unwrap();
            let name = db
                .relations()
                .nth(id as usize)
                .map(|t| t.schema().name.clone())
                .unwrap_or_else(|| format!("R{id}"));
            out.push_str(&name);
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::ConnectionTree;
    use crate::config::GraphConfig;
    use banks_graph::NodeId;
    use banks_storage::{ColumnType, RelationSchema, Value};

    fn fixture() -> (Database, TupleGraph) {
        let mut db = Database::new("d");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("A", ColumnType::Text)
                .column("P", ColumnType::Text)
                .primary_key(&["A", "P"])
                .foreign_key(&["A"], "Author")
                .foreign_key(&["P"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["a1", "a2"] {
            db.insert("Author", vec![Value::text(a)]).unwrap();
        }
        for p in ["p1", "p2"] {
            db.insert("Paper", vec![Value::text(p)]).unwrap();
        }
        for (a, p) in [("a1", "p1"), ("a2", "p1"), ("a1", "p2"), ("a2", "p2")] {
            db.insert("Writes", vec![Value::text(a), Value::text(p)])
                .unwrap();
        }
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        (db, tg)
    }

    fn paper_tree(db: &Database, tg: &TupleGraph, p: &str, rel: f64) -> Answer {
        let paper = tg
            .node(
                db.relation("Paper")
                    .unwrap()
                    .lookup_pk(&[Value::text(p)])
                    .unwrap(),
            )
            .unwrap();
        let w1 = tg
            .node(
                db.relation("Writes")
                    .unwrap()
                    .lookup_pk(&[Value::text("a1"), Value::text(p)])
                    .unwrap(),
            )
            .unwrap();
        let w2 = tg
            .node(
                db.relation("Writes")
                    .unwrap()
                    .lookup_pk(&[Value::text("a2"), Value::text(p)])
                    .unwrap(),
            )
            .unwrap();
        let a1 = tg
            .node(
                db.relation("Author")
                    .unwrap()
                    .lookup_pk(&[Value::text("a1")])
                    .unwrap(),
            )
            .unwrap();
        let a2 = tg
            .node(
                db.relation("Author")
                    .unwrap()
                    .lookup_pk(&[Value::text("a2")])
                    .unwrap(),
            )
            .unwrap();
        let tree = ConnectionTree::new(
            paper,
            vec![a1, a2],
            vec![
                (paper, w1, 1.0),
                (w1, a1, 1.0),
                (paper, w2, 1.0),
                (w2, a2, 1.0),
            ],
        );
        Answer {
            tree,
            relevance: rel,
        }
    }

    fn single_node(_tg: &TupleGraph, node: NodeId, rel: f64) -> Answer {
        Answer {
            tree: ConnectionTree::new(node, vec![node], vec![]),
            relevance: rel,
        }
    }

    #[test]
    fn same_shape_groups_together() {
        let (db, tg) = fixture();
        let answers = vec![
            paper_tree(&db, &tg, "p1", 0.9),
            paper_tree(&db, &tg, "p2", 0.7),
            single_node(&tg, NodeId(0), 0.5),
        ];
        let groups = summarize(&db, &tg, &answers);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].answers.len(), 2, "both co-authorship trees");
        assert_eq!(groups[0].best_relevance, 0.9);
        assert_eq!(groups[1].answers.len(), 1);
    }

    #[test]
    fn labels_use_relation_names() {
        let (db, tg) = fixture();
        let groups = summarize(&db, &tg, &[paper_tree(&db, &tg, "p1", 0.9)]);
        assert_eq!(groups[0].label, "Paper(Writes(Author),Writes(Author))");
    }

    #[test]
    fn groups_sorted_by_best_relevance() {
        let (db, tg) = fixture();
        let answers = vec![
            single_node(&tg, NodeId(0), 0.95),
            paper_tree(&db, &tg, "p1", 0.9),
            paper_tree(&db, &tg, "p2", 0.99),
        ];
        let groups = summarize(&db, &tg, &answers);
        assert_eq!(groups[0].best_relevance, 0.99);
        assert_eq!(groups[1].best_relevance, 0.95);
    }

    #[test]
    fn empty_input_empty_output() {
        let (db, tg) = fixture();
        assert!(summarize(&db, &tg, &[]).is_empty());
    }
}
