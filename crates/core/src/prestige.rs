//! Node prestige beyond plain indegree: authority transfer (§7).
//!
//! The paper sets prestige to indegree but notes "Extensions to handle
//! transfer of prestige (as is done, e.g., in Google's PageRank) can be
//! easily added to the model" (§2.2) and lists authority transfer as
//! ongoing work (§7: "wherein nodes pointed to by heavy nodes … become
//! heavier"). This module implements that extension as a damped power
//! iteration over the *database link* direction: each tuple pushes a
//! `damping` fraction of its prestige to the tuples it references, split
//! evenly, on top of a base share of its indegree.

use banks_graph::{FxHashMap, NodeId};
use banks_storage::{Database, Rid};

/// Compute authority-transfer prestige for every node.
///
/// `rid_nodes` supplies the tuple→node mapping being used by the graph
/// builder; the returned vector is indexed by node id.
pub fn authority_transfer(
    db: &Database,
    rid_nodes: &FxHashMap<Rid, NodeId>,
    iterations: usize,
    damping: f64,
) -> Vec<f64> {
    let n = rid_nodes.len();
    // Base prestige: indegree (normalized later by the scorer, so raw
    // scale is fine).
    let mut base = vec![0.0f64; n];
    // Outgoing links per node, in node-id space.
    let mut out_links: Vec<Vec<u32>> = vec![Vec::new(); n];
    for table in db.relations() {
        let fk_count = table.schema().foreign_keys.len();
        for (rid, _) in table.scan() {
            let Some(&node) = rid_nodes.get(&rid) else {
                continue;
            };
            base[node.index()] = db.indegree(rid) as f64;
            for fk in 0..fk_count {
                if let Ok(Some(target)) = db.resolve_fk(rid, fk) {
                    if let Some(&t) = rid_nodes.get(&target) {
                        out_links[node.index()].push(t.0);
                    }
                }
            }
        }
    }

    let mut weights = base.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for slot in next.iter_mut() {
            *slot = 0.0;
        }
        for (i, targets) in out_links.iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let share = damping * weights[i] / targets.len() as f64;
            for &t in targets {
                next[t as usize] += share;
            }
        }
        for i in 0..n {
            next[i] += (1.0 - damping) * base[i];
        }
        std::mem::swap(&mut weights, &mut next);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, RelationSchema, Value};

    /// paper chain: c1 cites p, c2 cites p; p cites q (via a Cites table
    /// modeled directly with nullable self FK for simplicity).
    fn citation_db() -> (Database, Vec<Rid>) {
        let mut db = Database::new("c");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .nullable_column("Cites", ColumnType::Text)
                .primary_key(&["Id"])
                .nullable_foreign_key(&["Cites"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        let q = db
            .insert("Paper", vec![Value::text("q"), Value::Null])
            .unwrap();
        let p = db
            .insert("Paper", vec![Value::text("p"), Value::text("q")])
            .unwrap();
        let c1 = db
            .insert("Paper", vec![Value::text("c1"), Value::text("p")])
            .unwrap();
        let c2 = db
            .insert("Paper", vec![Value::text("c2"), Value::text("p")])
            .unwrap();
        (db, vec![q, p, c1, c2])
    }

    fn node_map(rids: &[Rid]) -> FxHashMap<Rid, NodeId> {
        rids.iter()
            .enumerate()
            .map(|(i, &r)| (r, NodeId(i as u32)))
            .collect()
    }

    #[test]
    fn zero_iterations_is_indegree() {
        let (db, rids) = citation_db();
        let w = authority_transfer(&db, &node_map(&rids), 0, 0.5);
        assert_eq!(w, vec![1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn transfer_flows_to_referenced_papers() {
        let (db, rids) = citation_db();
        let w = authority_transfer(&db, &node_map(&rids), 5, 0.5);
        // q is cited by the well-cited p: its prestige must now exceed its
        // raw indegree share, and p stays the heaviest.
        assert!(w[0] > 0.5, "q received transferred prestige: {w:?}");
        assert!(w[1] >= w[0]);
        assert!(w[2] < w[0] && w[3] < w[0], "leaf citers stay light");
    }

    #[test]
    fn damping_zero_reduces_to_scaled_indegree() {
        let (db, rids) = citation_db();
        let w = authority_transfer(&db, &node_map(&rids), 3, 0.0);
        assert_eq!(w, vec![1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn weights_stay_finite_and_nonnegative() {
        let (db, rids) = citation_db();
        let w = authority_transfer(&db, &node_map(&rids), 50, 0.9);
        for v in w {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
