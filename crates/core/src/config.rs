//! Configuration for graph construction, matching, scoring and search.
//!
//! The paper's §2.3 evaluation sweeps three binary options (edge-score
//! scaling, node-score scaling, combination mode) and the weight factor λ;
//! those live in [`ScoreParams`]. Everything else — the knobs the paper
//! describes in prose (heap size, answer count, metadata matching, root
//! exclusion) — lives in the surrounding structs.

use crate::error::{BanksError, BanksResult};

/// How the per-edge score is normalized (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeScoreMode {
    /// `w(e) / w_min` — raw scale-free weight.
    Linear,
    /// `log2(1 + w(e)/w_min)` — "reducing the edge weight range by
    /// log-scaling was important" (§5.3).
    Log,
}

/// How the per-node score is normalized (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeScoreMode {
    /// `w(v) / w_max`.
    Linear,
    /// `log2(1 + w(v)) / log2(1 + w_max)`.
    Log,
}

/// How edge score and node score combine into overall relevance (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineMode {
    /// `(1-λ)·Escore + λ·Nscore`.
    Additive,
    /// `Escore^(1−λ) · Nscore^λ` (the geometric counterpart; the paper
    /// leaves the multiplicative exponents implicit).
    Multiplicative,
}

/// The ranking parameters of §2.3 / Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    /// Relative weight of node score vs edge score, in `[0,1]`.
    /// The paper finds λ = 0.2 with log edge scaling best (§5.3).
    pub lambda: f64,
    /// Edge score normalization.
    pub edge_score: EdgeScoreMode,
    /// Node score normalization.
    pub node_score: NodeScoreMode,
    /// Combination mode.
    pub combine: CombineMode,
}

impl Default for ScoreParams {
    /// The paper's best setting: λ=0.2, log-scaled edges, additive.
    fn default() -> Self {
        ScoreParams {
            lambda: 0.2,
            edge_score: EdgeScoreMode::Log,
            node_score: NodeScoreMode::Linear,
            combine: CombineMode::Additive,
        }
    }
}

impl ScoreParams {
    /// Validate ranges.
    pub fn validate(&self) -> BanksResult<()> {
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(BanksError::BadConfig(format!(
                "lambda must be in [0,1], got {}",
                self.lambda
            )));
        }
        Ok(())
    }

    /// All eight (edge, node, combine) combinations at a given λ, in a
    /// stable order — the space the paper's §2.3 enumerates.
    pub fn all_combinations(lambda: f64) -> Vec<ScoreParams> {
        let mut out = Vec::with_capacity(8);
        for edge in [EdgeScoreMode::Linear, EdgeScoreMode::Log] {
            for node in [NodeScoreMode::Linear, NodeScoreMode::Log] {
                for combine in [CombineMode::Additive, CombineMode::Multiplicative] {
                    out.push(ScoreParams {
                        lambda,
                        edge_score: edge,
                        node_score: node,
                        combine,
                    });
                }
            }
        }
        out
    }

    /// The five combinations the paper actually compares: it "discarded
    /// three combinations: those that involve log scaling and
    /// multiplication as these scores tended to become quite small" (§2.3).
    pub fn retained_combinations(lambda: f64) -> Vec<ScoreParams> {
        Self::all_combinations(lambda)
            .into_iter()
            .filter(|p| {
                !(p.combine == CombineMode::Multiplicative
                    && (p.edge_score == EdgeScoreMode::Log || p.node_score == NodeScoreMode::Log))
            })
            .collect()
    }
}

/// How node prestige (§2.2 node weights) is assigned at graph build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeWeightMode {
    /// Indegree of the tuple — the paper's implementation.
    Indegree,
    /// All nodes weigh 1 (ablation: ignore prestige structure).
    Uniform,
    /// Authority transfer (§7 "a form of spreading activation"): iterate
    /// prestige flow along links.
    AuthorityTransfer {
        /// Number of power iterations.
        iterations: usize,
        /// Fraction of prestige transferred per step (like PageRank's
        /// damping factor).
        damping: f64,
    },
}

/// Graph construction options.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// Node prestige assignment.
    pub node_weight: NodeWeightMode,
    /// Default similarity `s(R1,R2)` for links without a per-FK override.
    pub default_similarity: f64,
    /// Ablation toggle: when `false`, backward edges get the plain
    /// similarity weight instead of the indegree-scaled weight of eq. (1),
    /// i.e. the graph degenerates to a symmetric one — the configuration
    /// the paper argues *against* in §2.1 (hub problem).
    pub indegree_backward_weights: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            node_weight: NodeWeightMode::Indegree,
            default_similarity: 1.0,
            indegree_backward_weights: true,
        }
    }
}

/// Keyword matching options (§2.3 and the §7 extensions).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConfig {
    /// Match keywords against relation/column names ("BANKS allows query
    /// keywords to match data … and meta data").
    pub match_metadata: bool,
    /// Approximate token matching at edit distance ≤ 1 (a §7 plan:
    /// "some form of approximate matching"). Off by default.
    pub approximate: bool,
    /// Window for `approx(n)` numeric terms: a value `v` matches when
    /// `|v − n| ≤ window` ("concurrency approx(1988)", §7).
    pub approx_window: i64,
    /// Node relevance assigned to edit-distance matches (§2.3's
    /// node-relevance extension); exact matches always score 1.0.
    pub approx_penalty: f64,
    /// Allow queries where some terms match nothing: those terms are
    /// dropped instead of producing zero answers ("the condition that one
    /// node from each S_i must be present can be relaxed", §2.3).
    pub allow_missing_terms: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            match_metadata: true,
            approximate: false,
            approx_window: 2,
            approx_penalty: 0.5,
            allow_missing_terms: false,
        }
    }
}

/// Search algorithm options (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Number of answers to produce. The paper's evaluation stops at 10.
    pub max_results: usize,
    /// Capacity of the fixed-size output heap used to approximately
    /// re-sort generated trees by relevance ("a reasonably small heap
    /// size", §3).
    pub output_heap_size: usize,
    /// Bound on each Dijkstra iterator's search radius.
    pub max_distance: f64,
    /// Bound on total iterator pops, a safety valve for the metadata-query
    /// blow-up discussed in §7.
    pub max_pops: usize,
    /// Bound on cross-product combinations generated per visited node.
    pub max_cross_product: usize,
    /// Discard trees whose root has exactly one child ("the tree formed by
    /// removing the root node would also have been generated, and would be
    /// a better answer", §3).
    pub discard_single_child_root: bool,
    /// Detect and keep only the best representative of duplicate trees
    /// ("isomorphic modulo direction", §3).
    pub deduplicate: bool,
    /// Relations whose tuples may not serve as information nodes ("we may
    /// restrict the information node to be from a selected set", §2.1 —
    /// e.g. exclude `Writes`).
    pub excluded_root_relations: Vec<String>,
    /// Per-candidate-root node budget for the §7 forward-search heuristic
    /// (nodes settled by each forward probe).
    pub forward_probe_budget: usize,
    /// §3 extension: "the distance measure can be extended to include
    /// node weights of nodes matching keywords". When enabled, each
    /// iterator's origin starts at distance
    /// `(1 − Nscore(origin)) · w_min`, so iterators from prestigious
    /// keyword nodes expand — and connect — first.
    pub node_weight_in_distance: bool,
    /// Stop expanding once the top `max_results` can no longer change:
    /// every un-generated tree's relevance is bounded above by
    /// [`crate::score::Scorer::max_relevance_for_weight`] of the frontier
    /// distance, and when that bound falls strictly below the worst
    /// retained answer no future tree can enter (or reorder) the output.
    /// The termination is exact — disable only to measure the exhaustive
    /// baseline.
    pub early_termination: bool,
    /// Expansion threads for intra-query parallel backward search: each
    /// keyword set's multi-origin Dijkstra expansion runs as its own
    /// shard on a scoped thread (shards beyond this count share
    /// threads), and a deterministic merge stage consumes the shards'
    /// settled-node events in global frontier-distance order — so the
    /// parallel executor's answers, scores, and execution stats are
    /// bit-identical to the sequential kernel at any thread count.
    /// `0`/`1` = sequential (the default; serving layers size this
    /// against their worker pool).
    pub search_threads: usize,
    /// Adaptive cutover for the parallel executor: sequential execution
    /// is kept (zero overhead — no threads, no queues) while the total
    /// candidate-origin count `Σ|Sᵢ|` is below this, since tiny
    /// frontiers finish faster than a thread spawn. Single-keyword
    /// queries are always sequential regardless.
    pub parallel_min_origins: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_results: 10,
            output_heap_size: 30,
            max_distance: f64::INFINITY,
            max_pops: 2_000_000,
            max_cross_product: 100_000,
            discard_single_child_root: true,
            deduplicate: true,
            excluded_root_relations: Vec::new(),
            forward_probe_budget: 4096,
            node_weight_in_distance: false,
            early_termination: true,
            search_threads: 1,
            parallel_min_origins: 3,
        }
    }
}

/// Top-level configuration bundle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BanksConfig {
    /// Graph construction.
    pub graph: GraphConfig,
    /// Keyword matching.
    pub matching: MatchConfig,
    /// Ranking.
    pub score: ScoreParams,
    /// Search execution.
    pub search: SearchConfig,
}

impl BanksConfig {
    /// Validate all sections.
    pub fn validate(&self) -> BanksResult<()> {
        self.score.validate()?;
        if self.search.output_heap_size == 0 {
            return Err(BanksError::BadConfig("output_heap_size must be ≥ 1".into()));
        }
        if !(self.graph.default_similarity.is_finite() && self.graph.default_similarity > 0.0) {
            return Err(BanksError::BadConfig(
                "default_similarity must be finite and positive".into(),
            ));
        }
        if let NodeWeightMode::AuthorityTransfer { damping, .. } = self.graph.node_weight {
            if !(0.0..=1.0).contains(&damping) {
                return Err(BanksError::BadConfig("damping must be in [0,1]".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_best() {
        let p = ScoreParams::default();
        assert_eq!(p.lambda, 0.2);
        assert_eq!(p.edge_score, EdgeScoreMode::Log);
        assert_eq!(p.combine, CombineMode::Additive);
        assert!(BanksConfig::default().validate().is_ok());
    }

    #[test]
    fn combination_counts_match_paper() {
        assert_eq!(ScoreParams::all_combinations(0.5).len(), 8);
        // "we discarded three combinations" → 5 retained.
        assert_eq!(ScoreParams::retained_combinations(0.5).len(), 5);
        // Retained multiplicative ones use no log scaling anywhere.
        for p in ScoreParams::retained_combinations(0.5) {
            if p.combine == CombineMode::Multiplicative {
                assert_eq!(p.edge_score, EdgeScoreMode::Linear);
                assert_eq!(p.node_score, NodeScoreMode::Linear);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = BanksConfig::default();
        c.score.lambda = 1.5;
        assert!(c.validate().is_err());

        let mut c = BanksConfig::default();
        c.search.output_heap_size = 0;
        assert!(c.validate().is_err());

        let mut c = BanksConfig::default();
        c.graph.default_similarity = 0.0;
        assert!(c.validate().is_err());

        let mut c = BanksConfig::default();
        c.graph.node_weight = NodeWeightMode::AuthorityTransfer {
            iterations: 3,
            damping: 2.0,
        };
        assert!(c.validate().is_err());
    }
}
