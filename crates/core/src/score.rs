//! Relevance scoring (§2.3).
//!
//! Node weights and edge weights give two separate relevance measures,
//! each normalized into a scale-free quantity, then combined:
//!
//! * per-edge score `e = w(e)/w_min` (or `log2(1 + w(e)/w_min)`), overall
//!   edge score `Escore = 1 / (1 + Σ e)` ∈ (0,1] — lower for large trees;
//! * per-node score `n = w(v)/w_max` (or `log2(1+w(v))/log2(1+w_max)`),
//!   overall node score `Nscore` = the average over **leaf keyword nodes
//!   and the root only**, a node counted once per search term it carries;
//! * combined: additive `(1−λ)·Escore + λ·Nscore` or multiplicative
//!   `Escore · Nscore^λ`.

use crate::answer::ConnectionTree;
use crate::config::{CombineMode, EdgeScoreMode, NodeScoreMode, ScoreParams};
use banks_graph::{Graph, NodeId};

/// A relevance scorer bound to one graph (for its normalizers).
#[derive(Debug, Clone)]
pub struct Scorer<'g> {
    graph: &'g Graph,
    params: ScoreParams,
    w_min_edge: f64,
    w_max_node: f64,
}

impl<'g> Scorer<'g> {
    /// Create a scorer over `graph` with the given parameters.
    pub fn new(graph: &'g Graph, params: ScoreParams) -> Scorer<'g> {
        Scorer {
            graph,
            params,
            w_min_edge: graph.min_edge_weight(),
            w_max_node: graph.max_node_weight(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// Normalized score of one edge weight.
    pub fn edge_score(&self, weight: f64) -> f64 {
        if !self.w_min_edge.is_finite() || self.w_min_edge <= 0.0 {
            return 0.0;
        }
        let scaled = weight / self.w_min_edge;
        match self.params.edge_score {
            EdgeScoreMode::Linear => scaled,
            EdgeScoreMode::Log => (1.0 + scaled).log2(),
        }
    }

    /// Overall edge score of a tree: `1/(1+Σ)`; 1.0 for edgeless trees.
    ///
    /// In log mode the per-edge term is read from the graph's
    /// precomputed score array ([`Graph::log_edge_score`]) instead of
    /// recomputing the `log2` — the hot path of cross-product-heavy
    /// queries, where every generated tree re-scores its edges. The
    /// lookup validates the weight bits and falls back to computing, so
    /// the result is bit-identical either way (trees whose edges came
    /// from the search kernel carry exact CSR weights and always hit).
    pub fn tree_edge_score(&self, tree: &ConnectionTree) -> f64 {
        let sum: f64 = match self.params.edge_score {
            EdgeScoreMode::Log => tree
                .edges
                .iter()
                .map(|&(f, t, w)| {
                    self.graph
                        .log_edge_score(f, t, w)
                        .unwrap_or_else(|| self.edge_score(w))
                })
                .sum(),
            EdgeScoreMode::Linear => tree.edges.iter().map(|e| self.edge_score(e.2)).sum(),
        };
        1.0 / (1.0 + sum)
    }

    /// Normalized prestige score of one node, in `[0,1]`.
    pub fn node_score(&self, node: NodeId) -> f64 {
        if self.w_max_node <= 0.0 {
            return 0.0;
        }
        let w = self.graph.node_weight(node);
        match self.params.node_score {
            NodeScoreMode::Linear => (w / self.w_max_node).clamp(0.0, 1.0),
            NodeScoreMode::Log => {
                ((1.0 + w).log2() / (1.0 + self.w_max_node).log2()).clamp(0.0, 1.0)
            }
        }
    }

    /// Overall node score: average over the root and the keyword leaves,
    /// with keyword multiplicity ("a node containing multiple search terms
    /// is counted as many times as the number of search terms it
    /// contains"). The root contributes once unless it is itself one of
    /// the keyword nodes (then its term contributions already cover it).
    pub fn tree_node_score(&self, tree: &ConnectionTree) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for &leaf in &tree.keyword_nodes {
            total += self.node_score(leaf);
            count += 1;
        }
        if !tree.keyword_nodes.contains(&tree.root) {
            total += self.node_score(tree.root);
            count += 1;
        }
        if count == 0 {
            return 0.0;
        }
        total / count as f64
    }

    /// Upper bound on the relevance of *any* connection tree whose total
    /// edge weight is at least `min_weight` and whose node score is at
    /// most `max_node_score` — the early-termination bound of the search
    /// kernel (pass `max_node_score = 1.0` when nothing tighter is known).
    ///
    /// Soundness: (1) both node-score modes clamp to `[0,1]`, so any
    /// honest `max_node_score` cap applies; (2) for a tree of weight
    /// `W ≥ min_weight`, the per-edge score sum satisfies
    /// `Σᵢ e(wᵢ) ≥ e(Σᵢ wᵢ) = e(W) ≥ e(min_weight)` — exactly additive in
    /// linear mode, and superadditive in log mode since
    /// `Π(1+aᵢ) ≥ 1+Σaᵢ` for non-negative `aᵢ` — so
    /// `Escore = 1/(1+Σ) ≤ 1/(1+e(min_weight))`; (3) both combination
    /// modes are monotone in `Escore` and `Nscore`. On an edgeless graph
    /// `edge_score` degenerates to 0 and the bound to 1, which simply
    /// never terminates early.
    pub fn max_relevance_for_weight(&self, min_weight: f64, max_node_score: f64) -> f64 {
        let e = 1.0 / (1.0 + self.edge_score(min_weight));
        let n = max_node_score.clamp(0.0, 1.0);
        let lambda = self.params.lambda;
        match self.params.combine {
            CombineMode::Additive => (1.0 - lambda) * e + lambda * n,
            CombineMode::Multiplicative => e.powf(1.0 - lambda) * n.powf(lambda),
        }
    }

    /// Upper bound on the node score ([`Scorer::tree_node_score`]) of any
    /// tree whose per-term keyword leaves are drawn from `keyword_sets`.
    ///
    /// `tree_node_score` averages the `k` per-term leaf scores plus the
    /// root's (the root is skipped when it is itself a keyword node).
    /// With `Mⱼ = max_{v ∈ Sⱼ} ns(v)` and an arbitrary root bounded by 1:
    /// root counted → `N ≤ (ΣMⱼ + 1)/(k+1)`; root a keyword node →
    /// `N ≤ ΣMⱼ/k ≤ (ΣMⱼ + 1)/(k+1)` (since every `Mⱼ ≤ 1`). So the
    /// first form dominates both cases.
    pub fn max_node_score_for_sets(&self, keyword_sets: &[Vec<NodeId>]) -> f64 {
        let k = keyword_sets.len();
        if k == 0 {
            return 1.0;
        }
        let sum: f64 = keyword_sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&n| self.node_score(n))
                    .fold(0.0f64, f64::max)
            })
            .sum();
        ((sum + 1.0) / (k as f64 + 1.0)).min(1.0)
    }

    /// Overall relevance of a tree, combining edge and node scores.
    pub fn relevance(&self, tree: &ConnectionTree) -> f64 {
        let e = self.tree_edge_score(tree);
        let n = self.tree_node_score(tree);
        let lambda = self.params.lambda;
        match self.params.combine {
            CombineMode::Additive => (1.0 - lambda) * e + lambda * n,
            // Geometric counterpart of the additive blend: λ shifts
            // weight from edge score to node score in both modes, which
            // is what lets the paper observe that the combination mode
            // "has almost no impact on the ranking".
            CombineMode::Multiplicative => e.powf(1.0 - lambda) * n.powf(lambda),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphBuilder;
    use proptest::prelude::*;

    /// Star graph: hub node 0 (weight 10) with 3 leaves (weights 0, 5, 10),
    /// edges hub→leaf of weights 1, 2, 4.
    fn star() -> Graph {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(10.0);
        let l1 = b.add_node(0.0);
        let l2 = b.add_node(5.0);
        let l3 = b.add_node(10.0);
        b.add_edge(hub, l1, 1.0);
        b.add_edge(hub, l2, 2.0);
        b.add_edge(hub, l3, 4.0);
        b.build()
    }

    fn tree_two_leaves() -> ConnectionTree {
        ConnectionTree::new(
            NodeId(0),
            vec![NodeId(1), NodeId(2)],
            vec![(NodeId(0), NodeId(1), 1.0), (NodeId(0), NodeId(2), 2.0)],
        )
    }

    #[test]
    fn edge_score_linear_and_log() {
        let g = star();
        let lin = Scorer::new(
            &g,
            ScoreParams {
                edge_score: EdgeScoreMode::Linear,
                ..ScoreParams::default()
            },
        );
        assert_eq!(lin.edge_score(1.0), 1.0, "w_min is 1");
        assert_eq!(lin.edge_score(4.0), 4.0);
        let log = Scorer::new(
            &g,
            ScoreParams {
                edge_score: EdgeScoreMode::Log,
                ..ScoreParams::default()
            },
        );
        assert_eq!(log.edge_score(1.0), 1.0, "log2(1+1) = 1");
        assert!(log.edge_score(4.0) < lin.edge_score(4.0), "log compresses");
    }

    #[test]
    fn tree_edge_score_decreases_with_size() {
        let g = star();
        let s = Scorer::new(&g, ScoreParams::default());
        let small = ConnectionTree::new(
            NodeId(0),
            vec![NodeId(1)],
            vec![(NodeId(0), NodeId(1), 1.0)],
        );
        let big = tree_two_leaves();
        assert!(s.tree_edge_score(&small) > s.tree_edge_score(&big));
        let single = ConnectionTree::new(NodeId(1), vec![NodeId(1)], vec![]);
        assert_eq!(s.tree_edge_score(&single), 1.0);
    }

    #[test]
    fn node_score_normalized_to_max() {
        let g = star();
        let s = Scorer::new(
            &g,
            ScoreParams {
                node_score: NodeScoreMode::Linear,
                ..ScoreParams::default()
            },
        );
        assert_eq!(s.node_score(NodeId(0)), 1.0);
        assert_eq!(s.node_score(NodeId(1)), 0.0);
        assert_eq!(s.node_score(NodeId(2)), 0.5);
        let slog = Scorer::new(
            &g,
            ScoreParams {
                node_score: NodeScoreMode::Log,
                ..ScoreParams::default()
            },
        );
        assert_eq!(slog.node_score(NodeId(0)), 1.0);
        assert!(slog.node_score(NodeId(2)) > 0.5, "log lifts mid weights");
    }

    #[test]
    fn tree_node_score_averages_root_and_leaves() {
        let g = star();
        let s = Scorer::new(
            &g,
            ScoreParams {
                node_score: NodeScoreMode::Linear,
                ..ScoreParams::default()
            },
        );
        // leaves 1 (0.0) and 2 (0.5) + root 0 (1.0) → avg 0.5
        let t = tree_two_leaves();
        assert!((s.tree_node_score(&t) - 0.5).abs() < 1e-12);
        // A keyword node matching both terms counts twice: leaves (2,2)
        // plus root 0 → (0.5 + 0.5 + 1.0)/3
        let t2 = ConnectionTree::new(
            NodeId(0),
            vec![NodeId(2), NodeId(2)],
            vec![(NodeId(0), NodeId(2), 2.0)],
        );
        assert!((s.tree_node_score(&t2) - 2.0 / 3.0).abs() < 1e-12);
        // Root that is itself a keyword node is not double counted.
        let t3 = ConnectionTree::new(NodeId(0), vec![NodeId(0), NodeId(0)], vec![]);
        assert!((s.tree_node_score(&t3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_extremes() {
        let g = star();
        let t = tree_two_leaves();
        let edge_only = Scorer::new(
            &g,
            ScoreParams {
                lambda: 0.0,
                combine: CombineMode::Additive,
                edge_score: EdgeScoreMode::Linear,
                node_score: NodeScoreMode::Linear,
            },
        );
        assert!((edge_only.relevance(&t) - edge_only.tree_edge_score(&t)).abs() < 1e-12);
        let node_only = Scorer::new(
            &g,
            ScoreParams {
                lambda: 1.0,
                combine: CombineMode::Additive,
                edge_score: EdgeScoreMode::Linear,
                node_score: NodeScoreMode::Linear,
            },
        );
        assert!((node_only.relevance(&t) - node_only.tree_node_score(&t)).abs() < 1e-12);
    }

    #[test]
    fn multiplicative_combination() {
        let g = star();
        let t = tree_two_leaves();
        let s = Scorer::new(
            &g,
            ScoreParams {
                lambda: 0.5,
                combine: CombineMode::Multiplicative,
                edge_score: EdgeScoreMode::Linear,
                node_score: NodeScoreMode::Linear,
            },
        );
        let expect = s.tree_edge_score(&t).powf(0.5) * s.tree_node_score(&t).powf(0.5);
        assert!((s.relevance(&t) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_degenerates_gracefully() {
        let g = GraphBuilder::new().build();
        let s = Scorer::new(&g, ScoreParams::default());
        assert_eq!(s.edge_score(1.0), 0.0);
    }

    proptest! {
        /// Relevance stays in [0,1] for additive combination over valid λ.
        #[test]
        fn additive_relevance_bounded(
            lambda in 0.0f64..=1.0,
            weights in proptest::collection::vec(1.0f64..100.0, 1..8),
            edge_log in proptest::bool::ANY,
            node_log in proptest::bool::ANY,
        ) {
            let mut b = GraphBuilder::new();
            let root = b.add_node(3.0);
            let mut edges = Vec::new();
            let mut leaves = Vec::new();
            for w in &weights {
                let leaf = b.add_node(*w % 7.0);
                edges.push((root, leaf, *w));
                b.add_edge(root, leaf, *w);
                leaves.push(leaf);
            }
            let g = b.build();
            let s = Scorer::new(&g, ScoreParams {
                lambda,
                combine: CombineMode::Additive,
                edge_score: if edge_log { EdgeScoreMode::Log } else { EdgeScoreMode::Linear },
                node_score: if node_log { NodeScoreMode::Log } else { NodeScoreMode::Linear },
            });
            let t = ConnectionTree::new(root, leaves, edges);
            let r = s.relevance(&t);
            prop_assert!((0.0..=1.0).contains(&r), "relevance {r}");
        }

        /// The early-termination bound dominates the true relevance of
        /// every tree at least as heavy as the bound's weight argument.
        #[test]
        fn max_relevance_bound_is_sound(
            lambda in 0.0f64..=1.0,
            weights in proptest::collection::vec(1.0f64..100.0, 1..8),
            node_weights in proptest::collection::vec(0.0f64..20.0, 1..8),
            edge_log in proptest::bool::ANY,
            node_log in proptest::bool::ANY,
            multiplicative in proptest::bool::ANY,
            slack in 0.0f64..5.0,
        ) {
            let mut b = GraphBuilder::new();
            let root = b.add_node(3.0);
            let mut edges = Vec::new();
            let mut leaves = Vec::new();
            for (i, w) in weights.iter().enumerate() {
                let leaf = b.add_node(node_weights[i % node_weights.len()]);
                edges.push((root, leaf, *w));
                b.add_edge(root, leaf, *w);
                leaves.push(leaf);
            }
            let g = b.build();
            let s = Scorer::new(&g, ScoreParams {
                lambda,
                combine: if multiplicative { CombineMode::Multiplicative } else { CombineMode::Additive },
                edge_score: if edge_log { EdgeScoreMode::Log } else { EdgeScoreMode::Linear },
                node_score: if node_log { NodeScoreMode::Log } else { NodeScoreMode::Linear },
            });
            let t = ConnectionTree::new(root, leaves.clone(), edges);
            let r = s.relevance(&t);
            // Bound at the exact weight, and at any smaller weight.
            prop_assert!(r <= s.max_relevance_for_weight(t.weight, 1.0) + 1e-12);
            prop_assert!(r <= s.max_relevance_for_weight((t.weight - slack).max(0.0), 1.0) + 1e-12);
            // The keyword-set node-score cap is honest too: treat each
            // leaf as its own single-node keyword set.
            let sets: Vec<Vec<NodeId>> = leaves.iter().map(|&l| vec![l]).collect();
            let n_cap = s.max_node_score_for_sets(&sets);
            prop_assert!(s.tree_node_score(&t) <= n_cap + 1e-12);
            prop_assert!(r <= s.max_relevance_for_weight((t.weight - slack).max(0.0), n_cap) + 1e-12);
        }

        /// Adding an edge never increases the edge score.
        #[test]
        fn edge_score_monotone_in_tree_size(
            weights in proptest::collection::vec(1.0f64..50.0, 2..8),
        ) {
            let mut b = GraphBuilder::new();
            let root = b.add_node(1.0);
            let mut all_edges = Vec::new();
            let mut leaves = Vec::new();
            for w in &weights {
                let leaf = b.add_node(1.0);
                b.add_edge(root, leaf, *w);
                all_edges.push((root, leaf, *w));
                leaves.push(leaf);
            }
            let g = b.build();
            let s = Scorer::new(&g, ScoreParams::default());
            for k in 1..all_edges.len() {
                let smaller = ConnectionTree::new(root, leaves[..k].to_vec(), all_edges[..k].to_vec());
                let larger = ConnectionTree::new(root, leaves[..k + 1].to_vec(), all_edges[..k + 1].to_vec());
                prop_assert!(s.tree_edge_score(&smaller) >= s.tree_edge_score(&larger));
            }
        }
    }
}
