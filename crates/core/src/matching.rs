//! Locating keyword nodes: for each search term `t_i`, compute the set
//! `S_i` of graph nodes relevant to it (§2.3).
//!
//! A node is relevant to a term if the term occurs as a token of a textual
//! attribute value (data match, via the inverted index) or matches
//! metadata: a relation name (every tuple of the relation is relevant) or
//! a column name (every tuple with a non-NULL value in that column).
//! Extensions: attribute-qualified terms, `approx(n)` numeric proximity,
//! and edit-distance-1 approximate token matching.

use crate::config::MatchConfig;
use crate::error::{BanksError, BanksResult};
use crate::graph_build::TupleGraph;
use crate::query::{Query, Term};
use banks_graph::{FxHashMap, FxHashSet, NodeId};
use banks_storage::{ColumnType, Database, MetadataIndex, MetadataTarget, TextIndex};

/// Where a term's matches came from — reported for diagnostics and used by
/// the forward-search heuristic to pick selective terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Matched attribute values through the inverted index.
    Data,
    /// Matched relation/column names.
    Metadata,
    /// Matched both data and metadata.
    Mixed,
    /// Matched via an approximate mechanism (edit distance / numeric).
    Approximate,
}

/// The match set of one term.
#[derive(Debug, Clone)]
pub struct TermMatch {
    /// The term, rendered.
    pub term: String,
    /// Matching nodes, deduplicated, in node-id order.
    pub nodes: Vec<NodeId>,
    /// Node relevances below 1.0 (§2.3's node-relevance extension):
    /// populated only for nodes matched approximately — by edit distance
    /// (`MatchConfig::approx_penalty`) or by numeric distance within an
    /// `approx(n)` window. Absent nodes match exactly (relevance 1.0).
    pub relevances: FxHashMap<u32, f64>,
    /// Provenance of the matches.
    pub kind: MatchKind,
}

impl TermMatch {
    /// Match relevance of one node of this term's set.
    pub fn relevance(&self, node: NodeId) -> f64 {
        self.relevances.get(&node.0).copied().unwrap_or(1.0)
    }
}

/// Match every term of `query`, producing one [`TermMatch`] per term.
///
/// Terms with empty match sets are an error unless
/// [`MatchConfig::allow_missing_terms`] is set, in which case they are
/// dropped (§2.3's relaxation). An error is also returned if *no* term
/// matches anything.
pub fn match_query(
    db: &Database,
    text_index: &TextIndex,
    metadata_index: &MetadataIndex,
    tuple_graph: &TupleGraph,
    query: &Query,
    config: &MatchConfig,
) -> BanksResult<Vec<TermMatch>> {
    let mut out = Vec::with_capacity(query.terms.len());
    for term in &query.terms {
        let m = match_term(db, text_index, metadata_index, tuple_graph, term, config);
        if m.nodes.is_empty() && !config.allow_missing_terms {
            return Ok(vec![TermMatch {
                term: term.to_string(),
                nodes: Vec::new(),
                relevances: FxHashMap::default(),
                kind: m.kind,
            }]);
        }
        if !m.nodes.is_empty() {
            out.push(m);
        }
    }
    if out.is_empty() {
        return Err(BanksError::EmptyQuery);
    }
    Ok(out)
}

fn match_term(
    db: &Database,
    text_index: &TextIndex,
    metadata_index: &MetadataIndex,
    tuple_graph: &TupleGraph,
    term: &Term,
    config: &MatchConfig,
) -> TermMatch {
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut relevances: FxHashMap<u32, f64> = FxHashMap::default();
    let mut kind = MatchKind::Data;
    match term {
        Term::Keyword(word) => {
            let mut data_hits = 0usize;
            for rid in text_index.lookup_rids(word) {
                if let Some(n) = tuple_graph.node(rid) {
                    nodes.insert(n);
                    data_hits += 1;
                }
            }
            let mut meta_hits = 0usize;
            if config.match_metadata {
                meta_hits = add_metadata_matches(db, metadata_index, tuple_graph, word, &mut nodes);
            }
            if config.approximate {
                let mut approx_nodes: FxHashSet<NodeId> = FxHashSet::default();
                let approx =
                    add_edit_distance_matches(text_index, tuple_graph, word, &mut approx_nodes);
                for n in approx_nodes {
                    // Nodes matched only approximately carry the penalty.
                    if nodes.insert(n) {
                        relevances.insert(n.0, config.approx_penalty);
                    }
                }
                if approx > 0 && data_hits == 0 && meta_hits == 0 {
                    kind = MatchKind::Approximate;
                }
            }
            kind = match (data_hits > 0, meta_hits > 0) {
                (true, true) => MatchKind::Mixed,
                (false, true) => MatchKind::Metadata,
                _ => kind,
            };
        }
        Term::Qualified { attribute, keyword } => {
            for (rel, col) in metadata_index.resolve_attribute(db, attribute) {
                for rid in text_index.lookup_in_column(keyword, rel, col) {
                    if let Some(n) = tuple_graph.node(rid) {
                        nodes.insert(n);
                    }
                }
            }
        }
        Term::Approx(n) => {
            kind = MatchKind::Approximate;
            add_numeric_matches(
                db,
                text_index,
                tuple_graph,
                *n,
                config.approx_window,
                &mut nodes,
                &mut relevances,
            );
        }
    }
    let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
    nodes.sort_unstable();
    TermMatch {
        term: term.to_string(),
        nodes,
        relevances,
        kind,
    }
}

/// Relation-name and column-name matches (§2.3 metadata matching).
fn add_metadata_matches(
    db: &Database,
    metadata_index: &MetadataIndex,
    tuple_graph: &TupleGraph,
    word: &str,
    nodes: &mut FxHashSet<NodeId>,
) -> usize {
    let mut hits = 0usize;
    for target in metadata_index.lookup(word) {
        match *target {
            MetadataTarget::Relation(rel) => {
                for (rid, _) in db.table(rel).scan() {
                    if let Some(n) = tuple_graph.node(rid) {
                        nodes.insert(n);
                        hits += 1;
                    }
                }
            }
            MetadataTarget::Column(rel, col) => {
                for (rid, tuple) in db.table(rel).scan() {
                    if !tuple.values()[col as usize].is_null() {
                        if let Some(n) = tuple_graph.node(rid) {
                            nodes.insert(n);
                            hits += 1;
                        }
                    }
                }
            }
        }
    }
    hits
}

/// Edit-distance ≤ 1 approximate token matching (a §7 planned feature).
fn add_edit_distance_matches(
    text_index: &TextIndex,
    tuple_graph: &TupleGraph,
    word: &str,
    nodes: &mut FxHashSet<NodeId>,
) -> usize {
    let mut hits = 0usize;
    let candidates: Vec<String> = text_index
        .tokens()
        .filter(|t| *t != word && within_edit_distance_one(word, t))
        .map(|t| t.to_string())
        .collect();
    for token in candidates {
        for rid in text_index.lookup_rids(&token) {
            if let Some(n) = tuple_graph.node(rid) {
                nodes.insert(n);
                hits += 1;
            }
        }
    }
    hits
}

/// `approx(n)`: integer columns within the window, plus text tokens that
/// parse to integers within the window (years in titles etc.). The match
/// relevance decays linearly with numeric distance:
/// `1 − |v − n| / (window + 1)` — an exact hit scores 1.
#[allow(clippy::too_many_arguments)]
fn add_numeric_matches(
    db: &Database,
    text_index: &TextIndex,
    tuple_graph: &TupleGraph,
    n: i64,
    window: i64,
    nodes: &mut FxHashSet<NodeId>,
    relevances: &mut FxHashMap<u32, f64>,
) {
    let record = |node: NodeId, dist: i64, relevances: &mut FxHashMap<u32, f64>| {
        let relevance = 1.0 - dist as f64 / (window + 1) as f64;
        match relevances.get(&node.0) {
            Some(&existing) if existing >= relevance => {}
            _ => {
                if dist > 0 {
                    relevances.insert(node.0, relevance);
                } else {
                    relevances.remove(&node.0);
                }
            }
        }
    };
    for table in db.relations() {
        let int_cols: Vec<usize> = table
            .schema()
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.ty, ColumnType::Int))
            .map(|(i, _)| i)
            .collect();
        if int_cols.is_empty() {
            continue;
        }
        for (rid, tuple) in table.scan() {
            for &c in &int_cols {
                if let Some(v) = tuple.values()[c].as_int() {
                    if (v - n).abs() <= window {
                        if let Some(node) = tuple_graph.node(rid) {
                            nodes.insert(node);
                            record(node, (v - n).abs(), relevances);
                        }
                    }
                }
            }
        }
    }
    let numeric_tokens: Vec<(String, i64)> = text_index
        .tokens()
        .filter_map(|t| {
            t.parse::<i64>()
                .ok()
                .filter(|v| (v - n).abs() <= window)
                .map(|v| (t.to_string(), (v - n).abs()))
        })
        .collect();
    for (token, dist) in numeric_tokens {
        for rid in text_index.lookup_rids(&token) {
            if let Some(node) = tuple_graph.node(rid) {
                nodes.insert(node);
                record(node, dist, relevances);
            }
        }
    }
}

/// Levenshtein distance ≤ 1 without building the DP table.
fn within_edit_distance_one(a: &str, b: &str) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    match long.len() - short.len() {
        0 => {
            // substitution
            let diffs = short
                .iter()
                .zip(long.iter())
                .filter(|(x, y)| x != y)
                .count();
            diffs <= 1
        }
        1 => {
            // insertion into `short`
            let mut i = 0;
            let mut j = 0;
            let mut skipped = false;
            while i < short.len() && j < long.len() {
                if short[i] == long[j] {
                    i += 1;
                    j += 1;
                } else if skipped {
                    return false;
                } else {
                    skipped = true;
                    j += 1;
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;
    use banks_storage::{RelationSchema, Tokenizer, Value};

    struct Fixture {
        db: Database,
        text: TextIndex,
        meta: MetadataIndex,
        tg: TupleGraph,
    }

    fn fixture() -> Fixture {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .nullable_column("Year", ColumnType::Int)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Author", vec![Value::text("a1"), Value::text("Alon Levy")])
            .unwrap();
        db.insert(
            "Author",
            vec![Value::text("a2"), Value::text("Levy Morrison")],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![
                Value::text("p1"),
                Value::text("Concurrency Control Methods"),
                Value::Int(1987),
            ],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![
                Value::text("p2"),
                Value::text("Levy flights in databases 1988"),
                Value::Int(1995),
            ],
        )
        .unwrap();
        let tokenizer = Tokenizer::new();
        let text = TextIndex::build(&db, &tokenizer);
        let meta = MetadataIndex::build(&db, &tokenizer);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        Fixture { db, text, meta, tg }
    }

    fn run(f: &Fixture, q: &str, cfg: &MatchConfig) -> Vec<TermMatch> {
        let query = Query::parse(q, &Tokenizer::new()).unwrap();
        match_query(&f.db, &f.text, &f.meta, &f.tg, &query, cfg).unwrap()
    }

    #[test]
    fn data_match_by_token() {
        let f = fixture();
        let cfg = MatchConfig {
            match_metadata: false,
            ..MatchConfig::default()
        };
        let m = run(&f, "levy", &cfg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].nodes.len(), 3, "two authors + one paper title");
        assert_eq!(m[0].kind, MatchKind::Data);
    }

    #[test]
    fn metadata_match_covers_relation() {
        let f = fixture();
        let m = run(&f, "author", &MatchConfig::default());
        // All Author tuples (2), via relation-name and column-name matches.
        assert!(m[0].nodes.len() >= 2);
        assert!(matches!(m[0].kind, MatchKind::Metadata | MatchKind::Mixed));
    }

    #[test]
    fn metadata_disabled_gives_no_author_match() {
        let f = fixture();
        let cfg = MatchConfig {
            match_metadata: false,
            ..MatchConfig::default()
        };
        let query = Query::parse("author", &Tokenizer::new()).unwrap();
        let m = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &cfg).unwrap();
        assert!(m[0].nodes.is_empty());
    }

    #[test]
    fn qualified_term_restricts_column() {
        let f = fixture();
        let m = run(&f, "AuthorName:levy", &MatchConfig::default());
        assert_eq!(
            m[0].nodes.len(),
            2,
            "only author-name matches, not the paper"
        );
        let m = run(&f, "Paper.PaperName:levy", &MatchConfig::default());
        assert_eq!(m[0].nodes.len(), 1);
    }

    #[test]
    fn approx_numeric_matches_int_columns_and_text_years() {
        let f = fixture();
        let m = run(&f, "approx(1988)", &MatchConfig::default());
        // p1 (year 1987 within window 2) and p2 (token "1988" in title).
        assert_eq!(m[0].nodes.len(), 2);
        assert_eq!(m[0].kind, MatchKind::Approximate);
        // tight window excludes p1's int column but "1988" token stays
        let cfg = MatchConfig {
            approx_window: 0,
            ..MatchConfig::default()
        };
        let m = run(&f, "approx(1988)", &cfg);
        assert_eq!(m[0].nodes.len(), 1);
    }

    #[test]
    fn edit_distance_matching_optional() {
        let f = fixture();
        let strict = MatchConfig {
            match_metadata: false,
            ..MatchConfig::default()
        };
        let query = Query::parse("levi", &Tokenizer::new()).unwrap();
        let m = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &strict).unwrap();
        assert!(m[0].nodes.is_empty());

        let fuzzy = MatchConfig {
            match_metadata: false,
            approximate: true,
            ..MatchConfig::default()
        };
        let m = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &fuzzy).unwrap();
        assert_eq!(m[0].nodes.len(), 3, "levi ~ levy");
        assert_eq!(m[0].kind, MatchKind::Approximate);
    }

    #[test]
    fn missing_term_behaviour() {
        let f = fixture();
        // Default: a no-match term short-circuits with an empty set.
        let m = run(&f, "levy zzzzz", &MatchConfig::default());
        assert_eq!(m.len(), 1);
        assert!(m[0].nodes.is_empty());
        // Relaxed: the missing term is dropped.
        let cfg = MatchConfig {
            allow_missing_terms: true,
            ..MatchConfig::default()
        };
        let m = run(&f, "levy zzzzz", &cfg);
        assert_eq!(m.len(), 1);
        assert!(!m[0].nodes.is_empty());
    }

    #[test]
    fn all_terms_missing_is_error() {
        let f = fixture();
        let cfg = MatchConfig {
            allow_missing_terms: true,
            ..MatchConfig::default()
        };
        let query = Query::parse("zzzzz qqqqq", &Tokenizer::new()).unwrap();
        let err = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &cfg).unwrap_err();
        assert_eq!(err, BanksError::EmptyQuery);
    }

    #[test]
    fn approximate_matches_carry_penalized_relevance() {
        let f = fixture();
        let fuzzy = MatchConfig {
            match_metadata: false,
            approximate: true,
            ..MatchConfig::default()
        };
        // "levy" matches exactly in three tuples; nothing approximate is
        // added on top, so all relevances stay 1.0.
        let query = Query::parse("levy", &Tokenizer::new()).unwrap();
        let m = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &fuzzy).unwrap();
        assert!(m[0].relevances.is_empty());
        for &n in &m[0].nodes {
            assert_eq!(m[0].relevance(n), 1.0);
        }
        // "levi" only matches via edit distance: every node is penalized.
        let query = Query::parse("levi", &Tokenizer::new()).unwrap();
        let m = match_query(&f.db, &f.text, &f.meta, &f.tg, &query, &fuzzy).unwrap();
        assert!(!m[0].nodes.is_empty());
        for &n in &m[0].nodes {
            assert_eq!(m[0].relevance(n), 0.5);
        }
    }

    #[test]
    fn numeric_approx_relevance_decays_with_distance() {
        let f = fixture();
        let m = run(&f, "approx(1988)", &MatchConfig::default());
        // p2 carries the exact token "1988" (distance 0 → relevance 1);
        // p1's Year column holds 1987 (distance 1 → 1 − 1/3).
        let p1 =
            f.tg.node(
                f.db.relation("Paper")
                    .unwrap()
                    .lookup_pk(&[banks_storage::Value::text("p1")])
                    .unwrap(),
            )
            .unwrap();
        let p2 =
            f.tg.node(
                f.db.relation("Paper")
                    .unwrap()
                    .lookup_pk(&[banks_storage::Value::text("p2")])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(m[0].relevance(p2), 1.0);
        assert!((m[0].relevance(p1) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn edit_distance_helper() {
        assert!(within_edit_distance_one("levy", "levy"));
        assert!(within_edit_distance_one("levy", "levi"));
        assert!(within_edit_distance_one("levy", "evy"));
        assert!(within_edit_distance_one("levy", "levys"));
        assert!(!within_edit_distance_one("levy", "lefi"));
        assert!(!within_edit_distance_one("levy", "levying"));
        assert!(within_edit_distance_one("", "a"));
        assert!(!within_edit_distance_one("", "ab"));
    }
}
