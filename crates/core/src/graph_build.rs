//! Building the BANKS data graph from a relational database (§2.2).
//!
//! * one node per tuple, with prestige weight (indegree by default);
//! * for each foreign-key link `r → t` (tuple `r` references tuple `t`):
//!   - a **forward** edge `(r, t)` with weight `s(R(r), R(t))` — the link
//!     type's similarity, default 1;
//!   - a **backward** edge `(t, r)` with weight
//!     `s(R(r), R(t)) · IN_{R(r)}(t)`, where `IN_{R(r)}(t)` is the number
//!     of tuples of `r`'s relation referencing `t`. This is the paper's
//!     hub-damping: a department with many students yields heavy backward
//!     edges, lowering the spurious proximity between its students.
//! * when both directions receive a contribution for the same ordered node
//!   pair, the minimum wins (equation 1; [`banks_graph::GraphBuilder`]
//!   coalesces duplicates by minimum).

use crate::config::{GraphConfig, NodeWeightMode};
use crate::prestige;
use banks_graph::{FxHashMap, Graph, GraphBuilder, NodeId};
use banks_storage::{Database, Rid, StorageResult};

/// The BANKS data graph plus the bijection between graph nodes and tuples.
#[derive(Debug, Clone)]
pub struct TupleGraph {
    graph: Graph,
    node_rids: Vec<Rid>,
    rid_nodes: FxHashMap<Rid, NodeId>,
    /// `relation_of[node]` = relation id of the node's tuple, kept dense
    /// for fast root-exclusion checks during search.
    relation_of: Vec<u32>,
}

impl TupleGraph {
    /// One node per tuple, in deterministic relations-scan order. This
    /// ordering is the contract that lets [`TupleGraph::rebind`] attach
    /// a snapshot graph to a freshly loaded database: both paths derive
    /// their maps from this single function.
    ///
    /// Walks liveness only (`live_slots`), never tuple values — on a
    /// lazily-opened database this costs zero block decodes, which is
    /// what keeps a paged bundle open independent of tuple count.
    fn rid_maps(db: &Database) -> (Vec<Rid>, FxHashMap<Rid, NodeId>, Vec<u32>) {
        let n = db.total_tuples();
        let mut node_rids = Vec::with_capacity(n);
        let mut rid_nodes = FxHashMap::default();
        rid_nodes.reserve(n);
        let mut relation_of = Vec::with_capacity(n);
        for table in db.relations() {
            let id = table.id();
            for slot in table.live_slots() {
                let rid = Rid::new(id, slot);
                let node = NodeId(node_rids.len() as u32);
                node_rids.push(rid);
                rid_nodes.insert(rid, node);
                relation_of.push(rid.relation.0);
            }
        }
        (node_rids, rid_nodes, relation_of)
    }

    /// Build the data graph for `db` under `config`.
    pub fn build(db: &Database, config: &GraphConfig) -> StorageResult<TupleGraph> {
        let (node_rids, rid_nodes, relation_of) = Self::rid_maps(db);
        let mut builder = GraphBuilder::with_capacity(node_rids.len(), db.link_count() * 2);

        // Pass 1: nodes, with indegree prestige.
        for &rid in &node_rids {
            let weight = match config.node_weight {
                NodeWeightMode::Uniform => 1.0,
                // Authority transfer starts from indegree too; the
                // post-pass below refines it.
                NodeWeightMode::Indegree | NodeWeightMode::AuthorityTransfer { .. } => {
                    db.indegree(rid) as f64
                }
            };
            let node = builder.add_node(weight);
            debug_assert_eq!(Some(&node), rid_nodes.get(&rid));
        }

        // Pass 2: edges.
        for table in db.relations() {
            let schema = table.schema();
            let similarities: Vec<f64> = schema
                .foreign_keys
                .iter()
                .map(|fk| fk.similarity.unwrap_or(config.default_similarity))
                .collect();
            for (rid, _) in table.scan() {
                let from = rid_nodes[&rid];
                for (fk_index, &sim) in similarities.iter().enumerate() {
                    let Some(target) = db.resolve_fk(rid, fk_index)? else {
                        continue;
                    };
                    let to = rid_nodes[&target];
                    // Forward edge r → t.
                    builder.add_edge(from, to, sim);
                    // Backward edge t → r, indegree-scaled per eq. (1).
                    let back = if config.indegree_backward_weights {
                        let fanin = db.indegree_from(target, rid.relation).max(1) as f64;
                        sim * fanin
                    } else {
                        sim
                    };
                    builder.add_edge(to, from, back);
                }
            }
        }

        if let NodeWeightMode::AuthorityTransfer {
            iterations,
            damping,
        } = config.node_weight
        {
            let weights = prestige::authority_transfer(db, &rid_nodes, iterations, damping);
            for (node_idx, w) in weights.into_iter().enumerate() {
                builder.set_node_weight(NodeId(node_idx as u32), w);
            }
        }

        Ok(TupleGraph {
            graph: builder.build(),
            node_rids,
            rid_nodes,
            relation_of,
        })
    }

    /// Re-attach a pre-materialized graph (e.g. restored from a
    /// `banks_graph::snapshot` file) to its database.
    ///
    /// Node order is the deterministic scan order `build` uses, so only
    /// the rid maps need rebuilding — the expensive part of `build`
    /// (foreign-key edge derivation and weighting) is skipped entirely.
    /// Fails with the typed [`StorageError::SnapshotMismatch`] if the
    /// graph's node count doesn't match the tuple count; a mismatch the
    /// count can't see (an edited database with equal cardinality but a
    /// different per-relation layout) is caught by
    /// [`TupleGraph::verify_catalog`], which [`crate::Banks::with_graph`]
    /// runs on every attach.
    ///
    /// [`StorageError::SnapshotMismatch`]: banks_storage::StorageError::SnapshotMismatch
    pub fn rebind(db: &Database, graph: Graph) -> StorageResult<TupleGraph> {
        let n = db.total_tuples();
        if graph.node_count() != n {
            return Err(banks_storage::StorageError::SnapshotMismatch {
                expected: format!("{} nodes", graph.node_count()),
                actual: format!("{n} tuples"),
            });
        }
        let (node_rids, rid_nodes, relation_of) = Self::rid_maps(db);
        Ok(TupleGraph {
            graph,
            node_rids,
            rid_nodes,
            relation_of,
        })
    }

    /// Verify that this tuple graph actually describes `db`: same total
    /// node count, same relation catalog width, same per-relation tuple
    /// counts, and every node's rid resolving to a live tuple of the
    /// expected relation. O(n) over liveness bitmaps — no tuple decodes
    /// on a lazy database — cheap next to an index build, and the
    /// check that stops a same-cardinality-but-different-database
    /// snapshot from being silently accepted.
    pub fn verify_catalog(&self, db: &Database) -> StorageResult<()> {
        use banks_storage::StorageError;
        if self.node_count() != db.total_tuples() {
            return Err(StorageError::SnapshotMismatch {
                expected: format!("{} nodes", self.node_count()),
                actual: format!("{} tuples", db.total_tuples()),
            });
        }
        let relations = db.relation_count();
        let mut per_relation = vec![0usize; relations];
        for &rid in &self.node_rids {
            if rid.relation.index() >= relations {
                return Err(StorageError::SnapshotMismatch {
                    expected: format!("a relation #{}", rid.relation.0),
                    actual: format!("{relations} relations"),
                });
            }
            per_relation[rid.relation.index()] += 1;
            if !db.is_live(rid) {
                return Err(StorageError::SnapshotMismatch {
                    expected: format!("live tuple {rid}"),
                    actual: "no such tuple".to_string(),
                });
            }
        }
        for table in db.relations() {
            let counted = per_relation[table.id().index()];
            if counted != table.len() {
                return Err(StorageError::SnapshotMismatch {
                    expected: format!("{} `{}` tuples", counted, table.schema().name),
                    actual: format!("{}", table.len()),
                });
            }
        }
        Ok(())
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The tuple behind a node.
    pub fn rid(&self, node: NodeId) -> Rid {
        self.node_rids[node.index()]
    }

    /// The node for a tuple, if it was present at build time.
    pub fn node(&self, rid: Rid) -> Option<NodeId> {
        self.rid_nodes.get(&rid).copied()
    }

    /// Relation id of the tuple behind `node` (raw u32 form).
    pub fn relation_of(&self, node: NodeId) -> u32 {
        self.relation_of[node.index()]
    }

    /// Number of nodes (== tuples at build time).
    pub fn node_count(&self) -> usize {
        self.node_rids.len()
    }

    /// Approximate heap footprint: graph arrays plus the rid maps. This is
    /// the figure comparable to the paper's §5.2 "120 MB" measurement.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.graph.memory_bytes()
            + self.node_rids.capacity() * size_of::<Rid>()
            + self.relation_of.capacity() * size_of::<u32>()
            // HashMap entries: key + value + ~1 byte control overhead each.
            + self.rid_nodes.capacity() * (size_of::<(Rid, NodeId)>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, RelationSchema, Value};

    /// A university-style DB exhibiting the hub phenomenon of §2.1: one
    /// department with many students, one with few.
    fn university(big: usize, small: usize) -> Database {
        let mut db = Database::new("uni");
        db.create_relation(
            RelationSchema::builder("Dept")
                .column("Id", ColumnType::Text)
                .column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Student")
                .column("Id", ColumnType::Text)
                .column("Dept", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["Dept"], "Dept")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Dept", vec![Value::text("big"), Value::text("Big Dept")])
            .unwrap();
        db.insert(
            "Dept",
            vec![Value::text("small"), Value::text("Small Dept")],
        )
        .unwrap();
        for i in 0..big {
            db.insert(
                "Student",
                vec![Value::text(format!("b{i}")), Value::text("big")],
            )
            .unwrap();
        }
        for i in 0..small {
            db.insert(
                "Student",
                vec![Value::text(format!("s{i}")), Value::text("small")],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn node_and_edge_counts() {
        let db = university(5, 2);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        assert_eq!(tg.node_count(), 9);
        // 7 links → 14 directed edges.
        assert_eq!(tg.graph().edge_count(), 14);
    }

    #[test]
    fn rid_node_bijection() {
        let db = university(3, 1);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        for table in db.relations() {
            for (rid, _) in table.scan() {
                let node = tg.node(rid).unwrap();
                assert_eq!(tg.rid(node), rid);
                assert_eq!(tg.relation_of(node), rid.relation.0);
            }
        }
    }

    #[test]
    fn forward_weight_is_similarity_backward_scales_with_fanin() {
        let db = university(5, 2);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let g = tg.graph();
        let big = db
            .relation("Dept")
            .unwrap()
            .lookup_pk(&[Value::text("big")])
            .unwrap();
        let small = db
            .relation("Dept")
            .unwrap()
            .lookup_pk(&[Value::text("small")])
            .unwrap();
        let b0 = db
            .relation("Student")
            .unwrap()
            .lookup_pk(&[Value::text("b0")])
            .unwrap();
        let s0 = db
            .relation("Student")
            .unwrap()
            .lookup_pk(&[Value::text("s0")])
            .unwrap();
        let (n_big, n_small) = (tg.node(big).unwrap(), tg.node(small).unwrap());
        let (n_b0, n_s0) = (tg.node(b0).unwrap(), tg.node(s0).unwrap());
        // Forward: student → dept at similarity 1.
        assert_eq!(g.edge_weight(n_b0, n_big), Some(1.0));
        // Backward: dept → student scaled by dept's student fan-in.
        assert_eq!(g.edge_weight(n_big, n_b0), Some(5.0));
        assert_eq!(g.edge_weight(n_small, n_s0), Some(2.0));
    }

    #[test]
    fn node_prestige_is_indegree() {
        let db = university(5, 2);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let big = db
            .relation("Dept")
            .unwrap()
            .lookup_pk(&[Value::text("big")])
            .unwrap();
        let b0 = db
            .relation("Student")
            .unwrap()
            .lookup_pk(&[Value::text("b0")])
            .unwrap();
        assert_eq!(tg.graph().node_weight(tg.node(big).unwrap()), 5.0);
        assert_eq!(tg.graph().node_weight(tg.node(b0).unwrap()), 0.0);
    }

    #[test]
    fn uniform_mode_flattens_prestige() {
        let db = university(5, 2);
        let cfg = GraphConfig {
            node_weight: NodeWeightMode::Uniform,
            ..GraphConfig::default()
        };
        let tg = TupleGraph::build(&db, &cfg).unwrap();
        for node in tg.graph().nodes() {
            assert_eq!(tg.graph().node_weight(node), 1.0);
        }
    }

    #[test]
    fn symmetric_ablation_drops_indegree_scaling() {
        let db = university(5, 2);
        let cfg = GraphConfig {
            indegree_backward_weights: false,
            ..GraphConfig::default()
        };
        let tg = TupleGraph::build(&db, &cfg).unwrap();
        let big = db
            .relation("Dept")
            .unwrap()
            .lookup_pk(&[Value::text("big")])
            .unwrap();
        let b0 = db
            .relation("Student")
            .unwrap()
            .lookup_pk(&[Value::text("b0")])
            .unwrap();
        let g = tg.graph();
        assert_eq!(
            g.edge_weight(tg.node(big).unwrap(), tg.node(b0).unwrap()),
            Some(1.0)
        );
    }

    #[test]
    fn per_fk_similarity_respected() {
        // Cites-style relation with explicit similarity 2.0.
        let mut db = Database::new("bib");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Cites")
                .column("Citing", ColumnType::Text)
                .column("Cited", ColumnType::Text)
                .primary_key(&["Citing", "Cited"])
                .foreign_key_with_similarity(&["Citing"], "Paper", 2.0)
                .foreign_key_with_similarity(&["Cited"], "Paper", 2.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Paper", vec![Value::text("a")]).unwrap();
        db.insert("Paper", vec![Value::text("b")]).unwrap();
        let c = db
            .insert("Cites", vec![Value::text("a"), Value::text("b")])
            .unwrap();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let a = db
            .relation("Paper")
            .unwrap()
            .lookup_pk(&[Value::text("a")])
            .unwrap();
        let g = tg.graph();
        assert_eq!(
            g.edge_weight(tg.node(c).unwrap(), tg.node(a).unwrap()),
            Some(2.0)
        );
        // backward: paper a ← cites c, fan-in 1 → 2.0 × 1.
        assert_eq!(
            g.edge_weight(tg.node(a).unwrap(), tg.node(c).unwrap()),
            Some(2.0)
        );
    }

    #[test]
    fn memory_accounting_positive() {
        let db = university(10, 3);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        assert!(tg.memory_bytes() > 0);
    }
}
