//! Error types for the BANKS core.

use banks_storage::StorageError;
use std::fmt;

/// Result alias for BANKS operations.
pub type BanksResult<T> = Result<T, BanksError>;

/// Errors raised by query parsing and search.
#[derive(Debug, Clone, PartialEq)]
pub enum BanksError {
    /// The underlying storage layer failed.
    Storage(StorageError),
    /// The query contained no search terms after tokenization.
    EmptyQuery,
    /// A query term was malformed (e.g. `approx()` without a number).
    BadTerm {
        /// The raw term text.
        term: String,
        /// Why it failed to parse.
        message: String,
    },
    /// A configuration value was out of range.
    BadConfig(String),
    /// A pre-materialized graph (snapshot restore or incremental patch)
    /// does not describe the database it was attached to.
    SnapshotMismatch {
        /// What the graph claims.
        expected: String,
        /// What the database holds.
        actual: String,
    },
}

impl fmt::Display for BanksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BanksError::Storage(e) => write!(f, "storage error: {e}"),
            BanksError::EmptyQuery => write!(f, "query contains no search terms"),
            BanksError::BadTerm { term, message } => {
                write!(f, "bad query term `{term}`: {message}")
            }
            BanksError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            BanksError::SnapshotMismatch { expected, actual } => write!(
                f,
                "graph does not match the database: graph has {expected}, database has {actual}"
            ),
        }
    }
}

impl std::error::Error for BanksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BanksError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for BanksError {
    fn from(e: StorageError) -> Self {
        match e {
            // Promote to the dedicated variant so callers can match on
            // "stale snapshot" without unwrapping the storage layer.
            StorageError::SnapshotMismatch { expected, actual } => {
                BanksError::SnapshotMismatch { expected, actual }
            }
            e => BanksError::Storage(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BanksError::EmptyQuery;
        assert_eq!(e.to_string(), "query contains no search terms");
        let e: BanksError = StorageError::UnknownRelation("X".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        assert!(std::error::Error::source(&e).is_some());
        let e = BanksError::BadTerm {
            term: "approx()".into(),
            message: "missing number".into(),
        };
        assert!(e.to_string().contains("approx()"));
    }

    #[test]
    fn snapshot_mismatch_promotes_from_storage() {
        let e: BanksError = StorageError::SnapshotMismatch {
            expected: "7 nodes".into(),
            actual: "6 tuples".into(),
        }
        .into();
        assert!(matches!(e, BanksError::SnapshotMismatch { .. }));
        assert!(e.to_string().contains("7 nodes"));
    }
}
