//! Query answers: rooted directed connection trees (§2.1/§2.3).
//!
//! An answer is "a rooted directed tree containing a directed path from the
//! root to each keyword node"; the root is the *information node*. The
//! tree may contain intermediate (Steiner) nodes that match no keyword.
//!
//! Duplicate answers — "isomorphic modulo direction; that is, their
//! undirected versions are same" (§3) — are identified by a canonical
//! [`ConnectionTree::signature`] built from the undirected edge set.

use crate::graph_build::TupleGraph;
use banks_graph::NodeId;
use banks_storage::Database;
use std::collections::BTreeMap;

/// A rooted connection tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionTree {
    /// The information node.
    pub root: NodeId,
    /// Directed edges `(from, to, weight)`, each oriented as it exists in
    /// the graph, forming root→leaf paths. Sorted and deduplicated: paths
    /// to different keyword nodes may share a prefix.
    pub edges: Vec<(NodeId, NodeId, f64)>,
    /// For each query term (in term order), the keyword node the tree
    /// connects for that term. A node may serve several terms.
    pub keyword_nodes: Vec<NodeId>,
    /// Total edge weight (each distinct edge counted once) — the tree
    /// weight of §2.1.
    pub weight: f64,
}

impl ConnectionTree {
    /// Construct a tree from a root, per-term keyword nodes, and the union
    /// of root→keyword path edges. Edges are deduplicated and the weight
    /// recomputed here so callers can pass raw path unions.
    pub fn new(
        root: NodeId,
        keyword_nodes: Vec<NodeId>,
        mut edges: Vec<(NodeId, NodeId, f64)>,
    ) -> ConnectionTree {
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let weight = edges.iter().map(|e| e.2).sum();
        ConnectionTree {
            root,
            edges,
            keyword_nodes,
            weight,
        }
    }

    /// All distinct nodes of the tree (root, keyword nodes, Steiner nodes).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes = vec![self.root];
        nodes.extend(self.keyword_nodes.iter().copied());
        for &(f, t, _) in &self.edges {
            nodes.push(f);
            nodes.push(t);
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Number of distinct children of the root: the §3 rule discards trees
    /// whose root has exactly one child ("the tree formed by removing the
    /// root node would also have been generated, and would be a better
    /// answer").
    pub fn root_child_count(&self) -> usize {
        let mut children: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|e| e.0 == self.root)
            .map(|e| e.1)
            .collect();
        children.sort_unstable();
        children.dedup();
        children.len()
    }

    /// Canonical signature for duplicate detection: the sorted undirected
    /// edge set, or the node set for edgeless trees. "We considered
    /// answers to be the same if their trees were the same, even if the
    /// roots were different" (§5.3).
    pub fn signature(&self) -> TreeSignature {
        if self.edges.is_empty() {
            return TreeSignature::Nodes(self.nodes().iter().map(|n| n.0).collect());
        }
        let mut undirected: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|&(f, t, _)| (f.0.min(t.0), f.0.max(t.0)))
            .collect();
        undirected.sort_unstable();
        undirected.dedup();
        TreeSignature::Edges(undirected)
    }

    /// Schema-level shape signature, used by answer summarization (§7:
    /// "group the output tuples into sets that have the same tree
    /// structure"): the tree with every node replaced by its relation.
    pub fn shape_signature(&self, tuple_graph: &TupleGraph) -> String {
        fn render(
            node: NodeId,
            children: &BTreeMap<u32, Vec<NodeId>>,
            tg: &TupleGraph,
            out: &mut String,
        ) {
            out.push_str(&format!("R{}", tg.relation_of(node)));
            if let Some(kids) = children.get(&node.0) {
                let mut parts: Vec<String> = kids
                    .iter()
                    .map(|k| {
                        let mut s = String::new();
                        render(*k, children, tg, &mut s);
                        s
                    })
                    .collect();
                parts.sort();
                out.push('(');
                out.push_str(&parts.join(","));
                out.push(')');
            }
        }
        let mut children: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for &(f, t, _) in &self.edges {
            children.entry(f.0).or_default().push(t);
        }
        let mut out = String::new();
        render(self.root, &children, tuple_graph, &mut out);
        out
    }

    /// Render the tree as indented text in the style of the paper's
    /// Figure 2: one line per node showing relation and attributes, with
    /// keyword nodes marked `*`.
    pub fn render(&self, db: &Database, tuple_graph: &TupleGraph) -> String {
        let mut children: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for &(f, t, _) in &self.edges {
            children.entry(f.0).or_default().push(t);
        }
        for kids in children.values_mut() {
            kids.sort_unstable();
            kids.dedup();
        }
        let mut out = String::new();
        let mut visited: Vec<u32> = Vec::new();
        self.render_node(
            self.root,
            &children,
            db,
            tuple_graph,
            0,
            &mut visited,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn render_node(
        &self,
        node: NodeId,
        children: &BTreeMap<u32, Vec<NodeId>>,
        db: &Database,
        tuple_graph: &TupleGraph,
        depth: usize,
        visited: &mut Vec<u32>,
        out: &mut String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if self.keyword_nodes.contains(&node) {
            out.push('*');
        }
        let rid = tuple_graph.rid(node);
        match db.describe_tuple(rid) {
            Ok(desc) => out.push_str(&desc),
            Err(_) => out.push_str(&rid.to_string()),
        }
        if visited.contains(&node.0) {
            out.push_str(" (…)\n");
            return;
        }
        visited.push(node.0);
        out.push('\n');
        if let Some(kids) = children.get(&node.0) {
            for &kid in kids {
                self.render_node(kid, children, db, tuple_graph, depth + 1, visited, out);
            }
        }
    }
}

/// Canonical duplicate-detection key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TreeSignature {
    /// Undirected edge set (non-degenerate trees).
    Edges(Vec<(u32, u32)>),
    /// Node set (single-node trees).
    Nodes(Vec<u32>),
}

/// A scored answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The connection tree.
    pub tree: ConnectionTree,
    /// Overall relevance in `[0,1]`, per §2.3.
    pub relevance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn dedup_and_weight() {
        let t = ConnectionTree::new(
            n(0),
            vec![n(2), n(3)],
            vec![
                (n(0), n(1), 1.0),
                (n(1), n(2), 2.0),
                (n(0), n(1), 1.0), // shared prefix duplicated by two paths
                (n(1), n(3), 4.0),
            ],
        );
        assert_eq!(t.edges.len(), 3);
        assert_eq!(t.weight, 7.0);
        assert_eq!(t.nodes(), vec![n(0), n(1), n(2), n(3)]);
        assert_eq!(t.root_child_count(), 1);
    }

    #[test]
    fn signature_ignores_direction_and_root() {
        let a = ConnectionTree::new(
            n(0),
            vec![n(1), n(2)],
            vec![(n(0), n(1), 1.0), (n(0), n(2), 1.0)],
        );
        // Same undirected structure rooted elsewhere with flipped edges.
        let b = ConnectionTree::new(
            n(1),
            vec![n(1), n(2)],
            vec![(n(1), n(0), 3.0), (n(0), n(2), 1.0)],
        );
        assert_eq!(a.signature(), b.signature());
        let c = ConnectionTree::new(
            n(0),
            vec![n(1), n(3)],
            vec![(n(0), n(1), 1.0), (n(0), n(3), 1.0)],
        );
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn single_node_signature_uses_nodes() {
        let a = ConnectionTree::new(n(5), vec![n(5), n(5)], vec![]);
        let b = ConnectionTree::new(n(6), vec![n(6)], vec![]);
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.root_child_count(), 0);
        match a.signature() {
            TreeSignature::Nodes(nodes) => assert_eq!(nodes, vec![5]),
            _ => panic!("expected node signature"),
        }
    }

    #[test]
    fn root_children_counted_distinctly() {
        let t = ConnectionTree::new(
            n(0),
            vec![n(1), n(2)],
            vec![(n(0), n(1), 1.0), (n(0), n(2), 1.0)],
        );
        assert_eq!(t.root_child_count(), 2);
    }
}
