//! Query parsing.
//!
//! The base query model (§2.3) is a list of keywords. Two extensions the
//! paper describes are also parsed here:
//!
//! * `attribute:keyword` — "queries such as `author:Levy` which would
//!   require the keyword 'Levy' to be in an author name attribute" (§2.3);
//!   the attribute may be a bare column name or `Relation.Column`.
//! * `approx(n)` — "concurrency approx(1988) to look for papers about
//!   concurrency published around 1988" (§7).

use crate::error::{BanksError, BanksResult};
use banks_storage::Tokenizer;
use std::fmt;

/// One parsed search term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A plain keyword (already lowercased/tokenized).
    Keyword(String),
    /// `attribute:keyword` — keyword restricted to an attribute.
    Qualified {
        /// Attribute spec: `column` or `relation.column`.
        attribute: String,
        /// The keyword (tokenized).
        keyword: String,
    },
    /// `approx(n)` — numeric proximity.
    Approx(i64),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Keyword(k) => write!(f, "{k}"),
            Term::Qualified { attribute, keyword } => write!(f, "{attribute}:{keyword}"),
            Term::Approx(n) => write!(f, "approx({n})"),
        }
    }
}

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The search terms, in input order.
    pub terms: Vec<Term>,
}

impl Query {
    /// Parse raw query text.
    ///
    /// Whitespace separates raw terms; a raw keyword that tokenizes into
    /// several tokens (e.g. `"query-optimization"`) contributes one term
    /// per token, mirroring how the data side is indexed.
    pub fn parse(text: &str, tokenizer: &Tokenizer) -> BanksResult<Query> {
        let mut terms = Vec::new();
        for raw in text.split_whitespace() {
            if let Some(rest) = strip_approx(raw) {
                let n: i64 = rest.parse().map_err(|_| BanksError::BadTerm {
                    term: raw.to_string(),
                    message: format!("`{rest}` is not an integer"),
                })?;
                terms.push(Term::Approx(n));
                continue;
            }
            if let Some((attr, kw)) = raw.split_once(':') {
                if attr.is_empty() || kw.is_empty() {
                    return Err(BanksError::BadTerm {
                        term: raw.to_string(),
                        message: "expected attribute:keyword".to_string(),
                    });
                }
                let tokens = tokenizer.tokenize(kw);
                if tokens.is_empty() {
                    return Err(BanksError::BadTerm {
                        term: raw.to_string(),
                        message: "keyword part has no tokens".to_string(),
                    });
                }
                for token in tokens {
                    terms.push(Term::Qualified {
                        attribute: attr.to_string(),
                        keyword: token,
                    });
                }
                continue;
            }
            for token in tokenizer.tokenize(raw) {
                terms.push(Term::Keyword(token));
            }
        }
        if terms.is_empty() {
            return Err(BanksError::EmptyQuery);
        }
        Ok(Query { terms })
    }

    /// Number of search terms `n` (§2.3).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no terms (never true for parsed queries).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}", rendered.join(" "))
    }
}

/// `approx(123)` → `Some("123")`.
fn strip_approx(raw: &str) -> Option<&str> {
    let lower_ok = raw.len() >= 8 && raw[..7].eq_ignore_ascii_case("approx(") && raw.ends_with(')');
    if lower_ok {
        Some(&raw[7..raw.len() - 1])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Query {
        Query::parse(s, &Tokenizer::new()).unwrap()
    }

    #[test]
    fn plain_keywords() {
        let q = parse("soumen sunita");
        assert_eq!(
            q.terms,
            vec![
                Term::Keyword("soumen".into()),
                Term::Keyword("sunita".into())
            ]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.to_string(), "soumen sunita");
    }

    #[test]
    fn case_folded_and_split() {
        let q = parse("Query-Optimization");
        assert_eq!(
            q.terms,
            vec![
                Term::Keyword("query".into()),
                Term::Keyword("optimization".into())
            ]
        );
    }

    #[test]
    fn qualified_term() {
        let q = parse("author:Levy");
        assert_eq!(
            q.terms,
            vec![Term::Qualified {
                attribute: "author".into(),
                keyword: "levy".into()
            }]
        );
        let q = parse("Author.AuthorName:Levy transaction");
        assert_eq!(q.terms.len(), 2);
        assert!(matches!(&q.terms[1], Term::Keyword(k) if k == "transaction"));
    }

    #[test]
    fn approx_term() {
        let q = parse("concurrency approx(1988)");
        assert_eq!(
            q.terms,
            vec![Term::Keyword("concurrency".into()), Term::Approx(1988)]
        );
        assert_eq!(q.terms[1].to_string(), "approx(1988)");
    }

    #[test]
    fn bad_terms_rejected() {
        let t = Tokenizer::new();
        assert!(matches!(
            Query::parse("approx(abc)", &t),
            Err(BanksError::BadTerm { .. })
        ));
        assert!(matches!(
            Query::parse(":foo", &t),
            Err(BanksError::BadTerm { .. })
        ));
        assert!(matches!(
            Query::parse("attr:", &t),
            Err(BanksError::BadTerm { .. })
        ));
        assert!(matches!(
            Query::parse("  ", &t),
            Err(BanksError::EmptyQuery)
        ));
        assert!(matches!(
            Query::parse("!!! ...", &t),
            Err(BanksError::EmptyQuery)
        ));
    }

    #[test]
    fn negative_approx_allowed() {
        let q = parse("approx(-5)");
        assert_eq!(q.terms, vec![Term::Approx(-5)]);
    }
}
