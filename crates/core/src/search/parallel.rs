//! Intra-query parallel backward expansion.
//!
//! BANKS runs one independent backward Dijkstra expansion per keyword
//! set `Sᵢ`; the expansions only interact when settled nodes join the
//! per-node origin lists and spawn cross products. This executor
//! exploits that: each keyword set becomes an **expansion shard** that
//! runs its multi-origin Dijkstra on a scoped thread (shards beyond the
//! configured thread count share a thread), publishing settled-node
//! events into a per-shard lock-free SPSC queue; the caller thread runs
//! a **deterministic merge** that consumes events in global
//! `(frontier distance, iterator index)` order — exactly the order the
//! sequential kernel's iterator heap pops — and drives the same
//! `AnswerSink` per-visit machinery as the sequential kernel. Answers, scores, and execution
//! stats are therefore bit-identical to the sequential kernel at any
//! thread count; threads are purely a latency knob.
//!
//! Liveness. Each shard channel carries a monotone **frontier bound**
//! (a lower bound on every future event's distance, published after
//! each event). The merge consumes the globally smallest candidate —
//! a queue head, or, when an empty live shard's bound is smaller than
//! every head, it re-scans after a yield. A producer thread that owns
//! several shards always advances the one with the smallest
//! `(bound, first iterator index)` key; because shard iterator-index
//! ranges are contiguous and disjoint, that shard's queue head (when
//! its queue is non-empty, e.g. full under back-pressure) compares
//! below every other owned shard's bound key, so the merge always has
//! a consumable candidate and the pipeline cannot deadlock.
//!
//! Early termination (the PR-4 top-k bound) fires in the merge on the
//! minimum frontier key across live shards. The bound check is
//! monotone in distance, so firing on a shard's frontier *bound* is
//! equivalent to firing on the actual next event — the merge never has
//! to wait just to stop.

use crate::config::SearchConfig;
use crate::graph_build::TupleGraph;
use crate::score::Scorer;
use crate::search::backward::{make_iterator, AnswerSink};
use crate::search::{EarlyStop, RootPolicy, SearchOutcome};
use banks_graph::{Dijkstra, DijkstraState, FxHashMap, FxHashSet, NodeId, SearchArena, NIL};
use std::cell::UnsafeCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as MemOrder};
use std::time::Instant;

/// One settled node, as published by a shard: everything the merge
/// needs to extend its per-iterator path forest and run the §3 visit —
/// no access to the shard-owned Dijkstra state required.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Settled distance (the global merge key, with `idx`).
    dist: f64,
    /// Global iterator index (the sequential kernel's tie-break).
    idx: u32,
    /// The settled node.
    node: u32,
    /// Its best-path predecessor ([`NIL`] for the origin).
    parent: u32,
    /// Exact CSR weight of the `node → parent` edge (0 for the origin).
    weight: f64,
}

/// Events a shard queue buffers before back-pressure blocks the
/// producer; also bounds how far a shard can run ahead of the merge
/// (wasted expansion when the merge stops early). Power of two.
const QUEUE_CAPACITY: usize = 1024;

/// A fixed-capacity lock-free single-producer/single-consumer ring.
/// The shard thread is the only pusher, the merge thread the only
/// popper; `tail`/`head` are published with release stores and read
/// with acquire loads, so slot contents are visible before indices.
struct EventQueue {
    buf: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Next slot the consumer reads (monotone, wraps via masking).
    head: AtomicUsize,
    /// Next slot the producer writes.
    tail: AtomicUsize,
}

// SAFETY: the ring is SPSC by construction (one shard thread pushes,
// the merge thread pops); a slot is written only while unreachable by
// the consumer (tail not yet published) and read only after the
// producer's release store of `tail` made it reachable.
unsafe impl Sync for EventQueue {}

impl EventQueue {
    fn new() -> EventQueue {
        let buf: Vec<UnsafeCell<MaybeUninit<Event>>> = (0..QUEUE_CAPACITY)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        EventQueue {
            buf: buf.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: enqueue one event; `false` when full.
    fn push(&self, ev: Event) -> bool {
        let tail = self.tail.load(MemOrder::Relaxed);
        let head = self.head.load(MemOrder::Acquire);
        if tail.wrapping_sub(head) == self.buf.len() {
            return false;
        }
        // SAFETY: single producer; this slot is not visible to the
        // consumer until the release store of `tail` below.
        unsafe {
            (*self.buf[tail % self.buf.len()].get()).write(ev);
        }
        self.tail.store(tail.wrapping_add(1), MemOrder::Release);
        true
    }

    /// Consumer side: copy of the head event without consuming it.
    fn peek(&self) -> Option<Event> {
        let head = self.head.load(MemOrder::Relaxed);
        let tail = self.tail.load(MemOrder::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: single consumer; the producer initialized this slot
        // before its release store of `tail` (paired with the acquire
        // load above).
        Some(unsafe { (*self.buf[head % self.buf.len()].get()).assume_init_read() })
    }

    /// Consumer side: drop the head event (after a successful `peek`).
    fn advance(&self) {
        let head = self.head.load(MemOrder::Relaxed);
        self.head.store(head.wrapping_add(1), MemOrder::Release);
    }
}

/// The merge-facing face of one expansion shard.
struct ShardChannel {
    queue: EventQueue,
    /// `f64` bits of a lower bound on every *future* event's distance
    /// (monotone — settled distances are non-decreasing). Valid only
    /// while `done` is false.
    bound: AtomicU64,
    /// No further events will be pushed (queued ones remain valid).
    done: AtomicBool,
    /// Global index of the shard's first iterator: the smallest
    /// tie-break key any future event of this shard can carry.
    start_idx: u32,
}

impl ShardChannel {
    fn new(start_idx: u32) -> ShardChannel {
        ShardChannel {
            queue: EventQueue::new(),
            bound: AtomicU64::new(0f64.to_bits()),
            done: AtomicBool::new(false),
            start_idx,
        }
    }
}

/// Producer-heap entry: min on `(dist, global iterator index)`, the
/// same total order as the sequential kernel's iterator heap.
#[derive(Debug, Clone, Copy)]
struct ProdEntry {
    dist: f64,
    /// Global iterator index.
    idx: u32,
    /// Position in the owning shard's iterator vector.
    local: u32,
}

impl PartialEq for ProdEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for ProdEntry {}
impl PartialOrd for ProdEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ProdEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// One expansion shard: a keyword set's multi-origin reverse Dijkstra,
/// multiplexed locally by `(dist, idx)` exactly as the sequential heap
/// would among these iterators.
struct ShardTask<'g> {
    /// Channel index (== term index).
    shard: usize,
    iterators: Vec<Dijkstra<'g>>,
    heap: BinaryHeap<ProdEntry>,
}

/// Run a thread's shards to completion (or until `stop`): repeatedly
/// advance the owned shard with the smallest `(next distance, start
/// index)` key — the choice the deadlock-freedom argument in the
/// module docs relies on — and publish its settled node.
fn run_shards<'g>(
    mut tasks: Vec<ShardTask<'g>>,
    channels: &[ShardChannel],
    stop: &AtomicBool,
    span_origin: Option<Instant>,
) -> ShardRun {
    // Trace timing (only when the query is traced): every owned shard's
    // expand span opens when this thread starts and closes when the
    // shard drains. `elapsed_ns` is measured against the caller's span
    // buffer origin, so the offsets line up with the merge span.
    let elapsed_ns = |o: Instant| u64::try_from(o.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let span_start = span_origin.map(&elapsed_ns);
    let mut span_ends: Vec<Option<u64>> = vec![None; tasks.len()];
    'outer: loop {
        if stop.load(MemOrder::Relaxed) {
            break;
        }
        let mut best: Option<(f64, u32, usize)> = None;
        for (t, task) in tasks.iter().enumerate() {
            let Some(top) = task.heap.peek() else {
                continue;
            };
            let start = channels[task.shard].start_idx;
            let better = match best {
                None => true,
                Some((bd, bs, _)) => top.dist.total_cmp(&bd).then(start.cmp(&bs)).is_lt(),
            };
            if better {
                best = Some((top.dist, start, t));
            }
        }
        let Some((_, _, t)) = best else {
            break; // every owned shard exhausted
        };
        let task = &mut tasks[t];
        let chan = &channels[task.shard];
        let entry = task.heap.pop().expect("peeked entry");
        let local = entry.local as usize;
        if let Some(visit) = task.iterators[local].next() {
            if let Some(dist) = task.iterators[local].peek_dist() {
                task.heap.push(ProdEntry {
                    dist,
                    idx: entry.idx,
                    local: entry.local,
                });
            }
            let (parent, weight) = task.iterators[local]
                .parent_edge_of(visit.node)
                .expect("just-settled node");
            let ev = Event {
                dist: visit.dist,
                idx: entry.idx,
                node: visit.node.0,
                parent,
                weight,
            };
            // Back-pressure: a full queue means the merge is behind;
            // yielding (rather than spinning) matters on machines with
            // fewer cores than threads.
            while !chan.queue.push(ev) {
                if stop.load(MemOrder::Relaxed) {
                    break 'outer;
                }
                std::thread::yield_now();
            }
        }
        // Publish the shard's new frontier: its next settle distance,
        // or done. (A bound stored after the push can only be stale-low
        // for the instant before this store — conservative for the
        // merge, never unsound.)
        match task.heap.peek() {
            Some(top) => chan.bound.store(top.dist.to_bits(), MemOrder::Release),
            None => {
                chan.done.store(true, MemOrder::Release);
                if let Some(origin) = span_origin {
                    span_ends[t].get_or_insert_with(|| elapsed_ns(origin));
                }
            }
        }
    }
    // However this thread exits, no further events will arrive: make
    // that visible so the merge never waits on an abandoned shard.
    for task in &tasks {
        channels[task.shard].done.store(true, MemOrder::Release);
    }
    let spans = match (span_origin, span_start) {
        (Some(origin), Some(start)) => {
            let now = elapsed_ns(origin);
            tasks
                .iter()
                .enumerate()
                .map(|(t, task)| (task.shard, start, span_ends[t].unwrap_or(now)))
                .collect()
        }
        _ => Vec::new(),
    };
    let recycled = tasks
        .into_iter()
        .map(|task| {
            (
                task.shard,
                task.iterators
                    .into_iter()
                    .map(Dijkstra::into_state)
                    .collect(),
            )
        })
        .collect();
    ShardRun { recycled, spans }
}

/// What a shard thread hands back when it joins: the recycled state
/// blocks per shard, plus `(shard, start_ns, end_ns)` expand spans when
/// the query is traced (empty otherwise).
struct ShardRun {
    recycled: Vec<(usize, Vec<DijkstraState>)>,
    spans: Vec<(usize, u64, u64)>,
}

/// Rebuild the root→origin path of iterator `idx` from the merge-side
/// path forest, appending `(child, parent, weight)` edges exactly as
/// [`Dijkstra::path_edges_into`] would for a reverse-direction
/// traversal. Returns `false` if the node was never consumed for that
/// iterator (cannot happen for origins drawn from `u.Lⱼ`).
fn reconstruct_path(
    paths: &[FxHashMap<u32, (u32, f64)>],
    infos: &[(usize, NodeId)],
    idx: usize,
    node: NodeId,
    out: &mut Vec<(NodeId, NodeId, f64)>,
) -> bool {
    let origin = infos[idx].1;
    let mut cur = node.0;
    while cur != origin.0 {
        let Some(&(parent, w)) = paths[idx].get(&cur) else {
            return false;
        };
        out.push((NodeId(cur), NodeId(parent), w));
        cur = parent;
    }
    true
}

/// The parallel executor. Caller (the dispatcher in
/// [`crate::search::backward::backward_search_in`]) guarantees ≥ 2
/// keyword sets, all non-empty, and `config.search_threads ≥ 2`.
pub(super) fn parallel_backward_search(
    arena: &mut SearchArena,
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let graph = tuple_graph.graph();
    let n_nodes = graph.node_count();
    let n_terms = keyword_sets.len();
    let threads = config.search_threads.min(n_terms).max(1);

    // Iterator construction in the exact sequential order (term-major,
    // origins in set order): global indices, handicaps, and the
    // (term, origin) → index map all match the sequential kernel.
    let total_origins: usize = keyword_sets.iter().map(|s| s.len()).sum();
    let mut infos: Vec<(usize, NodeId)> = Vec::with_capacity(total_origins);
    let mut iter_index: FxHashMap<(u32, u32), usize> =
        FxHashMap::with_capacity_and_hasher(total_origins, Default::default());
    let prestige_handicap = graph.min_edge_weight().min(1.0);
    let mut max_handicap = 0.0f64;
    let mut tasks: Vec<ShardTask<'_>> = Vec::with_capacity(n_terms);
    let mut channels: Vec<ShardChannel> = Vec::with_capacity(n_terms);
    {
        let shard_pools = arena.shard_pools(n_terms);
        let mut idx: u32 = 0;
        for (term, (set, pool)) in keyword_sets.iter().zip(shard_pools.iter_mut()).enumerate() {
            let start_idx = idx;
            let mut iterators: Vec<Dijkstra<'_>> = Vec::with_capacity(set.len());
            let mut heap: BinaryHeap<ProdEntry> = BinaryHeap::with_capacity(set.len());
            for &origin in set {
                let (mut iterator, handicap) = make_iterator(
                    graph,
                    origin,
                    pool.checkout(n_nodes),
                    scorer,
                    config,
                    prestige_handicap,
                );
                max_handicap = max_handicap.max(handicap);
                if let Some(dist) = iterator.peek_dist() {
                    heap.push(ProdEntry {
                        dist,
                        idx,
                        local: iterators.len() as u32,
                    });
                }
                infos.push((term, origin));
                iter_index.insert((term as u32, origin.0), idx as usize);
                iterators.push(iterator);
                idx += 1;
            }
            let chan = ShardChannel::new(start_idx);
            match heap.peek() {
                Some(top) => chan.bound.store(top.dist.to_bits(), MemOrder::Relaxed),
                None => chan.done.store(true, MemOrder::Relaxed),
            }
            channels.push(chan);
            tasks.push(ShardTask {
                shard: term,
                iterators,
                heap,
            });
        }
    }
    let total_iterators = infos.len();

    // Round-robin shard → thread assignment. The assignment has no
    // effect on output (the merge order is defined over the channels),
    // only on load balance.
    let mut thread_tasks: Vec<Vec<ShardTask<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        thread_tasks[i % threads].push(task);
    }

    let policy = RootPolicy::new(tuple_graph, excluded_roots, config);
    let mut sink = AnswerSink::new(
        n_terms,
        &mut arena.lists,
        &mut arena.cross,
        policy,
        scorer,
        config,
        iter_index,
    );
    sink.stats.iterators = total_iterators;
    sink.stats.shards = n_terms;
    let paths = arena.merge.maps(total_iterators);
    let mut early_stop = EarlyStop::new(config, scorer, max_handicap, keyword_sets);
    let stop = AtomicBool::new(false);
    let mut stall_ns: u64 = 0;
    let span_origin = arena.spans.is_enabled().then(|| arena.spans.origin());
    let merge_span = arena.spans.begin();

    let runs: Vec<ShardRun> = std::thread::scope(|scope| {
        let channels_ref = &channels;
        let stop_ref = &stop;
        let handles: Vec<_> = thread_tasks
            .into_iter()
            .map(|tasks| {
                scope.spawn(move || run_shards(tasks, channels_ref, stop_ref, span_origin))
            })
            .collect();

        // ---- the deterministic merge stage (caller thread) ----
        'merge: while sink.want_more() {
            // Cooperative cancellation: breaking here reaches the
            // `stop` store below, which halts every shard thread.
            if arena.deadline.expired() {
                sink.stats.deadline_expirations += 1;
                break 'merge;
            }
            // Select the globally smallest candidate: a queue head, or
            // an empty live shard's frontier bound. Identical total
            // order to the sequential iterator heap: (dist, idx), with
            // a bound standing in for its shard's smallest possible
            // future key (bound, start_idx).
            let (shard, ev) = loop {
                let mut best_key: Option<(f64, u32)> = None;
                let mut best_event: Option<(usize, Event)> = None;
                for (s, chan) in channels_ref.iter().enumerate() {
                    // Read order matters: `done` and `bound` BEFORE the
                    // queue peek. The producer pushes an event and only
                    // then raises `bound` (or sets `done`), both with
                    // release stores — so if an acquire read here
                    // returns a post-push value, the later peek is
                    // guaranteed to see that push. Peeking first would
                    // let an event land between peek and bound-read and
                    // be masked by the fresher (higher) bound, making
                    // the merge consume another shard's larger key
                    // first and breaking sequential-order fidelity.
                    let done = chan.done.load(MemOrder::Acquire);
                    let bound = f64::from_bits(chan.bound.load(MemOrder::Acquire));
                    let (key, event) = match chan.queue.peek() {
                        Some(ev) => ((ev.dist, ev.idx), Some((s, ev))),
                        // Empty after a `done` read: truly drained
                        // (`done` is stored after the final push, so
                        // that push would have been visible above).
                        None if done => continue,
                        // Empty live shard: `bound` was stored before
                        // every event this peek could have missed, and
                        // bounds are monotone — a valid lower bound on
                        // all unconsumed keys of this shard.
                        None => ((bound, chan.start_idx), None),
                    };
                    let better = match best_key {
                        None => true,
                        Some(bk) => key.0.total_cmp(&bk.0).then(key.1.cmp(&bk.1)).is_lt(),
                    };
                    if better {
                        best_key = Some(key);
                        best_event = event;
                    }
                }
                let Some(key) = best_key else {
                    break 'merge; // every shard done and drained
                };
                // The exact PR-4 bound, on the min frontier across live
                // shards. `should_stop` is monotone in the distance, so
                // firing on a bound (dist ≤ the real next event) stops
                // at exactly the same consumed-event prefix as the
                // sequential kernel.
                if early_stop.should_stop(key.0, sink.emitted.len(), &sink.output) {
                    sink.stats.early_terminations += 1;
                    break 'merge;
                }
                match best_event {
                    Some((s, ev)) => break (s, ev),
                    None => {
                        // The minimum is an empty live shard's bound:
                        // yield and re-scan (bounds only rise, queues
                        // only fill, so this converges).
                        let t0 = Instant::now();
                        std::thread::yield_now();
                        stall_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
            };
            channels_ref[shard].queue.advance();
            sink.stats.pops += 1;
            if ev.parent != NIL {
                paths[ev.idx as usize].insert(ev.node, (ev.parent, ev.weight));
            }
            let (term, origin) = infos[ev.idx as usize];
            sink.process_visit(NodeId(ev.node), term, origin, |idx, node, out| {
                reconstruct_path(paths, &infos, idx, node, out)
            });
        }

        stop.store(true, MemOrder::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    sink.stats.merge_stall_ns = stall_ns;
    let outcome = sink.finish();
    arena.spans.end("merge", 0, merge_span);
    for run in &runs {
        for &(shard, start_ns, end_ns) in &run.spans {
            arena.spans.push("expand", shard as u32, start_ns, end_ns);
        }
    }
    let shard_pools = arena.shard_pools(n_terms);
    for run in runs {
        for (shard, states) in run.recycled {
            for state in states {
                shard_pools[shard].recycle(state);
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GraphConfig, ScoreParams, SearchConfig};
    use crate::search::backward::backward_search_in;
    use crate::search::SearchStats;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    #[test]
    fn spsc_queue_roundtrip_and_backpressure() {
        let q = EventQueue::new();
        assert!(q.peek().is_none());
        let mk = |i: u32| Event {
            dist: i as f64,
            idx: i,
            node: i,
            parent: NIL,
            weight: 0.0,
        };
        for i in 0..QUEUE_CAPACITY as u32 {
            assert!(q.push(mk(i)));
        }
        assert!(!q.push(mk(9999)), "full queue rejects");
        for i in 0..QUEUE_CAPACITY as u32 {
            let ev = q.peek().expect("queued");
            assert_eq!(ev.idx, i);
            q.advance();
        }
        assert!(q.peek().is_none());
        // Wrap-around keeps working.
        assert!(q.push(mk(7)));
        assert_eq!(q.peek().unwrap().idx, 7);
        q.advance();
    }

    #[test]
    fn spsc_queue_cross_thread_order() {
        let q = EventQueue::new();
        let n = 100_000u32;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..n {
                    let ev = Event {
                        dist: i as f64,
                        idx: i,
                        node: i.wrapping_mul(31),
                        parent: i,
                        weight: i as f64 * 0.5,
                    };
                    while !q.push(ev) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut seen = 0u32;
            while seen < n {
                let Some(ev) = q.peek() else {
                    std::thread::yield_now();
                    continue;
                };
                assert_eq!(ev.idx, seen);
                assert_eq!(ev.node, seen.wrapping_mul(31));
                assert_eq!(ev.weight, seen as f64 * 0.5);
                q.advance();
                seen += 1;
            }
        });
    }

    /// A ladder database: papers chained through citations plus authors,
    /// enough structure for multi-source multi-term queries.
    fn ladder_db(rungs: usize) -> Database {
        let mut db = Database::new("ladder");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Title", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for r in 0..rungs {
            db.insert(
                "Author",
                vec![
                    Value::text(format!("A{r}")),
                    Value::text(format!("Auth {r}")),
                ],
            )
            .unwrap();
            db.insert(
                "Paper",
                vec![
                    Value::text(format!("P{r}")),
                    Value::text(format!("Paper {r}")),
                ],
            )
            .unwrap();
        }
        for r in 0..rungs {
            for d in 0..3usize {
                let p = (r + d) % rungs;
                db.insert(
                    "Writes",
                    vec![Value::text(format!("A{r}")), Value::text(format!("P{p}"))],
                )
                .unwrap();
            }
        }
        db
    }

    fn assert_identical(a: &SearchOutcome, b: &SearchOutcome, ctx: &str) {
        assert_eq!(a.stats, b.stats, "{ctx}: stats diverged");
        assert_eq!(a.answers.len(), b.answers.len(), "{ctx}: answer count");
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.tree, y.tree, "{ctx}: tree diverged");
            assert_eq!(
                x.relevance.to_bits(),
                y.relevance.to_bits(),
                "{ctx}: relevance bits diverged"
            );
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let db = ladder_db(12);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let all_authors: Vec<NodeId> = db
            .relation("Author")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .collect();
        let all_papers: Vec<NodeId> = db
            .relation("Paper")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .collect();
        let queries: Vec<Vec<Vec<NodeId>>> = vec![
            vec![all_authors[..4].to_vec(), all_papers[..4].to_vec()],
            vec![
                all_authors[..2].to_vec(),
                all_papers[4..8].to_vec(),
                all_authors[6..9].to_vec(),
            ],
            vec![all_papers.clone(), all_authors.clone()],
        ];
        let excluded = FxHashSet::default();
        for (qi, sets) in queries.iter().enumerate() {
            for node_weight_in_distance in [false, true] {
                for max_results in [1usize, 3, 10] {
                    let base = SearchConfig {
                        max_results,
                        node_weight_in_distance,
                        ..SearchConfig::default()
                    };
                    let mut seq_arena = SearchArena::new();
                    let sequential =
                        backward_search_in(&mut seq_arena, &tg, &scorer, sets, &base, &excluded);
                    assert_eq!(sequential.stats.shards, 0);
                    for threads in [2usize, 4, 16] {
                        let config = SearchConfig {
                            search_threads: threads,
                            parallel_min_origins: 0,
                            ..base.clone()
                        };
                        let mut arena = SearchArena::new();
                        let parallel =
                            backward_search_in(&mut arena, &tg, &scorer, sets, &config, &excluded);
                        assert_eq!(
                            parallel.stats.shards,
                            sets.len(),
                            "q{qi}: parallel executor must engage"
                        );
                        assert_identical(
                            &sequential,
                            &parallel,
                            &format!("q{qi} threads={threads} k={max_results} nwd={node_weight_in_distance}"),
                        );
                        // And the reused-arena second run is identical too.
                        let again =
                            backward_search_in(&mut arena, &tg, &scorer, sets, &config, &excluded);
                        assert_identical(&sequential, &again, &format!("q{qi} rerun"));
                    }
                }
            }
        }
    }

    #[test]
    fn cutover_keeps_tiny_queries_sequential() {
        let db = ladder_db(4);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let a0 = db
            .relation("Author")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .next()
            .unwrap();
        let p0 = db
            .relation("Paper")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .next()
            .unwrap();
        let config = SearchConfig {
            search_threads: 4,
            parallel_min_origins: 3,
            ..SearchConfig::default()
        };
        let mut arena = SearchArena::new();
        // Two origins < cutover of 3: sequential fallback, counted.
        let outcome = backward_search_in(
            &mut arena,
            &tg,
            &scorer,
            &[vec![a0], vec![p0]],
            &config,
            &FxHashSet::default(),
        );
        assert_eq!(outcome.stats.shards, 0);
        assert_eq!(outcome.stats.sequential_fallbacks, 1);
        assert!(
            outcome.stats.arena_retained_bytes > 0,
            "post-trim pinned arena bytes are reported"
        );
        // Single keyword set: always sequential.
        let single = backward_search_in(
            &mut arena,
            &tg,
            &scorer,
            &[vec![a0, p0]],
            &config,
            &FxHashSet::default(),
        );
        assert_eq!(single.stats.shards, 0);
        assert_eq!(single.stats.sequential_fallbacks, 1);
        // Without parallelism configured there is no "fallback".
        let plain = backward_search_in(
            &mut arena,
            &tg,
            &scorer,
            &[vec![a0], vec![p0]],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert_eq!(plain.stats.sequential_fallbacks, 0);
    }

    #[test]
    fn trace_spans_cover_both_executors() {
        let db = ladder_db(8);
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let authors: Vec<NodeId> = db
            .relation("Author")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .collect();
        let papers: Vec<NodeId> = db
            .relation("Paper")
            .unwrap()
            .scan()
            .map(|(rid, _)| tg.node(rid).unwrap())
            .collect();
        let sets = vec![authors[..4].to_vec(), papers[..4].to_vec()];
        let excluded = FxHashSet::default();

        // Disabled buffer (the default): no spans, results unchanged.
        let mut arena = SearchArena::new();
        let base = SearchConfig::default();
        let baseline = backward_search_in(&mut arena, &tg, &scorer, &sets, &base, &excluded);
        assert!(arena.spans.spans().is_empty());

        // Sequential executor, traced: a single expand span.
        arena.spans.enable();
        let traced = backward_search_in(&mut arena, &tg, &scorer, &sets, &base, &excluded);
        let names: Vec<&str> = arena.spans.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["expand"]);
        assert_eq!(traced.answers.len(), baseline.answers.len());

        // Parallel executor, traced: one expand span per shard plus the
        // merge span, all closed after they open.
        let config = SearchConfig {
            search_threads: 2,
            parallel_min_origins: 0,
            ..SearchConfig::default()
        };
        arena.spans.enable();
        let parallel = backward_search_in(&mut arena, &tg, &scorer, &sets, &config, &excluded);
        assert_eq!(parallel.stats.shards, sets.len());
        let spans = arena.spans.spans();
        let expands: Vec<u32> = spans
            .iter()
            .filter(|s| s.name == "expand")
            .map(|s| s.index)
            .collect();
        assert_eq!(expands.len(), sets.len(), "one expand span per shard");
        assert!(expands.contains(&0) && expands.contains(&1));
        assert_eq!(spans.iter().filter(|s| s.name == "merge").count(), 1);
        for s in spans {
            assert!(s.end_ns >= s.start_ns, "span {s:?} runs backwards");
        }
        arena.spans.disable();
    }

    #[test]
    fn stats_equality_ignores_environment_counters() {
        let mut a = SearchStats {
            pops: 7,
            ..SearchStats::default()
        };
        let b = SearchStats {
            pops: 7,
            shards: 3,
            sequential_fallbacks: 1,
            merge_stall_ns: 12345,
            arena_retained_bytes: 999,
            ..SearchStats::default()
        };
        assert_eq!(a, b, "environment counters are not execution semantics");
        a.pops = 8;
        assert_ne!(a, b);
    }
}
