//! Forward search — the §7 optimization for keywords that match very many
//! nodes.
//!
//! "Query evaluation with keywords matching metadata can be relatively
//! slow, since a large number of tuples may be defined to be relevant to
//! the keyword … We are working on techniques to speed up such queries by
//! not performing backward search from large numbers of nodes, and instead
//! searching forwards from probable information nodes corresponding to
//! more selective keywords."
//!
//! Implementation: pick the most selective term (smallest `Sᵢ`), expand
//! backwards from *its* origins only (enumerating candidate information
//! nodes in increasing distance), and for each candidate root run a
//! bounded *forward* Dijkstra probe that stops as soon as it has touched
//! one node of every remaining keyword set. Each candidate yields at most
//! one tree (the nearest origin per term), making this an approximation
//! of the exhaustive backward search — the trade the paper proposes.
//!
//! Like the backward kernel, the probes run on pooled dense states: one
//! recycled [`banks_graph::DijkstraState`] serves *every* candidate root
//! (an epoch bump per probe), where the old kernel allocated three hash
//! maps per candidate.

use crate::answer::{Answer, ConnectionTree, TreeSignature};
use crate::config::SearchConfig;
use crate::graph_build::TupleGraph;
use crate::score::Scorer;
use crate::search::backward::{self, DupState};
use crate::search::output_heap::OutputHeap;
use crate::search::{EarlyStop, RootPolicy, SearchOutcome, SearchStats};
use banks_graph::{Dijkstra, Direction, FxHashMap, FxHashSet, NodeId, SearchArena};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many nearest members of each keyword set a forward probe gathers.
const MAX_HITS_PER_TERM: usize = 4;

#[derive(Debug, Clone, Copy)]
struct IterEntry {
    dist: f64,
    idx: usize,
}

impl PartialEq for IterEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for IterEntry {}
impl PartialOrd for IterEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IterEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Run forward search with a one-shot scratch arena. Same contract as
/// [`crate::search::backward_search`].
pub fn forward_search(
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    forward_search_in(
        &mut SearchArena::new(),
        tuple_graph,
        scorer,
        keyword_sets,
        config,
        excluded_roots,
    )
}

/// As [`forward_search`], reusing a caller-owned [`SearchArena`].
pub fn forward_search_in(
    arena: &mut SearchArena,
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    if keyword_sets.is_empty() || keyword_sets.iter().any(|s| s.is_empty()) {
        return SearchOutcome {
            answers: Vec::new(),
            stats,
        };
    }
    if keyword_sets.len() == 1 {
        // Degenerates to the same fast path as backward search.
        return backward::backward_search_in(
            arena,
            tuple_graph,
            scorer,
            keyword_sets,
            config,
            excluded_roots,
        );
    }

    let graph = tuple_graph.graph();
    let n_nodes = graph.node_count();
    let n_terms = keyword_sets.len();
    let policy = RootPolicy::new(tuple_graph, excluded_roots, config);
    let selective = keyword_sets
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.len())
        .map(|(i, _)| i)
        .expect("non-empty keyword sets");

    // Membership sets for the non-selective terms.
    let membership: Vec<FxHashSet<u32>> = keyword_sets
        .iter()
        .map(|s| s.iter().map(|n| n.0).collect())
        .collect();

    // Backward expansion from the selective term's origins only.
    let mut iterators: Vec<Dijkstra<'_>> = Vec::with_capacity(keyword_sets[selective].len());
    let mut origins: Vec<NodeId> = Vec::with_capacity(keyword_sets[selective].len());
    for &origin in &keyword_sets[selective] {
        iterators.push(
            Dijkstra::new_in(graph, origin, Direction::Reverse, arena.checkout(n_nodes))
                .with_max_dist(config.max_distance),
        );
        origins.push(origin);
    }
    stats.iterators = iterators.len();
    let mut iter_heap: BinaryHeap<IterEntry> = BinaryHeap::with_capacity(iterators.len());
    for (idx, it) in iterators.iter_mut().enumerate() {
        if let Some(dist) = it.peek_dist() {
            iter_heap.push(IterEntry { dist, idx });
        }
    }

    // One recycled state block serves every forward probe.
    let mut probe_state = Some(arena.checkout(n_nodes));
    let cross = &mut arena.cross;
    let mut probed: FxHashSet<u32> = FxHashSet::default();
    let mut output = OutputHeap::new(config.output_heap_size);
    let mut dedup: FxHashMap<TreeSignature, DupState> = FxHashMap::with_capacity_and_hasher(
        config.output_heap_size + config.max_results,
        Default::default(),
    );
    let mut emitted: Vec<Answer> = Vec::with_capacity(config.max_results);
    // Forward iterators start at distance 0 (no prestige handicap), so
    // the frontier distance is itself the weight floor of future trees.
    let mut early_stop = EarlyStop::new(config, scorer, 0.0, keyword_sets);
    let mut hits: Vec<Vec<NodeId>> = vec![Vec::new(); n_terms];
    let mut backward_path: Vec<(NodeId, NodeId, f64)> = Vec::new();

    while emitted.len() < config.max_results && stats.pops < config.max_pops {
        // Cooperative cancellation, same contract as the backward loop.
        if arena.deadline.expired() {
            stats.deadline_expirations += 1;
            break;
        }
        let Some(&frontier) = iter_heap.peek() else {
            break;
        };
        if early_stop.should_stop(frontier.dist, emitted.len(), &output) {
            stats.early_terminations += 1;
            break;
        }
        let entry = iter_heap.pop().expect("peeked entry");
        let Some(visit) = iterators[entry.idx].next() else {
            continue;
        };
        stats.pops += 1;
        if let Some(dist) = iterators[entry.idx].peek_dist() {
            iter_heap.push(IterEntry {
                dist,
                idx: entry.idx,
            });
        }
        let u = visit.node;
        // Each candidate root is probed once, by the nearest selective
        // origin (iterators pop in global distance order).
        if !probed.insert(u.0) {
            continue;
        }
        if policy.root_excluded(u) {
            stats.excluded_roots += 1;
            continue;
        }

        // Forward probe: gather the nearest few members of every other
        // keyword set. A single nearest hit is not enough: when that hit
        // lies *on* the path to another keyword, the resulting tree fails
        // the single-child-root rule even though a sibling hit would
        // branch properly.
        let mut probe = Dijkstra::new_in(
            graph,
            u,
            Direction::Forward,
            probe_state.take().expect("probe state checked back in"),
        )
        .with_max_dist(config.max_distance)
        .with_max_settled(config.forward_probe_budget);
        for h in &mut hits {
            h.clear();
        }
        hits[selective].push(origins[entry.idx]);
        let mut satisfied = 1usize; // terms with ≥ 1 hit
        let mut saturated = 1usize; // terms with MAX_HITS_PER_TERM hits
        while saturated < n_terms {
            let Some(v) = probe.next() else {
                break;
            };
            stats.pops += 1;
            for (j, members) in membership.iter().enumerate() {
                if j != selective
                    && hits[j].len() < MAX_HITS_PER_TERM
                    && members.contains(&v.node.0)
                {
                    hits[j].push(v.node);
                    if hits[j].len() == 1 {
                        satisfied += 1;
                    }
                    if hits[j].len() == MAX_HITS_PER_TERM {
                        saturated += 1;
                    }
                }
            }
        }
        if satisfied < n_terms {
            probe_state = Some(probe.into_state());
            continue;
        }

        // Enumerate hit combinations (mixed-radix counter), assembling for
        // each the tree: backward path root→selective origin plus forward
        // probe paths root→each chosen keyword node.
        backward_path.clear();
        let ok = iterators[entry.idx].path_edges_into(u, &mut backward_path);
        debug_assert!(ok, "just settled u");
        let total: usize = hits
            .iter()
            .map(|h| h.len())
            .fold(1usize, |acc, len| acc.saturating_mul(len));
        let budget = total.min(config.max_cross_product);
        if total > budget {
            stats.cross_product_truncations += 1;
        }
        cross.counter.clear();
        cross.counter.resize(n_terms, 0);
        for _ in 0..budget {
            cross.origins.clear();
            cross.origins.resize(n_terms, NodeId(0));
            cross.edges.clear();
            cross.edges.extend_from_slice(&backward_path);
            for (j, hit_list) in hits.iter().enumerate() {
                let o = hit_list[cross.counter[j]];
                cross.origins[j] = o;
                if j != selective {
                    let ok = probe.path_edges_into(o, &mut cross.edges);
                    debug_assert!(ok, "probe settled hit");
                }
            }
            for pos in (0..n_terms).rev() {
                cross.counter[pos] += 1;
                if cross.counter[pos] < hits[pos].len() {
                    break;
                }
                cross.counter[pos] = 0;
            }
            let tree = ConnectionTree::new(u, cross.origins.clone(), cross.edges.clone());
            stats.trees_generated += 1;
            if policy.discards_single_child(&tree) {
                stats.discarded_single_child += 1;
                continue;
            }
            let relevance = scorer.relevance(&tree);
            backward::offer(
                Answer { tree, relevance },
                &mut output,
                &mut dedup,
                &mut emitted,
                config,
                &mut stats,
            );
            if emitted.len() >= config.max_results {
                break;
            }
        }
        probe_state = Some(probe.into_state());
    }

    if let Some(state) = probe_state {
        arena.recycle(state);
    }
    for iterator in iterators {
        arena.recycle(iterator.into_state());
    }
    let mut outcome = backward::finish(emitted, output, config, stats);
    arena.trim();
    outcome.stats.arena_retained_bytes = arena.retained_bytes();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GraphConfig, ScoreParams};
    use crate::graph_build::TupleGraph;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    /// Small DBLP-style fixture: two papers share author A; author B wrote
    /// only paper 1; author C wrote only paper 2.
    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Title", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [("A", "Alice"), ("B", "Bob"), ("C", "Carol")] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        for (id, title) in [("p1", "Paper One"), ("p2", "Paper Two")] {
            db.insert("Paper", vec![Value::text(id), Value::text(title)])
                .unwrap();
        }
        for (a, p) in [("A", "p1"), ("B", "p1"), ("A", "p2"), ("C", "p2")] {
            db.insert("Writes", vec![Value::text(a), Value::text(p)])
                .unwrap();
        }
        db
    }

    fn node(db: &Database, tg: &TupleGraph, rel: &str, id: &str) -> NodeId {
        let rid = db
            .relation(rel)
            .unwrap()
            .lookup_pk(&[Value::text(id)])
            .unwrap();
        tg.node(rid).unwrap()
    }

    fn node2(db: &Database, tg: &TupleGraph, rel: &str, k1: &str, k2: &str) -> NodeId {
        let rid = db
            .relation(rel)
            .unwrap()
            .lookup_pk(&[Value::text(k1), Value::text(k2)])
            .unwrap();
        tg.node(rid).unwrap()
    }

    #[test]
    fn finds_connecting_paper() {
        let db = db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let a = node(&db, &tg, "Author", "A");
        let b = node(&db, &tg, "Author", "B");
        let outcome = forward_search(
            &tg,
            &scorer,
            &[vec![a], vec![b]],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert!(!outcome.answers.is_empty());
        let best = &outcome.answers[0].tree;
        assert_eq!(best.root, node(&db, &tg, "Paper", "p1"));
        assert_eq!(best.keyword_nodes, vec![a, b]);
    }

    #[test]
    fn agrees_with_backward_on_top_answer() {
        let db = db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let b = node(&db, &tg, "Author", "B");
        let c = node(&db, &tg, "Author", "C");
        let cfg = SearchConfig::default();
        let fwd = forward_search(
            &tg,
            &scorer,
            &[vec![b], vec![c]],
            &cfg,
            &FxHashSet::default(),
        );
        let bwd = backward::backward_search(
            &tg,
            &scorer,
            &[vec![b], vec![c]],
            &cfg,
            &FxHashSet::default(),
        );
        assert!(!fwd.answers.is_empty());
        assert!(!bwd.answers.is_empty());
        assert_eq!(
            fwd.answers[0].tree.signature(),
            bwd.answers[0].tree.signature(),
            "B and C connect through Alice's co-authorship"
        );
    }

    #[test]
    fn selective_term_drives_iterator_count() {
        let db = db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let a = node(&db, &tg, "Author", "A");
        // "Metadata-style" term: every Writes tuple.
        let all_writes = vec![
            node2(&db, &tg, "Writes", "A", "p1"),
            node2(&db, &tg, "Writes", "B", "p1"),
            node2(&db, &tg, "Writes", "A", "p2"),
            node2(&db, &tg, "Writes", "C", "p2"),
        ];
        let outcome = forward_search(
            &tg,
            &scorer,
            &[vec![a], all_writes],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert_eq!(
            outcome.stats.iterators, 1,
            "backward expansion only from the selective term"
        );
        assert!(!outcome.answers.is_empty());
    }

    #[test]
    fn probe_budget_limits_work() {
        let db = db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let b = node(&db, &tg, "Author", "B");
        let c = node(&db, &tg, "Author", "C");
        let cfg = SearchConfig {
            forward_probe_budget: 1,
            ..SearchConfig::default()
        };
        let outcome = forward_search(
            &tg,
            &scorer,
            &[vec![b], vec![c]],
            &cfg,
            &FxHashSet::default(),
        );
        // A 1-node probe can only "find" the other keyword when the
        // candidate root *is* that keyword, so every surviving answer is a
        // keyword-rooted chain; the branching Alice-paper trees of the
        // default budget are unreachable.
        for a in &outcome.answers {
            assert!(
                a.tree.keyword_nodes.contains(&a.tree.root),
                "non-keyword-rooted tree should be impossible at budget 1"
            );
        }
        let full = forward_search(
            &tg,
            &scorer,
            &[vec![b], vec![c]],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert!(
            full.answers[0].relevance
                >= outcome.answers.first().map(|a| a.relevance).unwrap_or(0.0)
        );
    }

    #[test]
    fn reused_arena_matches_one_shot_forward() {
        let db = db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let a = node(&db, &tg, "Author", "A");
        let b = node(&db, &tg, "Author", "B");
        let c = node(&db, &tg, "Author", "C");
        let cfg = SearchConfig::default();
        let mut arena = SearchArena::new();
        for sets in [
            vec![vec![a], vec![b]],
            vec![vec![b], vec![c]],
            vec![vec![a, b, c], vec![c]],
        ] {
            let fresh = forward_search(&tg, &scorer, &sets, &cfg, &FxHashSet::default());
            let reused =
                forward_search_in(&mut arena, &tg, &scorer, &sets, &cfg, &FxHashSet::default());
            assert_eq!(fresh.stats, reused.stats);
            assert_eq!(fresh.answers.len(), reused.answers.len());
            for (x, y) in fresh.answers.iter().zip(&reused.answers) {
                assert_eq!(x.tree, y.tree);
                assert_eq!(x.relevance.to_bits(), y.relevance.to_bits());
            }
        }
    }
}
