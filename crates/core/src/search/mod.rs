//! Query execution: the backward expanding search of §3 plus the §7
//! forward-search extension.

pub mod backward;
pub mod forward;
pub mod output_heap;

pub use backward::backward_search;
pub use forward::forward_search;
pub use output_heap::OutputHeap;

use crate::answer::Answer;

/// Counters describing one search execution, for diagnostics, tests and
/// the evaluation harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Shortest-path iterators created (Σ|Sᵢ| in the paper's notation).
    pub iterators: usize,
    /// Total nodes settled across all iterators.
    pub pops: usize,
    /// Connection trees constructed (before any filtering).
    pub trees_generated: usize,
    /// Trees dropped because the root had exactly one child.
    pub discarded_single_child: usize,
    /// Answers actually emitted to the caller.
    pub trees_emitted: usize,
    /// Trees dropped because the root's relation is excluded.
    pub excluded_roots: usize,
    /// Duplicates discarded (an equal-or-better twin existed).
    pub duplicates_discarded: usize,
    /// Duplicates that replaced a worse twin still in the buffer.
    pub duplicates_replaced: usize,
    /// Cross products truncated by the per-node combination cap.
    pub cross_product_truncations: usize,
}

/// The result of a search: ranked answers plus execution counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Answers in decreasing relevance order (approximately — the output
    /// buffer makes the order heuristic, exactly as in the paper).
    pub answers: Vec<Answer>,
    /// Execution counters.
    pub stats: SearchStats,
}
