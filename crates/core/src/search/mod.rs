//! Query execution: the backward expanding search of §3 plus the §7
//! forward-search extension.
//!
//! Both algorithms run on reusable scratch memory: callers that serve
//! many queries thread a [`SearchArena`] through the `*_in` entry points
//! so the kernel's dense Dijkstra states, origin lists and cross-product
//! buffers are recycled instead of reallocated per query.

pub mod backward;
pub mod forward;
pub mod output_heap;
pub mod parallel;

pub use backward::{backward_search, backward_search_in};
pub use banks_graph::SearchArena;
pub use forward::{forward_search, forward_search_in};
pub use output_heap::OutputHeap;

use crate::answer::{Answer, ConnectionTree};
use crate::config::SearchConfig;
use crate::graph_build::TupleGraph;
use crate::score::Scorer;
use banks_graph::{FxHashSet, NodeId};

/// Counters describing one search execution, for diagnostics, tests and
/// the evaluation harness.
///
/// **Equality** compares the *execution-semantic* counters only — the
/// numbers that must be bit-identical between the sequential kernel and
/// the parallel executor (or between a fresh and a reused arena). The
/// environment-descriptive fields ([`SearchStats::shards`],
/// [`SearchStats::sequential_fallbacks`], [`SearchStats::merge_stall_ns`],
/// [`SearchStats::arena_retained_bytes`]) describe *how* the query ran,
/// differ by construction across executors, and are excluded.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Shortest-path iterators created (Σ|Sᵢ| in the paper's notation).
    pub iterators: usize,
    /// Total nodes settled across all iterators.
    pub pops: usize,
    /// Connection trees constructed (before any filtering).
    pub trees_generated: usize,
    /// Trees dropped because the root had exactly one child.
    pub discarded_single_child: usize,
    /// Answers actually emitted to the caller.
    pub trees_emitted: usize,
    /// Trees dropped because the root's relation is excluded.
    pub excluded_roots: usize,
    /// Duplicates discarded (an equal-or-better twin existed).
    pub duplicates_discarded: usize,
    /// Duplicates that replaced a worse twin still in the buffer.
    pub duplicates_replaced: usize,
    /// Cross products truncated by the per-node combination cap.
    pub cross_product_truncations: usize,
    /// 1 when the expansion stopped via the top-k relevance bound instead
    /// of exhausting its iterators or budgets.
    pub early_terminations: usize,
    /// Bytes of origin-list cloning the flattened arena pool avoided
    /// (the old kernel cloned every other-term list per visited node).
    pub clone_bytes_saved: usize,
    /// Expansion shards spawned by the parallel executor (0 when the
    /// query ran on the sequential kernel). Excluded from equality.
    pub shards: usize,
    /// 1 when parallelism was configured (`search_threads ≥ 2`) but the
    /// adaptive cutover kept the zero-overhead sequential path (single
    /// keyword, tiny frontier). Excluded from equality.
    pub sequential_fallbacks: usize,
    /// Nanoseconds the merge stage spent stalled waiting for a shard
    /// whose frontier bound was the global minimum. Excluded from
    /// equality.
    pub merge_stall_ns: u64,
    /// Bytes pinned by the caller's [`SearchArena`] pools after this
    /// query (post shrink-policy). Excluded from equality.
    pub arena_retained_bytes: usize,
    /// 1 when the expansion was cut short by the caller's deadline
    /// token and the answers are a (possibly empty) prefix of the full
    /// result. Timing-dependent, so excluded from equality.
    pub deadline_expirations: usize,
}

impl PartialEq for SearchStats {
    fn eq(&self, other: &Self) -> bool {
        // Execution-semantic counters only; see the struct docs.
        self.iterators == other.iterators
            && self.pops == other.pops
            && self.trees_generated == other.trees_generated
            && self.discarded_single_child == other.discarded_single_child
            && self.trees_emitted == other.trees_emitted
            && self.excluded_roots == other.excluded_roots
            && self.duplicates_discarded == other.duplicates_discarded
            && self.duplicates_replaced == other.duplicates_replaced
            && self.cross_product_truncations == other.cross_product_truncations
            && self.early_terminations == other.early_terminations
            && self.clone_bytes_saved == other.clone_bytes_saved
    }
}

impl Eq for SearchStats {}

/// The result of a search: ranked answers plus execution counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Answers in decreasing relevance order (approximately — the output
    /// buffer makes the order heuristic, exactly as in the paper).
    pub answers: Vec<Answer>,
    /// Execution counters.
    pub stats: SearchStats,
}

/// The root-admission rules shared by every search strategy: the §2.1
/// excluded-relation restriction ("we may restrict the information node
/// to be from a selected set") and the §3 single-child-root discard.
/// One implementation, so the multi-term loop, the single-term fast path
/// and the forward-search probe cannot drift apart.
pub(crate) struct RootPolicy<'a> {
    tuple_graph: &'a TupleGraph,
    excluded_roots: &'a FxHashSet<u32>,
    discard_single_child_root: bool,
}

impl<'a> RootPolicy<'a> {
    pub(crate) fn new(
        tuple_graph: &'a TupleGraph,
        excluded_roots: &'a FxHashSet<u32>,
        config: &SearchConfig,
    ) -> RootPolicy<'a> {
        RootPolicy {
            tuple_graph,
            excluded_roots,
            discard_single_child_root: config.discard_single_child_root,
        }
    }

    /// May tuples of `root`'s relation serve as information nodes at all?
    pub(crate) fn root_excluded(&self, root: NodeId) -> bool {
        self.excluded_roots
            .contains(&self.tuple_graph.relation_of(root))
    }

    /// §3: "the tree formed by removing the root node would also have
    /// been generated, and would be a better answer" — unless the root
    /// itself carries a keyword, in which case removing it would
    /// invalidate the answer and the justification does not apply.
    pub(crate) fn discards_single_child(&self, tree: &ConnectionTree) -> bool {
        self.discard_single_child_root
            && tree.root_child_count() == 1
            && !tree.keyword_nodes.contains(&tree.root)
    }
}

/// Sound top-k early termination.
///
/// Iterator pops arrive in globally non-decreasing distance order, and a
/// tree generated at frontier distance `d` contains a full root→origin
/// path of weight at least `d − h` (`h` = the largest origin handicap
/// when `node_weight_in_distance` folds keyword prestige into the start
/// distance, 0 otherwise). [`Scorer::max_relevance_for_weight`] turns
/// that weight floor — together with the keyword-set node-score cap of
/// [`Scorer::max_node_score_for_sets`], since every future tree's leaves
/// are drawn from the same `Sᵢ` sets — into a relevance ceiling; once the
/// ceiling falls *strictly* below the k-th best buffered answer (k =
/// answers still owed), no future tree can enter the final top-k, replace
/// a buffered twin that would reach it, or reorder it — so stopping is
/// exact, not a heuristic.
pub(crate) struct EarlyStop<'a, 'g> {
    enabled: bool,
    max_results: usize,
    max_handicap: f64,
    max_node_score: f64,
    scorer: &'a Scorer<'g>,
    /// Memoized cutoff: `(output version, answers owed, cutoff)`.
    cached: Option<(u64, usize, f64)>,
}

impl<'a, 'g> EarlyStop<'a, 'g> {
    pub(crate) fn new(
        config: &SearchConfig,
        scorer: &'a Scorer<'g>,
        max_handicap: f64,
        keyword_sets: &[Vec<NodeId>],
    ) -> EarlyStop<'a, 'g> {
        EarlyStop {
            enabled: config.early_termination,
            max_results: config.max_results,
            max_handicap,
            max_node_score: if config.early_termination {
                scorer.max_node_score_for_sets(keyword_sets)
            } else {
                1.0
            },
            scorer,
            cached: None,
        }
    }

    /// Whether the search may stop before popping a node at
    /// `frontier_dist`. `emitted_len` must be below `max_results` (the
    /// main loop's own bound).
    pub(crate) fn should_stop(
        &mut self,
        frontier_dist: f64,
        emitted_len: usize,
        output: &OutputHeap,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        let remaining = self.max_results - emitted_len;
        let cutoff = match self.cached {
            Some((version, owed, cutoff)) if version == output.version() && owed == remaining => {
                cutoff
            }
            _ => {
                // O(1) when fewer than `remaining` answers are buffered.
                let Some(cutoff) = output.kth_best_relevance(remaining) else {
                    return false;
                };
                self.cached = Some((output.version(), remaining, cutoff));
                cutoff
            }
        };
        let min_weight = (frontier_dist - self.max_handicap).max(0.0);
        self.scorer
            .max_relevance_for_weight(min_weight, self.max_node_score)
            < cutoff
    }
}
