//! Backward expanding search (§3, Figure 3).
//!
//! One Dijkstra iterator per keyword node runs over *reversed* edges; a
//! heap multiplexes the iterators by the distance of the next node each
//! would output. Every graph node `u` keeps one origin list per search
//! term (`u.Lᵢ`). When the iterator started at origin `o ∈ Sᵢ` visits `u`,
//! the cross product `{o} × Π_{j≠i} u.Lⱼ` enumerates exactly the new
//! connection trees rooted at `u`, after which `o` joins `u.Lᵢ`.

use crate::answer::{Answer, ConnectionTree, TreeSignature};
use crate::config::SearchConfig;
use crate::graph_build::TupleGraph;
use crate::score::Scorer;
use crate::search::output_heap::OutputHeap;
use crate::search::{SearchOutcome, SearchStats};
use banks_graph::{Dijkstra, Direction, FxHashMap, FxHashSet, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Iterator-heap entry: min-heap on the distance of the iterator's next
/// output ("ordered on the distance of the first node it will output").
#[derive(Debug, Clone, Copy)]
struct IterEntry {
    dist: f64,
    idx: usize,
}

impl PartialEq for IterEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for IterEntry {}
impl PartialOrd for IterEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IterEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Duplicate-tracking state per tree signature.
pub(super) enum DupState {
    /// Still buffered; may be replaced by a better-scoring twin.
    InHeap,
    /// Already output; later twins are discarded even if better (§3: "in
    /// that case we discard the new result").
    Emitted,
}

/// Run backward expanding search.
///
/// `keyword_sets[i]` is the node set `Sᵢ` for term `i`; `excluded_roots`
/// holds relation ids whose tuples may not be information nodes.
pub fn backward_search(
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    if keyword_sets.is_empty() || keyword_sets.iter().any(|s| s.is_empty()) {
        return SearchOutcome {
            answers: Vec::new(),
            stats,
        };
    }
    if keyword_sets.len() == 1 {
        return single_term_search(
            tuple_graph,
            scorer,
            &keyword_sets[0],
            config,
            excluded_roots,
        );
    }

    let graph = tuple_graph.graph();
    let n_terms = keyword_sets.len();

    // One reverse-direction Dijkstra per keyword node.
    let mut iterators: Vec<Dijkstra<'_>> = Vec::new();
    let mut infos: Vec<(usize, NodeId)> = Vec::new();
    let mut iter_index: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let prestige_handicap = graph.min_edge_weight().min(1.0);
    for (term, set) in keyword_sets.iter().enumerate() {
        for &origin in set {
            let idx = iterators.len();
            let mut iterator =
                Dijkstra::new(graph, origin, Direction::Reverse).with_max_dist(config.max_distance);
            if config.node_weight_in_distance {
                // §3: fold keyword-node prestige into the distance —
                // low-prestige origins start behind by up to one w_min.
                let handicap = (1.0 - scorer.node_score(origin)) * prestige_handicap;
                iterator = iterator.with_initial_dist(handicap);
            }
            iterators.push(iterator);
            infos.push((term, origin));
            iter_index.insert((term as u32, origin.0), idx);
        }
    }
    stats.iterators = iterators.len();

    let mut iter_heap: BinaryHeap<IterEntry> = BinaryHeap::with_capacity(iterators.len());
    for (idx, it) in iterators.iter_mut().enumerate() {
        if let Some(dist) = it.peek_dist() {
            iter_heap.push(IterEntry { dist, idx });
        }
    }

    // u.Lᵢ lists, allocated lazily per visited node.
    let mut node_lists: FxHashMap<u32, Vec<Vec<u32>>> = FxHashMap::default();
    let mut output = OutputHeap::new(config.output_heap_size);
    let mut dedup: HashMap<TreeSignature, DupState> = HashMap::new();
    let mut emitted: Vec<Answer> = Vec::new();

    while emitted.len() < config.max_results && stats.pops < config.max_pops {
        let Some(entry) = iter_heap.pop() else {
            break;
        };
        let (term, origin) = infos[entry.idx];
        let Some(visit) = iterators[entry.idx].next() else {
            continue;
        };
        stats.pops += 1;
        if let Some(dist) = iterators[entry.idx].peek_dist() {
            iter_heap.push(IterEntry {
                dist,
                idx: entry.idx,
            });
        }
        let u = visit.node;
        let lists = node_lists
            .entry(u.0)
            .or_insert_with(|| vec![Vec::new(); n_terms]);

        // Snapshot the other terms' origin lists for the cross product.
        let mut other: Vec<(usize, Vec<u32>)> = Vec::with_capacity(n_terms - 1);
        let mut all_nonempty = true;
        for (j, list) in lists.iter().enumerate() {
            if j == term {
                continue;
            }
            if list.is_empty() {
                all_nonempty = false;
                break;
            }
            other.push((j, list.clone()));
        }
        // "Insert origin in u.Lᵢ" — after the cross product snapshot.
        lists[term].push(origin.0);

        if !all_nonempty {
            continue;
        }

        // Enumerate the cross product with a mixed-radix counter.
        let total: usize = other
            .iter()
            .map(|(_, l)| l.len())
            .fold(1usize, |acc, len| acc.saturating_mul(len));
        let budget = total.min(config.max_cross_product);
        if total > budget {
            stats.cross_product_truncations += 1;
        }
        let mut counter = vec![0usize; other.len()];
        for _ in 0..budget {
            let mut origins = vec![NodeId(0); n_terms];
            origins[term] = origin;
            for (pos, &(j, ref list)) in other.iter().enumerate() {
                origins[j] = NodeId(list[counter[pos]]);
            }
            // Advance the counter for next combination.
            for pos in (0..counter.len()).rev() {
                counter[pos] += 1;
                if counter[pos] < other[pos].1.len() {
                    break;
                }
                counter[pos] = 0;
            }

            let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
            for (j, &o) in origins.iter().enumerate() {
                let idx = iter_index[&(j as u32, o.0)];
                let path = iterators[idx]
                    .path_edges(u)
                    .expect("iterator in u.Lj has settled u");
                edges.extend(path);
            }
            let tree = ConnectionTree::new(u, origins, edges);
            stats.trees_generated += 1;

            if excluded_roots.contains(&tuple_graph.relation_of(u)) {
                stats.excluded_roots += 1;
                continue;
            }
            if config.discard_single_child_root
                && tree.root_child_count() == 1
                && !tree.keyword_nodes.contains(&tree.root)
            {
                // A keyword-bearing root cannot be removed without
                // invalidating the answer, so the discard justification
                // ("the tree formed by removing the root node would also
                // have been generated") does not apply to it.
                stats.discarded_single_child += 1;
                continue;
            }
            let relevance = scorer.relevance(&tree);
            offer(
                Answer { tree, relevance },
                &mut output,
                &mut dedup,
                &mut emitted,
                config,
                &mut stats,
            );
            if emitted.len() >= config.max_results {
                break;
            }
        }
    }

    finish(emitted, output, config, stats)
}

/// Insert an answer into the output buffer, handling duplicate trees.
pub(super) fn offer(
    answer: Answer,
    output: &mut OutputHeap,
    dedup: &mut HashMap<TreeSignature, DupState>,
    emitted: &mut Vec<Answer>,
    config: &SearchConfig,
    stats: &mut SearchStats,
) {
    let sig = answer.tree.signature();
    if config.deduplicate {
        match dedup.get(&sig) {
            Some(DupState::Emitted) => {
                stats.duplicates_discarded += 1;
                return;
            }
            Some(DupState::InHeap) => {
                let existing = output.relevance_of(&sig).unwrap_or(f64::NEG_INFINITY);
                if answer.relevance > existing {
                    output.remove(&sig);
                    stats.duplicates_replaced += 1;
                } else {
                    stats.duplicates_discarded += 1;
                    return;
                }
            }
            None => {}
        }
        dedup.insert(sig.clone(), DupState::InHeap);
    }
    if let Some((out_answer, out_sig)) = output.push(answer, sig) {
        if config.deduplicate {
            dedup.insert(out_sig, DupState::Emitted);
        }
        emitted.push(out_answer);
    }
}

/// Drain the buffer and assemble the final ranked list.
pub(super) fn finish(
    mut emitted: Vec<Answer>,
    output: OutputHeap,
    config: &SearchConfig,
    mut stats: SearchStats,
) -> SearchOutcome {
    for (answer, _) in output.drain_sorted() {
        if emitted.len() >= config.max_results {
            break;
        }
        emitted.push(answer);
    }
    emitted.truncate(config.max_results);
    stats.trees_emitted = emitted.len();
    SearchOutcome {
        answers: emitted,
        stats,
    }
}

/// Fast path for single-term queries.
///
/// With `n = 1` the general algorithm only ever keeps single-node trees
/// (every multi-node tree rooted away from the keyword node has exactly
/// one root child and is discarded), so the answers are precisely the
/// keyword nodes ranked by relevance — prestige decides, which is how the
/// paper's "Mohan" anecdote works. We build those directly instead of
/// expanding the whole graph.
fn single_term_search(
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    set: &[NodeId],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    let mut output = OutputHeap::new(config.output_heap_size);
    let mut dedup: HashMap<TreeSignature, DupState> = HashMap::new();
    let mut emitted: Vec<Answer> = Vec::new();
    for &node in set {
        stats.trees_generated += 1;
        if excluded_roots.contains(&tuple_graph.relation_of(node)) {
            stats.excluded_roots += 1;
            continue;
        }
        let tree = ConnectionTree::new(node, vec![node], Vec::new());
        let relevance = scorer.relevance(&tree);
        offer(
            Answer { tree, relevance },
            &mut output,
            &mut dedup,
            &mut emitted,
            config,
            &mut stats,
        );
        if emitted.len() >= config.max_results {
            break;
        }
    }
    finish(emitted, output, config, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GraphConfig, ScoreParams};
    use crate::graph_build::TupleGraph;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    /// The Fig. 1 database: one paper by three authors, linked via Writes.
    fn fig1_db() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![
                Value::text("ChakrabartiSD98"),
                Value::text("Mining Surprising Patterns"),
            ],
        )
        .unwrap();
        for (id, name) in [
            ("SoumenC", "Soumen Chakrabarti"),
            ("SunitaS", "Sunita Sarawagi"),
            ("ByronD", "Byron Dom"),
        ] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
            db.insert(
                "Writes",
                vec![Value::text(id), Value::text("ChakrabartiSD98")],
            )
            .unwrap();
        }
        db
    }

    struct Fixture {
        db: Database,
        tg: TupleGraph,
    }

    fn fixture() -> Fixture {
        let db = fig1_db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        Fixture { db, tg }
    }

    fn author_node(f: &Fixture, id: &str) -> NodeId {
        let rid =
            f.db.relation("Author")
                .unwrap()
                .lookup_pk(&[Value::text(id)])
                .unwrap();
        f.tg.node(rid).unwrap()
    }

    fn paper_node(f: &Fixture, id: &str) -> NodeId {
        let rid =
            f.db.relation("Paper")
                .unwrap()
                .lookup_pk(&[Value::text(id)])
                .unwrap();
        f.tg.node(rid).unwrap()
    }

    fn run(f: &Fixture, sets: Vec<Vec<NodeId>>, config: &SearchConfig) -> SearchOutcome {
        let scorer = Scorer::new(f.tg.graph(), ScoreParams::default());
        backward_search(&f.tg, &scorer, &sets, config, &FxHashSet::default())
    }

    #[test]
    fn fig1_two_authors_connect_through_paper() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let outcome = run(
            &f,
            vec![vec![soumen], vec![sunita]],
            &SearchConfig::default(),
        );
        assert_eq!(outcome.answers.len(), 1, "exactly one connection tree");
        let tree = &outcome.answers[0].tree;
        assert_eq!(tree.root, paper_node(&f, "ChakrabartiSD98"));
        assert_eq!(tree.keyword_nodes, vec![soumen, sunita]);
        // Root (paper) → Writes → Author on both sides: 4 edges.
        assert_eq!(tree.edges.len(), 4);
        assert_eq!(tree.root_child_count(), 2);
        assert!(outcome.stats.trees_generated >= 1);
    }

    #[test]
    fn fig1_three_keywords_root_at_paper() {
        let f = fixture();
        let sets = vec![
            vec![author_node(&f, "SoumenC")],
            vec![author_node(&f, "SunitaS")],
            vec![author_node(&f, "ByronD")],
        ];
        let outcome = run(&f, sets, &SearchConfig::default());
        assert_eq!(outcome.answers.len(), 1);
        let tree = &outcome.answers[0].tree;
        assert_eq!(tree.root, paper_node(&f, "ChakrabartiSD98"));
        assert_eq!(tree.edges.len(), 6);
        assert_eq!(tree.root_child_count(), 3);
    }

    #[test]
    fn single_term_ranks_by_prestige() {
        let f = fixture();
        // Paper has indegree 3, authors 1 each: paper ranks first.
        let set = vec![
            author_node(&f, "SoumenC"),
            paper_node(&f, "ChakrabartiSD98"),
            author_node(&f, "ByronD"),
        ];
        let outcome = run(&f, vec![set], &SearchConfig::default());
        assert_eq!(outcome.answers.len(), 3);
        assert_eq!(
            outcome.answers[0].tree.root,
            paper_node(&f, "ChakrabartiSD98")
        );
        assert!(outcome.answers[0].relevance >= outcome.answers[1].relevance);
        assert!(outcome.stats.pops == 0, "fast path does not expand");
    }

    #[test]
    fn same_node_matching_both_terms_yields_single_node_tree() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        // "soumen chakrabarti" — both terms match the same author node.
        let outcome = run(
            &f,
            vec![vec![soumen], vec![soumen]],
            &SearchConfig::default(),
        );
        assert!(!outcome.answers.is_empty());
        let best = &outcome.answers[0];
        assert_eq!(best.tree.root, soumen);
        assert!(best.tree.edges.is_empty());
        assert_eq!(best.tree.keyword_nodes, vec![soumen, soumen]);
    }

    #[test]
    fn excluded_root_relations_suppress_roots() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let paper_rel = f.db.relation_id("Paper").unwrap().0;
        let mut excluded = FxHashSet::default();
        excluded.insert(paper_rel);
        let scorer = Scorer::new(f.tg.graph(), ScoreParams::default());
        let outcome = backward_search(
            &f.tg,
            &scorer,
            &[vec![soumen], vec![sunita]],
            &SearchConfig::default(),
            &excluded,
        );
        // With Paper excluded as information node, the same undirected
        // connection surfaces rooted at a Writes tuple instead (§3:
        // duplicates "represent the same result, except with different
        // information nodes").
        assert!(outcome.stats.excluded_roots > 0);
        for a in &outcome.answers {
            assert_ne!(
                f.tg.relation_of(a.tree.root),
                paper_rel,
                "no answer may be rooted at a Paper tuple"
            );
        }
    }

    #[test]
    fn empty_keyword_set_gives_no_answers() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let outcome = run(&f, vec![vec![soumen], vec![]], &SearchConfig::default());
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn max_results_bounds_output() {
        let f = fixture();
        let set = vec![
            author_node(&f, "SoumenC"),
            author_node(&f, "SunitaS"),
            author_node(&f, "ByronD"),
        ];
        let config = SearchConfig {
            max_results: 2,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![set], &config);
        assert_eq!(outcome.answers.len(), 2);
    }

    #[test]
    fn disconnected_keywords_give_no_answers() {
        // Two papers, no links at all between them.
        let mut db = Database::new("x");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = db.insert("Paper", vec![Value::text("a")]).unwrap();
        let b = db.insert("Paper", vec![Value::text("b")]).unwrap();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let outcome = backward_search(
            &tg,
            &scorer,
            &[vec![tg.node(a).unwrap()], vec![tg.node(b).unwrap()]],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert!(outcome.answers.is_empty());
        assert!(outcome.stats.pops > 0, "iterators did run");
    }

    #[test]
    fn max_pops_safety_valve() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let config = SearchConfig {
            max_pops: 1,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![vec![soumen], vec![sunita]], &config);
        assert!(outcome.stats.pops <= 1);
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn node_weight_in_distance_still_finds_the_answer() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let config = SearchConfig {
            node_weight_in_distance: true,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![vec![soumen], vec![sunita]], &config);
        assert_eq!(outcome.answers.len(), 1);
        assert_eq!(
            outcome.answers[0].tree.root,
            paper_node(&f, "ChakrabartiSD98")
        );
        // Distances are shifted but paths (and thus tree weight) are not.
        let plain = run(
            &f,
            vec![vec![soumen], vec![sunita]],
            &SearchConfig::default(),
        );
        assert_eq!(outcome.answers[0].tree.weight, plain.answers[0].tree.weight);
    }

    #[test]
    fn answers_unique_by_signature() {
        let f = fixture();
        // Both terms match both authors: four iterator pairs, but dedup
        // keeps distinct trees only.
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let outcome = run(
            &f,
            vec![vec![soumen, sunita], vec![soumen, sunita]],
            &SearchConfig::default(),
        );
        let mut sigs: Vec<_> = outcome.answers.iter().map(|a| a.tree.signature()).collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(before, sigs.len(), "duplicate trees in output");
    }
}
