//! Backward expanding search (§3, Figure 3).
//!
//! One Dijkstra iterator per keyword node runs over *reversed* edges; a
//! heap multiplexes the iterators by the distance of the next node each
//! would output. Every graph node `u` keeps one origin list per search
//! term (`u.Lᵢ`). When the iterator started at origin `o ∈ Sᵢ` visits `u`,
//! the cross product `{o} × Π_{j≠i} u.Lⱼ` enumerates exactly the new
//! connection trees rooted at `u`, after which `o` joins `u.Lᵢ`.
//!
//! The kernel runs on a [`SearchArena`]: dense epoch-stamped Dijkstra
//! states, the `u.Lᵢ` lists flattened into a linked-entry pool, and
//! reused cross-product scratch — plus exact top-k early termination
//! (the `EarlyStop` bound documented on
//! [`crate::score::Scorer::max_relevance_for_weight`]).
//! [`backward_search`] allocates a one-shot arena; long-lived callers
//! keep one per worker and call [`backward_search_in`].

use crate::answer::{Answer, ConnectionTree, TreeSignature};
use crate::config::SearchConfig;
use crate::graph_build::TupleGraph;
use crate::score::Scorer;
use crate::search::output_heap::OutputHeap;
use crate::search::{EarlyStop, RootPolicy, SearchOutcome, SearchStats};
use banks_graph::{
    CrossScratch, Dijkstra, Direction, FxHashMap, FxHashSet, NodeId, OriginListPool, SearchArena,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Iterator-heap entry: min-heap on the distance of the iterator's next
/// output ("ordered on the distance of the first node it will output").
#[derive(Debug, Clone, Copy)]
struct IterEntry {
    dist: f64,
    idx: usize,
}

impl PartialEq for IterEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for IterEntry {}
impl PartialOrd for IterEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IterEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Duplicate-tracking state per tree signature.
pub(super) enum DupState {
    /// Still buffered; may be replaced by a better-scoring twin.
    InHeap,
    /// Already output; later twins are discarded even if better (§3: "in
    /// that case we discard the new result").
    Emitted,
}

/// Run backward expanding search with a one-shot scratch arena.
///
/// `keyword_sets[i]` is the node set `Sᵢ` for term `i`; `excluded_roots`
/// holds relation ids whose tuples may not be information nodes.
pub fn backward_search(
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    backward_search_in(
        &mut SearchArena::new(),
        tuple_graph,
        scorer,
        keyword_sets,
        config,
        excluded_roots,
    )
}

/// As [`backward_search`], reusing a caller-owned [`SearchArena`] — the
/// steady-state serving path, where a worker thread's arena makes the
/// whole expansion allocation-free. Results are identical to the
/// one-shot form, bit for bit.
///
/// With `config.search_threads ≥ 2`, multi-keyword queries above the
/// `parallel_min_origins` cutover run on the parallel executor
/// ([`crate::search::parallel`]); its deterministic merge makes the
/// output — answers, scores, and execution stats — bit-identical to the
/// sequential kernel, so the thread count is purely a latency knob.
pub fn backward_search_in(
    arena: &mut SearchArena,
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let parallel_requested = config.search_threads > 1;
    if keyword_sets.is_empty() || keyword_sets.iter().any(|s| s.is_empty()) {
        return SearchOutcome {
            answers: Vec::new(),
            stats: SearchStats::default(),
        };
    }
    let total_origins: usize = keyword_sets.iter().map(|s| s.len()).sum();
    let mut outcome = if keyword_sets.len() == 1 {
        let span = arena.spans.begin();
        let policy = RootPolicy::new(tuple_graph, excluded_roots, config);
        let mut outcome = single_term_search(scorer, &keyword_sets[0], config, &policy);
        arena.spans.end("expand", 0, span);
        if parallel_requested {
            outcome.stats.sequential_fallbacks = 1;
        }
        outcome
    } else if parallel_requested && total_origins >= config.parallel_min_origins {
        // Per-shard expand spans and the merge span are recorded inside
        // the parallel executor, against the same buffer origin.
        crate::search::parallel::parallel_backward_search(
            arena,
            tuple_graph,
            scorer,
            keyword_sets,
            config,
            excluded_roots,
        )
    } else {
        let span = arena.spans.begin();
        let mut outcome = sequential_backward_search(
            arena,
            tuple_graph,
            scorer,
            keyword_sets,
            config,
            excluded_roots,
        );
        arena.spans.end("expand", 0, span);
        if parallel_requested {
            outcome.stats.sequential_fallbacks = 1;
        }
        outcome
    };
    arena.trim();
    outcome.stats.arena_retained_bytes = arena.retained_bytes();
    outcome
}

/// Construct the per-keyword-node reverse Dijkstra iterator exactly as
/// every executor must: bounded by `max_distance`, with the §3 prestige
/// handicap folded into the start distance when configured. Returns the
/// iterator and its handicap (0 when the option is off).
pub(super) fn make_iterator<'g>(
    graph: &'g banks_graph::Graph,
    origin: NodeId,
    state: banks_graph::DijkstraState,
    scorer: &Scorer<'_>,
    config: &SearchConfig,
    prestige_handicap: f64,
) -> (Dijkstra<'g>, f64) {
    let mut iterator = Dijkstra::new_in(graph, origin, Direction::Reverse, state)
        .with_max_dist(config.max_distance);
    let mut handicap = 0.0;
    if config.node_weight_in_distance {
        // §3: fold keyword-node prestige into the distance —
        // low-prestige origins start behind by up to one w_min.
        handicap = (1.0 - scorer.node_score(origin)) * prestige_handicap;
        iterator = iterator.with_initial_dist(handicap);
    }
    (iterator, handicap)
}

/// The sequential multi-term kernel (PR-4 shape): all iterators
/// multiplexed on one heap, visits processed inline by the shared
/// [`AnswerSink`].
fn sequential_backward_search(
    arena: &mut SearchArena,
    tuple_graph: &TupleGraph,
    scorer: &Scorer<'_>,
    keyword_sets: &[Vec<NodeId>],
    config: &SearchConfig,
    excluded_roots: &FxHashSet<u32>,
) -> SearchOutcome {
    let graph = tuple_graph.graph();
    let n_nodes = graph.node_count();
    let n_terms = keyword_sets.len();

    // One reverse-direction Dijkstra per keyword node, each running on a
    // pooled dense state block.
    let total_origins: usize = keyword_sets.iter().map(|s| s.len()).sum();
    let mut iterators: Vec<Dijkstra<'_>> = Vec::with_capacity(total_origins);
    let mut infos: Vec<(usize, NodeId)> = Vec::with_capacity(total_origins);
    let mut iter_index: FxHashMap<(u32, u32), usize> =
        FxHashMap::with_capacity_and_hasher(total_origins, Default::default());
    let prestige_handicap = graph.min_edge_weight().min(1.0);
    let mut max_handicap = 0.0f64;
    for (term, set) in keyword_sets.iter().enumerate() {
        for &origin in set {
            let idx = iterators.len();
            let (iterator, handicap) = make_iterator(
                graph,
                origin,
                arena.checkout(n_nodes),
                scorer,
                config,
                prestige_handicap,
            );
            max_handicap = max_handicap.max(handicap);
            iterators.push(iterator);
            infos.push((term, origin));
            iter_index.insert((term as u32, origin.0), idx);
        }
    }

    let mut iter_heap: BinaryHeap<IterEntry> = BinaryHeap::with_capacity(iterators.len());
    for (idx, it) in iterators.iter_mut().enumerate() {
        if let Some(dist) = it.peek_dist() {
            iter_heap.push(IterEntry { dist, idx });
        }
    }

    let policy = RootPolicy::new(tuple_graph, excluded_roots, config);
    let mut sink = AnswerSink::new(
        n_terms,
        &mut arena.lists,
        &mut arena.cross,
        policy,
        scorer,
        config,
        iter_index,
    );
    sink.stats.iterators = iterators.len();
    let mut early_stop = EarlyStop::new(config, scorer, max_handicap, keyword_sets);

    while sink.want_more() {
        // Cooperative cancellation: an expired request stops burning
        // CPU and returns whatever prefix it has produced (the serving
        // layer flags the result as partial and never caches it).
        if arena.deadline.expired() {
            sink.stats.deadline_expirations += 1;
            break;
        }
        let Some(&frontier) = iter_heap.peek() else {
            break;
        };
        if early_stop.should_stop(frontier.dist, sink.emitted.len(), &sink.output) {
            sink.stats.early_terminations += 1;
            break;
        }
        let entry = iter_heap.pop().expect("peeked entry");
        let (term, origin) = infos[entry.idx];
        let Some(visit) = iterators[entry.idx].next() else {
            continue;
        };
        sink.stats.pops += 1;
        if let Some(dist) = iterators[entry.idx].peek_dist() {
            iter_heap.push(IterEntry {
                dist,
                idx: entry.idx,
            });
        }
        sink.process_visit(visit.node, term, origin, |idx, node, out| {
            iterators[idx].path_edges_into(node, out)
        });
    }

    let outcome = sink.finish();
    for iterator in iterators {
        arena.recycle(iterator.into_state());
    }
    outcome
}

/// Shared §3 per-visit machinery: origin-list bookkeeping, cross-product
/// enumeration, duplicate handling, and answer buffering. The sequential
/// kernel and the parallel merge stage both drive exactly this code —
/// only the root→origin path source differs — so the two executors
/// cannot drift apart.
pub(super) struct AnswerSink<'a, 'g> {
    n_terms: usize,
    lists: &'a mut OriginListPool,
    cross: &'a mut CrossScratch,
    policy: RootPolicy<'a>,
    scorer: &'a Scorer<'g>,
    config: &'a SearchConfig,
    /// `(term, origin) → global iterator index`, the paper's "iterator
    /// of `o ∈ Sⱼ`" lookup for path reconstruction.
    iter_index: FxHashMap<(u32, u32), usize>,
    pub(super) output: OutputHeap,
    pub(super) dedup: FxHashMap<TreeSignature, DupState>,
    pub(super) emitted: Vec<Answer>,
    pub(super) stats: SearchStats,
}

impl<'a, 'g> AnswerSink<'a, 'g> {
    pub(super) fn new(
        n_terms: usize,
        lists: &'a mut OriginListPool,
        cross: &'a mut CrossScratch,
        policy: RootPolicy<'a>,
        scorer: &'a Scorer<'g>,
        config: &'a SearchConfig,
        iter_index: FxHashMap<(u32, u32), usize>,
    ) -> AnswerSink<'a, 'g> {
        lists.reset(n_terms);
        AnswerSink {
            n_terms,
            lists,
            cross,
            policy,
            scorer,
            config,
            iter_index,
            output: OutputHeap::new(config.output_heap_size),
            dedup: FxHashMap::with_capacity_and_hasher(
                config.output_heap_size + config.max_results,
                Default::default(),
            ),
            emitted: Vec::with_capacity(config.max_results),
            stats: SearchStats::default(),
        }
    }

    /// The main-loop continuation condition (§3 result and pop budgets).
    pub(super) fn want_more(&self) -> bool {
        self.emitted.len() < self.config.max_results && self.stats.pops < self.config.max_pops
    }

    /// Handle one settled node `u`, visited by the iterator of `origin ∈
    /// S_term`: snapshot the other terms' origin lists, append `origin`
    /// to `u.L_term`, and enumerate the new cross products. `path_into`
    /// appends the root→origin path edges of a given iterator (by
    /// global index), exactly as [`Dijkstra::path_edges_into`] would.
    pub(super) fn process_visit(
        &mut self,
        u: NodeId,
        term: usize,
        origin: NodeId,
        mut path_into: impl FnMut(usize, NodeId, &mut Vec<(NodeId, NodeId, f64)>) -> bool,
    ) {
        let base = self.lists.ensure(u.0);

        // Record the other terms' origin lists for the cross product —
        // borrowed straight from the flattened pool where the old kernel
        // cloned each `Vec<u32>` (the pool append below only touches
        // `term`'s own list).
        self.cross.clear_dims();
        let mut all_nonempty = true;
        for j in 0..self.n_terms {
            if j == term {
                continue;
            }
            let len = self.lists.len(base, j);
            if len == 0 {
                all_nonempty = false;
                break;
            }
            self.stats.clone_bytes_saved += len * std::mem::size_of::<u32>();
            self.cross.push_dim(j, self.lists.head(base, j), len);
        }
        // "Insert origin in u.Lᵢ" — after the cross product snapshot.
        self.lists.push(base, term, origin.0);

        if !all_nonempty {
            return;
        }

        let total: usize = self
            .cross
            .lens
            .iter()
            .fold(1usize, |acc, &len| acc.saturating_mul(len));
        let budget = total.min(self.config.max_cross_product);
        if total > budget {
            self.stats.cross_product_truncations += 1;
        }
        if self.policy.root_excluded(u) {
            // Every combination would be discarded; account for them
            // without materializing a single tree.
            self.stats.trees_generated += budget;
            self.stats.excluded_roots += budget;
            return;
        }

        // Enumerate the cross product with a mixed-radix counter whose
        // cursors walk the pooled lists in insertion order.
        let dims = self.cross.terms.len();
        self.cross.counter.clear();
        self.cross.counter.resize(dims, 0);
        self.cross.cursors.clear();
        let (cursors, heads) = (&mut self.cross.cursors, &self.cross.heads);
        cursors.extend_from_slice(heads);
        for _ in 0..budget {
            self.cross.origins.clear();
            self.cross.origins.resize(self.n_terms, NodeId(0));
            self.cross.origins[term] = origin;
            for pos in 0..dims {
                self.cross.origins[self.cross.terms[pos]] =
                    NodeId(self.lists.origin(self.cross.cursors[pos]));
            }
            // Advance the counter for next combination.
            for pos in (0..dims).rev() {
                self.cross.counter[pos] += 1;
                if self.cross.counter[pos] < self.cross.lens[pos] {
                    self.cross.cursors[pos] = self.lists.next(self.cross.cursors[pos]);
                    break;
                }
                self.cross.counter[pos] = 0;
                self.cross.cursors[pos] = self.cross.heads[pos];
            }

            self.cross.edges.clear();
            for (j, &o) in self.cross.origins.iter().enumerate() {
                let idx = self.iter_index[&(j as u32, o.0)];
                let ok = path_into(idx, u, &mut self.cross.edges);
                debug_assert!(ok, "iterator in u.Lj has settled u");
            }
            let tree = ConnectionTree::new(u, self.cross.origins.clone(), self.cross.edges.clone());
            self.stats.trees_generated += 1;

            if self.policy.discards_single_child(&tree) {
                self.stats.discarded_single_child += 1;
                continue;
            }
            let relevance = self.scorer.relevance(&tree);
            offer(
                Answer { tree, relevance },
                &mut self.output,
                &mut self.dedup,
                &mut self.emitted,
                self.config,
                &mut self.stats,
            );
            if self.emitted.len() >= self.config.max_results {
                break;
            }
        }
    }

    /// Drain the buffer into the final ranked list.
    pub(super) fn finish(self) -> SearchOutcome {
        finish(self.emitted, self.output, self.config, self.stats)
    }
}

/// Insert an answer into the output buffer, handling duplicate trees.
pub(super) fn offer(
    answer: Answer,
    output: &mut OutputHeap,
    dedup: &mut FxHashMap<TreeSignature, DupState>,
    emitted: &mut Vec<Answer>,
    config: &SearchConfig,
    stats: &mut SearchStats,
) {
    let sig = answer.tree.signature();
    if config.deduplicate {
        match dedup.get(&sig) {
            Some(DupState::Emitted) => {
                stats.duplicates_discarded += 1;
                return;
            }
            Some(DupState::InHeap) => {
                let existing = output.relevance_of(&sig).unwrap_or(f64::NEG_INFINITY);
                if answer.relevance > existing {
                    output.remove(&sig);
                    stats.duplicates_replaced += 1;
                } else {
                    stats.duplicates_discarded += 1;
                    return;
                }
            }
            None => {}
        }
        dedup.insert(sig.clone(), DupState::InHeap);
    }
    if let Some((out_answer, out_sig)) = output.push(answer, sig) {
        if config.deduplicate {
            dedup.insert(out_sig, DupState::Emitted);
        }
        emitted.push(out_answer);
    }
}

/// Drain the buffer and assemble the final ranked list.
pub(super) fn finish(
    mut emitted: Vec<Answer>,
    output: OutputHeap,
    config: &SearchConfig,
    mut stats: SearchStats,
) -> SearchOutcome {
    for (answer, _) in output.drain_sorted() {
        if emitted.len() >= config.max_results {
            break;
        }
        emitted.push(answer);
    }
    emitted.truncate(config.max_results);
    stats.trees_emitted = emitted.len();
    SearchOutcome {
        answers: emitted,
        stats,
    }
}

/// Fast path for single-term queries.
///
/// With `n = 1` the general algorithm only ever keeps single-node trees
/// (every multi-node tree rooted away from the keyword node has exactly
/// one root child and is discarded), so the answers are precisely the
/// keyword nodes ranked by relevance — prestige decides, which is how the
/// paper's "Mohan" anecdote works. We build those directly instead of
/// expanding the whole graph.
fn single_term_search(
    scorer: &Scorer<'_>,
    set: &[NodeId],
    config: &SearchConfig,
    policy: &RootPolicy<'_>,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    let mut output = OutputHeap::new(config.output_heap_size);
    let mut dedup: FxHashMap<TreeSignature, DupState> = FxHashMap::default();
    let mut emitted: Vec<Answer> = Vec::new();
    for &node in set {
        stats.trees_generated += 1;
        if policy.root_excluded(node) {
            stats.excluded_roots += 1;
            continue;
        }
        let tree = ConnectionTree::new(node, vec![node], Vec::new());
        debug_assert!(
            !policy.discards_single_child(&tree),
            "single-node keyword trees are never single-child-discardable"
        );
        let relevance = scorer.relevance(&tree);
        offer(
            Answer { tree, relevance },
            &mut output,
            &mut dedup,
            &mut emitted,
            config,
            &mut stats,
        );
        if emitted.len() >= config.max_results {
            break;
        }
    }
    finish(emitted, output, config, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GraphConfig, ScoreParams};
    use crate::graph_build::TupleGraph;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    /// The Fig. 1 database: one paper by three authors, linked via Writes.
    fn fig1_db() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![
                Value::text("ChakrabartiSD98"),
                Value::text("Mining Surprising Patterns"),
            ],
        )
        .unwrap();
        for (id, name) in [
            ("SoumenC", "Soumen Chakrabarti"),
            ("SunitaS", "Sunita Sarawagi"),
            ("ByronD", "Byron Dom"),
        ] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
            db.insert(
                "Writes",
                vec![Value::text(id), Value::text("ChakrabartiSD98")],
            )
            .unwrap();
        }
        db
    }

    struct Fixture {
        db: Database,
        tg: TupleGraph,
    }

    fn fixture() -> Fixture {
        let db = fig1_db();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        Fixture { db, tg }
    }

    fn author_node(f: &Fixture, id: &str) -> NodeId {
        let rid =
            f.db.relation("Author")
                .unwrap()
                .lookup_pk(&[Value::text(id)])
                .unwrap();
        f.tg.node(rid).unwrap()
    }

    fn paper_node(f: &Fixture, id: &str) -> NodeId {
        let rid =
            f.db.relation("Paper")
                .unwrap()
                .lookup_pk(&[Value::text(id)])
                .unwrap();
        f.tg.node(rid).unwrap()
    }

    fn run(f: &Fixture, sets: Vec<Vec<NodeId>>, config: &SearchConfig) -> SearchOutcome {
        let scorer = Scorer::new(f.tg.graph(), ScoreParams::default());
        backward_search(&f.tg, &scorer, &sets, config, &FxHashSet::default())
    }

    #[test]
    fn fig1_two_authors_connect_through_paper() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let outcome = run(
            &f,
            vec![vec![soumen], vec![sunita]],
            &SearchConfig::default(),
        );
        assert_eq!(outcome.answers.len(), 1, "exactly one connection tree");
        let tree = &outcome.answers[0].tree;
        assert_eq!(tree.root, paper_node(&f, "ChakrabartiSD98"));
        assert_eq!(tree.keyword_nodes, vec![soumen, sunita]);
        // Root (paper) → Writes → Author on both sides: 4 edges.
        assert_eq!(tree.edges.len(), 4);
        assert_eq!(tree.root_child_count(), 2);
        assert!(outcome.stats.trees_generated >= 1);
    }

    #[test]
    fn fig1_three_keywords_root_at_paper() {
        let f = fixture();
        let sets = vec![
            vec![author_node(&f, "SoumenC")],
            vec![author_node(&f, "SunitaS")],
            vec![author_node(&f, "ByronD")],
        ];
        let outcome = run(&f, sets, &SearchConfig::default());
        assert_eq!(outcome.answers.len(), 1);
        let tree = &outcome.answers[0].tree;
        assert_eq!(tree.root, paper_node(&f, "ChakrabartiSD98"));
        assert_eq!(tree.edges.len(), 6);
        assert_eq!(tree.root_child_count(), 3);
    }

    #[test]
    fn single_term_ranks_by_prestige() {
        let f = fixture();
        // Paper has indegree 3, authors 1 each: paper ranks first.
        let set = vec![
            author_node(&f, "SoumenC"),
            paper_node(&f, "ChakrabartiSD98"),
            author_node(&f, "ByronD"),
        ];
        let outcome = run(&f, vec![set], &SearchConfig::default());
        assert_eq!(outcome.answers.len(), 3);
        assert_eq!(
            outcome.answers[0].tree.root,
            paper_node(&f, "ChakrabartiSD98")
        );
        assert!(outcome.answers[0].relevance >= outcome.answers[1].relevance);
        assert!(outcome.stats.pops == 0, "fast path does not expand");
    }

    #[test]
    fn same_node_matching_both_terms_yields_single_node_tree() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        // "soumen chakrabarti" — both terms match the same author node.
        let outcome = run(
            &f,
            vec![vec![soumen], vec![soumen]],
            &SearchConfig::default(),
        );
        assert!(!outcome.answers.is_empty());
        let best = &outcome.answers[0];
        assert_eq!(best.tree.root, soumen);
        assert!(best.tree.edges.is_empty());
        assert_eq!(best.tree.keyword_nodes, vec![soumen, soumen]);
    }

    #[test]
    fn excluded_root_relations_suppress_roots() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let paper_rel = f.db.relation_id("Paper").unwrap().0;
        let mut excluded = FxHashSet::default();
        excluded.insert(paper_rel);
        let scorer = Scorer::new(f.tg.graph(), ScoreParams::default());
        let outcome = backward_search(
            &f.tg,
            &scorer,
            &[vec![soumen], vec![sunita]],
            &SearchConfig::default(),
            &excluded,
        );
        // With Paper excluded as information node, the same undirected
        // connection surfaces rooted at a Writes tuple instead (§3:
        // duplicates "represent the same result, except with different
        // information nodes").
        assert!(outcome.stats.excluded_roots > 0);
        for a in &outcome.answers {
            assert_ne!(
                f.tg.relation_of(a.tree.root),
                paper_rel,
                "no answer may be rooted at a Paper tuple"
            );
        }
    }

    #[test]
    fn empty_keyword_set_gives_no_answers() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let outcome = run(&f, vec![vec![soumen], vec![]], &SearchConfig::default());
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn max_results_bounds_output() {
        let f = fixture();
        let set = vec![
            author_node(&f, "SoumenC"),
            author_node(&f, "SunitaS"),
            author_node(&f, "ByronD"),
        ];
        let config = SearchConfig {
            max_results: 2,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![set], &config);
        assert_eq!(outcome.answers.len(), 2);
    }

    #[test]
    fn disconnected_keywords_give_no_answers() {
        // Two papers, no links at all between them.
        let mut db = Database::new("x");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = db.insert("Paper", vec![Value::text("a")]).unwrap();
        let b = db.insert("Paper", vec![Value::text("b")]).unwrap();
        let tg = TupleGraph::build(&db, &GraphConfig::default()).unwrap();
        let scorer = Scorer::new(tg.graph(), ScoreParams::default());
        let outcome = backward_search(
            &tg,
            &scorer,
            &[vec![tg.node(a).unwrap()], vec![tg.node(b).unwrap()]],
            &SearchConfig::default(),
            &FxHashSet::default(),
        );
        assert!(outcome.answers.is_empty());
        assert!(outcome.stats.pops > 0, "iterators did run");
    }

    #[test]
    fn max_pops_safety_valve() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let config = SearchConfig {
            max_pops: 1,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![vec![soumen], vec![sunita]], &config);
        assert!(outcome.stats.pops <= 1);
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn node_weight_in_distance_still_finds_the_answer() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let config = SearchConfig {
            node_weight_in_distance: true,
            ..SearchConfig::default()
        };
        let outcome = run(&f, vec![vec![soumen], vec![sunita]], &config);
        assert_eq!(outcome.answers.len(), 1);
        assert_eq!(
            outcome.answers[0].tree.root,
            paper_node(&f, "ChakrabartiSD98")
        );
        // Distances are shifted but paths (and thus tree weight) are not.
        let plain = run(
            &f,
            vec![vec![soumen], vec![sunita]],
            &SearchConfig::default(),
        );
        assert_eq!(outcome.answers[0].tree.weight, plain.answers[0].tree.weight);
    }

    #[test]
    fn answers_unique_by_signature() {
        let f = fixture();
        // Both terms match both authors: four iterator pairs, but dedup
        // keeps distinct trees only.
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let outcome = run(
            &f,
            vec![vec![soumen, sunita], vec![soumen, sunita]],
            &SearchConfig::default(),
        );
        let mut sigs: Vec<_> = outcome.answers.iter().map(|a| a.tree.signature()).collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(before, sigs.len(), "duplicate trees in output");
    }

    #[test]
    fn reused_arena_is_bit_identical_to_one_shot() {
        let f = fixture();
        let scorer = Scorer::new(f.tg.graph(), ScoreParams::default());
        let queries: Vec<Vec<Vec<NodeId>>> = vec![
            vec![
                vec![author_node(&f, "SoumenC")],
                vec![author_node(&f, "SunitaS")],
            ],
            vec![
                vec![author_node(&f, "SoumenC"), author_node(&f, "ByronD")],
                vec![author_node(&f, "SunitaS")],
            ],
            vec![vec![paper_node(&f, "ChakrabartiSD98")]],
        ];
        let config = SearchConfig::default();
        let mut arena = SearchArena::new();
        for sets in &queries {
            let fresh = backward_search(&f.tg, &scorer, sets, &config, &FxHashSet::default());
            let reused = backward_search_in(
                &mut arena,
                &f.tg,
                &scorer,
                sets,
                &config,
                &FxHashSet::default(),
            );
            assert_eq!(fresh.stats, reused.stats);
            assert_eq!(fresh.answers.len(), reused.answers.len());
            for (a, b) in fresh.answers.iter().zip(&reused.answers) {
                assert_eq!(a.tree, b.tree);
                assert_eq!(a.relevance.to_bits(), b.relevance.to_bits());
            }
        }
        let (_, reuses) = arena.state_counters();
        assert!(reuses > 0, "later queries reuse pooled states");
    }

    #[test]
    fn early_termination_matches_exhaustive_run() {
        let f = fixture();
        // Both terms match every author: plenty of trees, so the bound
        // can fire once the top answers are settled.
        let all = vec![
            author_node(&f, "SoumenC"),
            author_node(&f, "SunitaS"),
            author_node(&f, "ByronD"),
        ];
        for max_results in [1usize, 2, 3] {
            let early = run(
                &f,
                vec![all.clone(), all.clone()],
                &SearchConfig {
                    max_results,
                    ..SearchConfig::default()
                },
            );
            let exhaustive = run(
                &f,
                vec![all.clone(), all.clone()],
                &SearchConfig {
                    max_results,
                    early_termination: false,
                    ..SearchConfig::default()
                },
            );
            assert_eq!(early.answers.len(), exhaustive.answers.len());
            for (a, b) in early.answers.iter().zip(&exhaustive.answers) {
                assert_eq!(a.tree.signature(), b.tree.signature());
                assert_eq!(a.relevance.to_bits(), b.relevance.to_bits());
            }
            assert!(early.stats.pops <= exhaustive.stats.pops);
            assert_eq!(exhaustive.stats.early_terminations, 0);
        }
    }

    #[test]
    fn flattened_lists_count_saved_clone_bytes() {
        let f = fixture();
        let soumen = author_node(&f, "SoumenC");
        let sunita = author_node(&f, "SunitaS");
        let outcome = run(
            &f,
            vec![vec![soumen], vec![sunita]],
            &SearchConfig::default(),
        );
        assert!(
            outcome.stats.clone_bytes_saved > 0,
            "cross products borrowed lists the old kernel would clone"
        );
    }
}
