//! The fixed-size output buffer of §3.
//!
//! Connection trees are generated in (approximately) increasing tree-weight
//! order, but relevance also depends on node prestige, so generation order
//! is not relevance order. "To avoid these overheads, as a heuristic, we
//! maintain a small fixed-size heap of generated connection trees … When
//! the heap is full, and we want to add a new tree, we output the tree of
//! highest relevance and replace it in the heap."
//!
//! Capacities are small (the paper found "a reasonably small heap size"
//! sufficient; our default is 30), so this is a plain vector with linear
//! scans rather than a binary heap — simpler, and it must support removal
//! by signature for duplicate replacement anyway.

use crate::answer::{Answer, TreeSignature};

/// Fixed-capacity relevance buffer.
#[derive(Debug, Clone)]
pub struct OutputHeap {
    capacity: usize,
    entries: Vec<(Answer, TreeSignature)>,
    /// Bumped on every content change, so the early-termination cutoff
    /// (a scan of this buffer) can be memoized between iterator pops.
    version: u64,
}

impl OutputHeap {
    /// Create a buffer holding at most `capacity` answers.
    pub fn new(capacity: usize) -> OutputHeap {
        assert!(capacity >= 1, "output heap capacity must be >= 1");
        OutputHeap {
            capacity,
            entries: Vec::with_capacity(capacity + 1),
            version: 0,
        }
    }

    /// Monotone content-change counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Relevance of the `k`-th best buffered answer (1-based), or `None`
    /// when fewer than `k` answers are buffered. This is the
    /// early-termination cutoff: with `k` answers still owed, a future
    /// tree must beat this value to alter the final output.
    pub fn kth_best_relevance(&self, k: usize) -> Option<f64> {
        if k == 0 || self.entries.len() < k {
            return None;
        }
        let mut rels: Vec<f64> = self.entries.iter().map(|(a, _)| a.relevance).collect();
        rels.sort_unstable_by(|a, b| b.total_cmp(a));
        Some(rels[k - 1])
    }

    /// Number of buffered answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert an answer. If the buffer overflows, the highest-relevance
    /// answer (which may be the new one) is emitted and returned.
    pub fn push(&mut self, answer: Answer, sig: TreeSignature) -> Option<(Answer, TreeSignature)> {
        self.version += 1;
        self.entries.push((answer, sig));
        if self.entries.len() <= self.capacity {
            return None;
        }
        let best = self.best_index()?;
        Some(self.entries.swap_remove(best))
    }

    /// Relevance of the buffered answer with the given signature.
    pub fn relevance_of(&self, sig: &TreeSignature) -> Option<f64> {
        self.entries
            .iter()
            .find(|(_, s)| s == sig)
            .map(|(a, _)| a.relevance)
    }

    /// Remove the buffered answer with the given signature.
    pub fn remove(&mut self, sig: &TreeSignature) -> Option<Answer> {
        let idx = self.entries.iter().position(|(_, s)| s == sig)?;
        self.version += 1;
        Some(self.entries.swap_remove(idx).0)
    }

    /// Index of the highest-relevance entry (ties: lower tree weight wins,
    /// then insertion order).
    fn best_index(&self) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for i in 1..self.entries.len() {
            let (a, _) = &self.entries[i];
            let (b, _) = &self.entries[best];
            let better = a.relevance > b.relevance
                || (a.relevance == b.relevance && a.tree.weight < b.tree.weight);
            if better {
                best = i;
            }
        }
        Some(best)
    }

    /// Drain all remaining answers in decreasing relevance order ("when all
    /// answers have been generated, the remaining trees in the heap are
    /// output in decreasing order of relevance").
    pub fn drain_sorted(mut self) -> Vec<(Answer, TreeSignature)> {
        self.entries.sort_by(|(a, _), (b, _)| {
            b.relevance
                .total_cmp(&a.relevance)
                .then(a.tree.weight.total_cmp(&b.tree.weight))
        });
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::ConnectionTree;
    use banks_graph::NodeId;

    fn answer(id: u32, relevance: f64) -> (Answer, TreeSignature) {
        let tree = ConnectionTree::new(NodeId(id), vec![NodeId(id)], vec![]);
        let sig = tree.signature();
        (Answer { tree, relevance }, sig)
    }

    #[test]
    fn no_emission_until_full() {
        let mut h = OutputHeap::new(3);
        for i in 0..3 {
            let (a, s) = answer(i, i as f64 / 10.0);
            assert!(h.push(a, s).is_none());
        }
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn overflow_emits_highest_relevance() {
        let mut h = OutputHeap::new(2);
        let (a0, s0) = answer(0, 0.1);
        let (a1, s1) = answer(1, 0.9);
        let (a2, s2) = answer(2, 0.5);
        h.push(a0, s0);
        h.push(a1, s1);
        let (emitted, _) = h.push(a2, s2).unwrap();
        assert_eq!(emitted.relevance, 0.9);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn overflow_can_emit_the_new_answer() {
        let mut h = OutputHeap::new(2);
        let (a0, s0) = answer(0, 0.1);
        let (a1, s1) = answer(1, 0.2);
        let (a2, s2) = answer(2, 0.95);
        h.push(a0, s0);
        h.push(a1, s1);
        let (emitted, _) = h.push(a2, s2).unwrap();
        assert_eq!(emitted.relevance, 0.95);
    }

    #[test]
    fn remove_by_signature() {
        let mut h = OutputHeap::new(3);
        let (a0, s0) = answer(0, 0.1);
        let (a1, s1) = answer(1, 0.2);
        let s0c = s0.clone();
        h.push(a0, s0);
        h.push(a1, s1);
        assert_eq!(h.relevance_of(&s0c), Some(0.1));
        let removed = h.remove(&s0c).unwrap();
        assert_eq!(removed.relevance, 0.1);
        assert_eq!(h.len(), 1);
        assert!(h.remove(&s0c).is_none());
        assert_eq!(h.relevance_of(&s0c), None);
    }

    #[test]
    fn drain_descending() {
        let mut h = OutputHeap::new(5);
        for (i, r) in [(0u32, 0.3), (1, 0.9), (2, 0.1), (3, 0.5)] {
            let (a, s) = answer(i, r);
            h.push(a, s);
        }
        let drained = h.drain_sorted();
        let rels: Vec<f64> = drained.iter().map(|(a, _)| a.relevance).collect();
        assert_eq!(rels, vec![0.9, 0.5, 0.3, 0.1]);
    }

    #[test]
    fn tie_break_prefers_lighter_tree() {
        let mut h = OutputHeap::new(1);
        let light = Answer {
            tree: ConnectionTree::new(
                NodeId(0),
                vec![NodeId(1)],
                vec![(NodeId(0), NodeId(1), 1.0)],
            ),
            relevance: 0.5,
        };
        let heavy = Answer {
            tree: ConnectionTree::new(
                NodeId(2),
                vec![NodeId(3)],
                vec![(NodeId(2), NodeId(3), 9.0)],
            ),
            relevance: 0.5,
        };
        let ls = light.tree.signature();
        let hs = heavy.tree.signature();
        h.push(heavy, hs);
        let (emitted, _) = h.push(light, ls).unwrap();
        assert_eq!(emitted.tree.weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        OutputHeap::new(0);
    }

    #[test]
    fn kth_best_and_version_track_contents() {
        let mut h = OutputHeap::new(5);
        assert_eq!(h.version(), 0);
        assert_eq!(h.kth_best_relevance(1), None);
        for (i, r) in [(0u32, 0.3), (1, 0.9), (2, 0.1), (3, 0.5)] {
            let (a, s) = answer(i, r);
            h.push(a, s);
        }
        assert_eq!(h.version(), 4);
        assert_eq!(h.kth_best_relevance(1), Some(0.9));
        assert_eq!(h.kth_best_relevance(3), Some(0.3));
        assert_eq!(h.kth_best_relevance(4), Some(0.1));
        assert_eq!(h.kth_best_relevance(5), None, "only four buffered");
        assert_eq!(h.kth_best_relevance(0), None);
        let (_, s) = answer(1, 0.9);
        h.remove(&s);
        assert_eq!(h.version(), 5);
        assert_eq!(h.kth_best_relevance(1), Some(0.5));
    }
}
