//! The `Banks` facade: load a database, build indexes and the data graph
//! once, then answer keyword queries.

use crate::answer::Answer;
use crate::config::BanksConfig;
use crate::error::BanksResult;
use crate::graph_build::TupleGraph;
use crate::matching::{match_query, TermMatch};
use crate::query::Query;
use crate::score::Scorer;
use crate::search::{backward_search_in, forward_search_in, SearchArena, SearchOutcome};
use crate::summarize::{summarize, AnswerGroup};
use banks_graph::{FxHashSet, NodeId};
use banks_storage::{Database, MetadataIndex, TextIndex, Tokenizer};

/// §2.3's node-relevance extension: when some keyword node matched only
/// approximately, scale each answer's relevance by the mean match
/// relevance of its chosen keyword nodes and restore descending order.
/// Exact matches all carry relevance 1.0, so the common path is a no-op.
fn apply_node_relevances(matches: &[crate::matching::TermMatch], outcome: &mut SearchOutcome) {
    if matches.iter().all(|m| m.relevances.is_empty()) {
        return;
    }
    for answer in &mut outcome.answers {
        let mut total = 0.0;
        let mut count = 0usize;
        for (term, &node) in matches.iter().zip(&answer.tree.keyword_nodes) {
            total += term.relevance(node);
            count += 1;
        }
        if count > 0 {
            answer.relevance *= total / count as f64;
        }
    }
    outcome
        .answers
        .sort_by(|a, b| b.relevance.total_cmp(&a.relevance));
}

/// Which search algorithm executes queries.
///
/// `Hash` so serving layers can key result caches on the strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Backward expanding search (§3) — the paper's algorithm.
    #[default]
    Backward,
    /// Forward search (§7) — faster when some term matches many nodes.
    Forward,
}

/// A ready-to-query BANKS instance.
///
/// Construction tokenizes and indexes every relation and materializes the
/// data graph (the paper's "graph load" phase, measured in §5.2). The
/// database is then owned immutably; rebuild the instance after bulk
/// updates.
///
/// ```
/// use banks_core::Banks;
/// use banks_storage::{ColumnType, Database, RelationSchema, Value};
///
/// let mut db = Database::new("mini");
/// db.create_relation(
///     RelationSchema::builder("Paper")
///         .column("Id", ColumnType::Text)
///         .column("Title", ColumnType::Text)
///         .primary_key(&["Id"])
///         .build()
///         .unwrap(),
/// )
/// .unwrap();
/// db.insert("Paper", vec![Value::text("p1"), Value::text("The Transaction Concept")])
///     .unwrap();
/// let banks = Banks::new(db).unwrap();
/// let answers = banks.search("transaction").unwrap();
/// assert_eq!(answers.len(), 1);
/// ```
#[derive(Debug)]
pub struct Banks {
    db: Database,
    config: BanksConfig,
    tokenizer: Tokenizer,
    text_index: TextIndex,
    metadata_index: MetadataIndex,
    tuple_graph: TupleGraph,
    excluded_roots: FxHashSet<u32>,
}

impl Banks {
    /// Build with the default configuration (the paper's best settings).
    pub fn new(db: Database) -> BanksResult<Banks> {
        Banks::with_config(db, BanksConfig::default())
    }

    /// Build with an explicit configuration.
    pub fn with_config(db: Database, config: BanksConfig) -> BanksResult<Banks> {
        // Validate before the (expensive) graph build; `with_graph`
        // validates again but that repeat is cheap.
        config.validate()?;
        let tuple_graph = TupleGraph::build(&db, &config.graph)?;
        Banks::with_graph(db, config, tuple_graph)
    }

    /// Build around a pre-materialized data graph — the snapshot-restore
    /// path: a CSR graph read back via `banks_graph::snapshot` (see
    /// [`TupleGraph::rebind`]) skips the §5.2 "graph load" phase of edge
    /// derivation, so a server restart only pays for index builds.
    ///
    /// The graph must describe exactly this database (one node per tuple
    /// in scan order); node count **and** per-relation catalog layout are
    /// verified via [`TupleGraph::verify_catalog`], and a mismatched
    /// snapshot is rejected with the typed
    /// [`BanksError::SnapshotMismatch`](crate::BanksError::SnapshotMismatch).
    pub fn with_graph(
        db: Database,
        config: BanksConfig,
        tuple_graph: TupleGraph,
    ) -> BanksResult<Banks> {
        // Reject a bad config or an obviously mismatched snapshot before
        // paying for the text index — the most expensive derived build.
        // `from_parts` repeats these checks; the repeat is cheap.
        config.validate()?;
        tuple_graph.verify_catalog(&db)?;
        let tokenizer = Tokenizer::new();
        let text_index = TextIndex::build(&db, &tokenizer);
        Banks::from_parts(db, config, tuple_graph, text_index)
    }

    /// Re-snapshot hook: assemble a `Banks` from independently maintained
    /// parts — the publication path of live ingestion, where the data
    /// graph was patched incrementally (`banks-graph`'s `GraphPatch`) and
    /// the text index updated posting-by-posting instead of either being
    /// re-derived from scratch.
    ///
    /// The graph is validated against the database exactly as in
    /// [`Banks::with_graph`]; the text index is trusted (it has no
    /// derivable summary to check cheaply), which is the same contract a
    /// bulk [`TextIndex::build`] caller gets. The cheap derived
    /// structures — metadata index, excluded-root set — are rebuilt here,
    /// so callers never hand over internally inconsistent pieces.
    pub fn from_parts(
        db: Database,
        config: BanksConfig,
        tuple_graph: TupleGraph,
        text_index: TextIndex,
    ) -> BanksResult<Banks> {
        config.validate()?;
        tuple_graph.verify_catalog(&db)?;
        let tokenizer = Tokenizer::new();
        let metadata_index = MetadataIndex::build(&db, &tokenizer);
        let mut excluded_roots = FxHashSet::default();
        for name in &config.search.excluded_root_relations {
            if let Ok(id) = db.relation_id(name) {
                excluded_roots.insert(id.0);
            }
        }
        Ok(Banks {
            db,
            config,
            tokenizer,
            text_index,
            metadata_index,
            tuple_graph,
            excluded_roots,
        })
    }

    /// Answer a keyword query with the configured `max_results`.
    pub fn search(&self, query_text: &str) -> BanksResult<Vec<Answer>> {
        Ok(self.search_outcome(query_text)?.answers)
    }

    /// Answer a keyword query, also returning execution counters.
    pub fn search_outcome(&self, query_text: &str) -> BanksResult<SearchOutcome> {
        self.search_with(query_text, SearchStrategy::Backward, &self.config)
    }

    /// Full-control entry point: explicit strategy and configuration.
    ///
    /// Two parts of `config` are fixed at construction time and ignored
    /// here: the graph section (the graph is built once) and
    /// `search.excluded_root_relations` (resolved to relation ids when
    /// the instance was created). Everything else — matching, scoring,
    /// and the remaining search knobs — applies per call, which is how
    /// the Figure 5 parameter sweep reuses one graph across settings.
    pub fn search_with(
        &self,
        query_text: &str,
        strategy: SearchStrategy,
        config: &BanksConfig,
    ) -> BanksResult<SearchOutcome> {
        let query = Query::parse(query_text, &self.tokenizer)?;
        self.search_parsed(&query, strategy, config)
    }

    /// As [`Banks::search_with`], for an already-parsed [`Query`].
    /// Serving layers parse once — to validate before touching their
    /// result cache — and reuse the parse here instead of paying for a
    /// second tokenization per cold query.
    pub fn search_parsed(
        &self,
        query: &Query,
        strategy: SearchStrategy,
        config: &BanksConfig,
    ) -> BanksResult<SearchOutcome> {
        self.search_parsed_in(query, strategy, config, &mut SearchArena::new())
    }

    /// As [`Banks::search_parsed`], executing on a caller-owned
    /// [`SearchArena`] — the zero-allocation serving path. A worker
    /// thread keeps one arena for its lifetime and threads it through
    /// every query; the kernel's dense Dijkstra states, origin lists and
    /// cross-product scratch are then recycled instead of reallocated,
    /// and they resize automatically when ingestion publishes a snapshot
    /// with a different graph size. Results are bit-identical to the
    /// fresh-allocation path.
    pub fn search_parsed_in(
        &self,
        query: &Query,
        strategy: SearchStrategy,
        config: &BanksConfig,
        arena: &mut SearchArena,
    ) -> BanksResult<SearchOutcome> {
        let span = arena.spans.begin();
        let matches = self.match_terms(query, config)?;
        arena.spans.end("match", 0, span);
        let keyword_sets: Vec<Vec<NodeId>> = matches.iter().map(|m| m.nodes.clone()).collect();
        let scorer = Scorer::new(self.tuple_graph.graph(), config.score);
        let mut outcome = match strategy {
            SearchStrategy::Backward => backward_search_in(
                arena,
                &self.tuple_graph,
                &scorer,
                &keyword_sets,
                &config.search,
                &self.excluded_roots,
            ),
            SearchStrategy::Forward => forward_search_in(
                arena,
                &self.tuple_graph,
                &scorer,
                &keyword_sets,
                &config.search,
                &self.excluded_roots,
            ),
        };
        let span = arena.spans.begin();
        apply_node_relevances(&matches, &mut outcome);
        arena.spans.end("score", 0, span);
        Ok(outcome)
    }

    /// Answer a keyword query on a caller-owned arena, with execution
    /// counters — the convenience form benchmarks and workers use.
    pub fn search_outcome_in(
        &self,
        query_text: &str,
        arena: &mut SearchArena,
    ) -> BanksResult<SearchOutcome> {
        let query = Query::parse(query_text, &self.tokenizer)?;
        self.search_parsed_in(&query, SearchStrategy::Backward, &self.config, arena)
    }

    /// Answer several queries concurrently, one OS thread per query
    /// (capped at the available parallelism).
    ///
    /// `Banks` is immutable after construction, so queries share the
    /// graph and indexes without synchronization — the multi-user serving
    /// scenario of the original web deployment.
    pub fn search_batch(&self, queries: &[&str]) -> Vec<BanksResult<Vec<Answer>>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(1);
        let mut results: Vec<BanksResult<Vec<Answer>>> = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(threads) {
            let chunk_results = std::thread::scope(|scope| {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|q| scope.spawn(move || self.search(q)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search thread panicked"))
                    .collect::<Vec<_>>()
            });
            results.extend(chunk_results);
        }
        results
    }

    /// Match query terms to node sets without running the search.
    pub fn match_terms(&self, query: &Query, config: &BanksConfig) -> BanksResult<Vec<TermMatch>> {
        match_query(
            &self.db,
            &self.text_index,
            &self.metadata_index,
            &self.tuple_graph,
            query,
            &config.matching,
        )
    }

    /// Parse query text with this instance's tokenizer.
    pub fn parse(&self, query_text: &str) -> BanksResult<Query> {
        Query::parse(query_text, &self.tokenizer)
    }

    /// Render an answer as indented text (Figure 2 style).
    pub fn render_answer(&self, answer: &Answer) -> String {
        answer.tree.render(&self.db, &self.tuple_graph)
    }

    /// Group answers by schema-level tree shape (§7 summarization).
    pub fn summarize(&self, answers: &[Answer]) -> Vec<AnswerGroup> {
        summarize(&self.db, &self.tuple_graph, answers)
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The data graph.
    pub fn tuple_graph(&self) -> &TupleGraph {
        &self.tuple_graph
    }

    /// The inverted keyword index.
    pub fn text_index(&self) -> &TextIndex {
        &self.text_index
    }

    /// The active configuration.
    pub fn config(&self) -> &BanksConfig {
        &self.config
    }

    /// Total index+graph memory, in bytes (§5.2 space accounting).
    pub fn memory_bytes(&self) -> usize {
        self.tuple_graph.memory_bytes() + self.text_index.memory_bytes()
    }
}

// A built `Banks` is immutable and interior-mutability-free, so one
// instance can be shared across any number of query threads (the
// multi-user serving scenario of the original web deployment). The
// serving layer (`banks-server`) relies on this; break it and this
// assertion fails to compile.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Banks>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, RelationSchema, Value};

    /// The paper's Fig. 1 database plus a second paper to make ranking
    /// interesting.
    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [
            ("SoumenC", "Soumen Chakrabarti"),
            ("SunitaS", "Sunita Sarawagi"),
            ("ByronD", "Byron Dom"),
        ] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        for (id, title) in [
            (
                "ChakrabartiSD98",
                "Mining Surprising Patterns Using Temporal Description Length",
            ),
            ("SarawagiC00", "Scalable Mining For Classification Rules"),
        ] {
            db.insert("Paper", vec![Value::text(id), Value::text(title)])
                .unwrap();
        }
        for (a, p) in [
            ("SoumenC", "ChakrabartiSD98"),
            ("SunitaS", "ChakrabartiSD98"),
            ("ByronD", "ChakrabartiSD98"),
            ("SoumenC", "SarawagiC00"),
            ("SunitaS", "SarawagiC00"),
        ] {
            db.insert("Writes", vec![Value::text(a), Value::text(p)])
                .unwrap();
        }
        db
    }

    #[test]
    fn soumen_sunita_returns_coauthored_papers() {
        let banks = Banks::new(dblp()).unwrap();
        let answers = banks.search("soumen sunita").unwrap();
        assert_eq!(answers.len(), 2, "two co-authored papers");
        for a in &answers {
            let rid = banks.tuple_graph().rid(a.tree.root);
            let rel = banks.db().table(rid.relation).schema().name.clone();
            assert_eq!(rel, "Paper", "information node is a paper");
        }
    }

    #[test]
    fn render_produces_figure2_style_output() {
        let banks = Banks::new(dblp()).unwrap();
        let answers = banks.search("soumen sunita").unwrap();
        let text = banks.render_answer(&answers[0]);
        assert!(text.contains("Paper("));
        assert!(text.contains("Writes("));
        assert!(text.contains("*Author("), "keyword nodes are starred");
        // Indentation grows along the tree.
        assert!(text.lines().any(|l| l.starts_with("    ")));
    }

    #[test]
    fn metadata_query_author_matches_all_authors() {
        let banks = Banks::new(dblp()).unwrap();
        // "author" matches the Author relation name (3 tuples) and the
        // AuthorId column of Writes (5 tuples): 8 single-node answers,
        // ranked by prestige, so the referenced Author tuples come first.
        let answers = banks.search("author").unwrap();
        assert_eq!(answers.len(), 8);
        for a in &answers[..3] {
            let rid = banks.tuple_graph().rid(a.tree.root);
            assert_eq!(banks.db().table(rid.relation).schema().name, "Author");
        }
    }

    #[test]
    fn qualified_search() {
        let banks = Banks::new(dblp()).unwrap();
        let answers = banks.search("AuthorName:byron").unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn unmatched_term_yields_empty() {
        let banks = Banks::new(dblp()).unwrap();
        let answers = banks.search("soumen xyzzy").unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn empty_query_is_error() {
        let banks = Banks::new(dblp()).unwrap();
        assert!(banks.search("").is_err());
    }

    #[test]
    fn excluded_root_config_respected() {
        let mut config = BanksConfig::default();
        config.search.excluded_root_relations = vec!["Paper".into()];
        let banks = Banks::with_config(dblp(), config).unwrap();
        // The connection still surfaces, but rooted at a non-Paper tuple
        // (the duplicate rooted at a Writes node).
        let answers = banks.search("soumen sunita").unwrap();
        for a in &answers {
            let rid = banks.tuple_graph().rid(a.tree.root);
            assert_ne!(banks.db().table(rid.relation).schema().name, "Paper");
        }
    }

    #[test]
    fn forward_strategy_agrees_on_root_relation() {
        let banks = Banks::new(dblp()).unwrap();
        let outcome = banks
            .search_with("soumen byron", SearchStrategy::Forward, banks.config())
            .unwrap();
        assert!(!outcome.answers.is_empty());
        let rid = banks.tuple_graph().rid(outcome.answers[0].tree.root);
        assert_eq!(banks.db().table(rid.relation).schema().name, "Paper");
    }

    #[test]
    fn summarize_groups_equal_shapes() {
        let banks = Banks::new(dblp()).unwrap();
        let answers = banks.search("soumen sunita").unwrap();
        let groups = banks.summarize(&answers);
        assert_eq!(groups.len(), 1, "both answers share the coauthor shape");
        assert_eq!(groups[0].answers.len(), 2);
    }

    #[test]
    fn memory_reporting() {
        let banks = Banks::new(dblp()).unwrap();
        assert!(banks.memory_bytes() > 0);
    }

    #[test]
    fn node_relevance_ranks_exact_above_fuzzy() {
        // Add a decoy author whose name is one edit away from "sunita";
        // with approximate matching on, exact-match answers must outrank
        // fuzzy ones because of the §2.3 node-relevance adjustment.
        let mut db = dblp();
        db.insert(
            "Author",
            vec![Value::text("SunitaX"), Value::text("Sunitha Prestigious")],
        )
        .unwrap();
        // Decoy gets more references than the real Sunita so raw prestige
        // alone would put it first for a single-keyword query.
        db.insert(
            "Paper",
            vec![Value::text("PX1"), Value::text("Decoy Topics One")],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("PX2"), Value::text("Decoy Topics Two")],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("PX3"), Value::text("Decoy Topics Three")],
        )
        .unwrap();
        for p in ["PX1", "PX2", "PX3"] {
            db.insert("Writes", vec![Value::text("SunitaX"), Value::text(p)])
                .unwrap();
        }
        let mut config = BanksConfig::default();
        config.matching.approximate = true;
        let banks = Banks::with_config(db, config).unwrap();
        let answers = banks.search("sunita").unwrap();
        let top_rid = banks.tuple_graph().rid(answers[0].tree.root);
        let name = banks.db().tuple(top_rid).unwrap().values()[1]
            .as_text()
            .unwrap()
            .to_string();
        assert_eq!(
            name, "Sunita Sarawagi",
            "the exact match outranks the higher-prestige fuzzy decoy"
        );
        // Answers stay sorted descending after the adjustment.
        for pair in answers.windows(2) {
            assert!(pair[0].relevance >= pair[1].relevance - 1e-12);
        }
    }

    #[test]
    fn snapshot_rebind_reproduces_search_results() {
        // Serving-layer restart path: dump the CSR graph, restore it,
        // rebind to the database, and get identical ranked answers
        // without re-deriving edges.
        let fresh = Banks::new(dblp()).unwrap();
        let mut bytes = Vec::new();
        banks_graph::snapshot::write_snapshot(fresh.tuple_graph().graph(), &mut bytes).unwrap();
        let graph = banks_graph::snapshot::read_snapshot(&bytes[..]).unwrap();
        let tuple_graph = TupleGraph::rebind(fresh.db(), graph).unwrap();
        let restored = Banks::with_graph(dblp(), BanksConfig::default(), tuple_graph).unwrap();
        let a = fresh.search("soumen sunita").unwrap();
        let b = restored.search("soumen sunita").unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert!((x.relevance - y.relevance).abs() < 1e-12);
        }
    }

    #[test]
    fn with_graph_rejects_mismatched_snapshot() {
        let fresh = Banks::new(dblp()).unwrap();
        let mut small = dblp();
        let victim = small
            .relation("Writes")
            .unwrap()
            .scan()
            .next()
            .map(|(rid, _)| rid)
            .unwrap();
        small.delete(victim).unwrap();
        // One tuple fewer than the snapshot's node count — rebind must
        // refuse with the typed error rather than mis-map rids.
        let err = TupleGraph::rebind(&small, fresh.tuple_graph().graph().clone()).unwrap_err();
        assert!(
            matches!(err, banks_storage::StorageError::SnapshotMismatch { .. }),
            "node-count mismatch must be the typed error, got {err:?}"
        );
    }

    #[test]
    fn with_graph_rejects_same_cardinality_catalog_drift() {
        // Same *total* tuple count, different per-relation layout: delete
        // a Writes row, add an Author. The node count alone can't tell
        // the snapshots apart — the catalog check must.
        let fresh = Banks::new(dblp()).unwrap();
        let mut drifted = dblp();
        let victim = drifted
            .relation("Writes")
            .unwrap()
            .scan()
            .next()
            .map(|(rid, _)| rid)
            .unwrap();
        drifted.delete(victim).unwrap();
        drifted
            .insert(
                "Author",
                vec![Value::text("NewA"), Value::text("New Author")],
            )
            .unwrap();
        assert_eq!(drifted.total_tuples(), fresh.db().total_tuples());

        let stale = TupleGraph::build(fresh.db(), &BanksConfig::default().graph).unwrap();
        let err = Banks::with_graph(drifted, BanksConfig::default(), stale).unwrap_err();
        assert!(
            matches!(err, crate::BanksError::SnapshotMismatch { .. }),
            "catalog drift must be the typed error, got {err:?}"
        );
    }

    #[test]
    fn from_parts_reuses_supplied_text_index() {
        let reference = Banks::new(dblp()).unwrap();
        let db = dblp();
        let tokenizer = banks_storage::Tokenizer::new();
        let text_index = banks_storage::TextIndex::build(&db, &tokenizer);
        let tuple_graph = TupleGraph::build(&db, &BanksConfig::default().graph).unwrap();
        let assembled =
            Banks::from_parts(db, BanksConfig::default(), tuple_graph, text_index).unwrap();
        let a = reference.search("soumen sunita").unwrap();
        let b = assembled.search("soumen sunita").unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature());
        }
    }

    #[test]
    fn batch_search_matches_sequential() {
        let banks = Banks::new(dblp()).unwrap();
        let queries = ["soumen sunita", "byron", "", "mining classification"];
        let batch = banks.search_batch(&queries);
        assert_eq!(batch.len(), 4);
        for (query, result) in queries.iter().zip(&batch) {
            match banks.search(query) {
                Ok(sequential) => {
                    let parallel = result.as_ref().expect("same success");
                    assert_eq!(sequential.len(), parallel.len());
                    for (a, b) in sequential.iter().zip(parallel) {
                        assert_eq!(a.tree.signature(), b.tree.signature());
                    }
                }
                Err(_) => assert!(result.is_err(), "empty query errs in both paths"),
            }
        }
    }
}
