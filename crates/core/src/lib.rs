//! # banks-core
//!
//! A faithful Rust implementation of **BANKS** — *Browsing ANd Keyword
//! Searching* — the keyword-search-over-relational-databases system of
//! Bhalotia, Hulgeri, Nakhe, Chakrabarti and Sudarshan (ICDE 2002).
//!
//! BANKS lets users query a relational database with a few keywords and no
//! knowledge of the schema. It models the database as a directed graph
//! (tuples → nodes, foreign-key references → edges) and returns answers as
//! *connection trees*: rooted directed trees whose leaves contain the
//! query keywords and whose root — the *information node* — explains how
//! they relate. Ranking combines **proximity** (tree edge weight, §2.2)
//! with **prestige** (node indegree, PageRank-flavoured, §2.2); answers
//! are found incrementally by **backward expanding search** (§3), one
//! Dijkstra iterator per keyword node over reversed edges.
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`graph_build`] | §2.2 | database → weighted graph (eq. 1 backward weights, prestige) |
//! | [`query`], [`matching`] | §2.3, §7 | parsing, `Sᵢ` node sets, metadata/approx matching |
//! | [`score`] | §2.3 | Escore/Nscore normalization, λ combination, early-termination bound |
//! | [`search`] | §3, §7 | backward expanding search, output heap, forward search — on pooled [`SearchArena`] scratch with exact top-k early termination |
//! | [`answer`] | §2.3, Fig. 2 | connection trees, duplicate signatures, rendering |
//! | [`summarize`] | §7 | grouping answers by tree shape |
//! | [`prestige`] | §7 | authority-transfer node weights |
//! | [`system`] | — | the [`Banks`] facade tying it together |
//!
//! ## Workspace map
//!
//! This crate is the engine; the rest of the workspace layers serving,
//! data, and evaluation on top of it:
//!
//! | crate | role |
//! |---|---|
//! | `banks-graph` | CSR graph, lazy Dijkstra iterators on dense epoch-stamped state, the pooled [`SearchArena`], incremental `GraphPatch`, binary snapshots |
//! | `banks-storage` | in-memory relational engine + text/metadata indexes |
//! | `banks-ingest` | live tuple ingestion: delta log, incremental graph/index appliers, epoch-versioned snapshot publisher |
//! | `banks-server` | concurrent query service: epoch-versioned `Arc`-shared [`Banks`] snapshot, sharded LRU result cache, std-only HTTP/1.1 JSON endpoint (incl. `POST /ingest`) |
//! | `banks-cli` | interactive shell and the `banks serve` / `banks ingest` entry points |
//! | `banks-browse` | §4 browsing interface |
//! | `banks-datagen` | deterministic synthetic corpora |
//! | `banks-eval` | §5 evaluation harness |
//! | `banks-bench` | micro-benches + server throughput and ingest-vs-rebuild benches |
//! | `banks-util` | dependency-free JSON/HTTP helpers |
//!
//! A built [`Banks`] is immutable and `Send + Sync`: construction
//! tokenizes, indexes, and materializes the graph once, after which any
//! number of threads may call [`Banks::search`] concurrently (this is
//! what `banks-server` relies on). For fast restarts the CSR graph can
//! be dumped via `banks_graph::snapshot` and re-attached with
//! [`TupleGraph::rebind`] + [`Banks::with_graph`], skipping edge
//! derivation. Mutation happens by *replacement*: `banks-ingest`
//! patches the database, graph, and text index incrementally and
//! re-assembles a successor instance via [`Banks::from_parts`], which
//! serving layers swap in atomically ([`Banks::with_graph`] and
//! [`Banks::from_parts`] both verify the graph against the database's
//! catalog and reject mismatches with the typed
//! [`BanksError::SnapshotMismatch`]).
//!
//! ## Quick start
//!
//! ```
//! use banks_core::Banks;
//! use banks_storage::{ColumnType, Database, RelationSchema, Value};
//!
//! // The bibliography schema of the paper's Figure 1.
//! let mut db = Database::new("dblp");
//! db.create_relation(
//!     RelationSchema::builder("Author")
//!         .column("AuthorId", ColumnType::Text)
//!         .column("AuthorName", ColumnType::Text)
//!         .primary_key(&["AuthorId"])
//!         .build()?,
//! )?;
//! db.create_relation(
//!     RelationSchema::builder("Paper")
//!         .column("PaperId", ColumnType::Text)
//!         .column("PaperName", ColumnType::Text)
//!         .primary_key(&["PaperId"])
//!         .build()?,
//! )?;
//! db.create_relation(
//!     RelationSchema::builder("Writes")
//!         .column("AuthorId", ColumnType::Text)
//!         .column("PaperId", ColumnType::Text)
//!         .primary_key(&["AuthorId", "PaperId"])
//!         .foreign_key(&["AuthorId"], "Author")
//!         .foreign_key(&["PaperId"], "Paper")
//!         .build()?,
//! )?;
//! db.insert("Author", vec![Value::text("SoumenC"), Value::text("Soumen Chakrabarti")])?;
//! db.insert("Author", vec![Value::text("SunitaS"), Value::text("Sunita Sarawagi")])?;
//! db.insert("Paper", vec![Value::text("ChakrabartiSD98"), Value::text("Mining Surprising Patterns")])?;
//! db.insert("Writes", vec![Value::text("SoumenC"), Value::text("ChakrabartiSD98")])?;
//! db.insert("Writes", vec![Value::text("SunitaS"), Value::text("ChakrabartiSD98")])?;
//!
//! let banks = Banks::new(db)?;
//! let answers = banks.search("soumen sunita")?;
//! println!("{}", banks.render_answer(&answers[0]));
//! // Paper(ChakrabartiSD98: Mining Surprising Patterns)
//! //   Writes(SoumenC,ChakrabartiSD98)
//! //     *Author(SoumenC: Soumen Chakrabarti)
//! //   Writes(SunitaS,ChakrabartiSD98)
//! //     *Author(SunitaS: Sunita Sarawagi)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod answer;
pub mod config;
pub mod error;
pub mod graph_build;
pub mod matching;
pub mod prestige;
pub mod query;
pub mod score;
pub mod search;
pub mod summarize;
pub mod system;

pub use answer::{Answer, ConnectionTree, TreeSignature};
pub use config::{
    BanksConfig, CombineMode, EdgeScoreMode, GraphConfig, MatchConfig, NodeScoreMode,
    NodeWeightMode, ScoreParams, SearchConfig,
};
pub use error::{BanksError, BanksResult};
pub use graph_build::TupleGraph;
pub use matching::{MatchKind, TermMatch};
pub use query::{Query, Term};
pub use score::Scorer;
pub use search::{SearchArena, SearchOutcome, SearchStats};
pub use summarize::AnswerGroup;
pub use system::{Banks, SearchStrategy};
