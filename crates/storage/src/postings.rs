//! Packed, lazily-decodable posting storage for the inverted keyword
//! index — the text-index half of the out-of-core bundle format.
//!
//! [`crate::binary::write_text_index`] interleaves tokens and posting
//! lists, so reading *any* token costs a full sequential parse. This
//! module stores the same data mmap-style: a fixed-size term table and a
//! string heap up front (tiny — read eagerly), with the raw posting
//! triples in one contiguous area behind them (the bulk — left on disk
//! and fetched per term on first lookup).
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic          "BNKSPST1"                        8 bytes
//! token_count    u32
//! heap_len       u64
//! total_postings u64
//! table          token_count × 20 bytes            str_off u32, str_len u32,
//!                                                  post_off u64, post_count u32
//! heap           heap_len bytes                    UTF-8 token bytes, lex order
//! triples        total_postings × 12 bytes         relation u32, slot u32, column u32
//! ```
//!
//! Tokens are sorted lexicographically and their heap slices tile the
//! heap exactly, so lookup is a binary search over the table comparing
//! heap slices — no hashing, no per-term allocation until a list is
//! actually fetched. `post_off` values are cumulative posting counts;
//! the byte offset of a list is `triples_base + post_off × 12`.
//!
//! [`LazyTextIndex::open`] validates the whole skeleton (magic, counts,
//! tiling, UTF-8, sort order) eagerly, so a torn or corrupt term table
//! is a typed [`StorageError::Corrupt`] before any lookup runs. The
//! triples area itself is *not* checksummed here — the enclosing bundle
//! section carries a whole-payload checksum for full loads, and a paged
//! open trades that verification for not reading the bytes.

use crate::error::{StorageError, StorageResult};
use crate::text_index::{Posting, TextIndex};
use crate::tuple::{RelationId, Rid};
use banks_util::fxhash::FxHashMap;
use std::io::Write;
use std::sync::Mutex;

/// Magic leading a packed postings payload.
pub const POSTINGS_MAGIC: &[u8; 8] = b"BNKSPST1";

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

fn io_corrupt(e: std::io::Error) -> StorageError {
    StorageError::Corrupt(format!("packed postings read: {e}"))
}
const TABLE_ENTRY_LEN: usize = 20;
const TRIPLE_LEN: usize = 12;

/// Byte-range reads against a packed postings payload, wherever it
/// lives — an in-memory buffer, or a window of an open bundle file.
///
/// Implementations must be cheap to call repeatedly ([`LazyTextIndex`]
/// issues one `read_at` per first-touch term lookup) and thread-safe.
pub trait PostingSource: Send + Sync + std::fmt::Debug {
    /// Total payload length in bytes.
    fn len(&self) -> u64;
    /// Whether the payload is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Fill `buf` from `offset` (reads never cross `len`).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()>;
}

/// A [`PostingSource`] over an in-memory buffer.
#[derive(Debug, Clone)]
pub struct MemSource(pub std::sync::Arc<[u8]>);

impl PostingSource for MemSource {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        let start = usize::try_from(offset)
            .ok()
            .filter(|&s| s.checked_add(buf.len()).is_some_and(|e| e <= self.0.len()))
            .ok_or_else(|| std::io::Error::other("posting read out of bounds"))?;
        buf.copy_from_slice(&self.0[start..start + buf.len()]);
        Ok(())
    }
}

/// One term-table row.
#[derive(Debug, Clone, Copy)]
struct TermEntry {
    str_off: u32,
    str_len: u32,
    /// Cumulative posting count before this term (list starts at
    /// `triples_base + post_off × 12`).
    post_off: u64,
    post_count: u32,
}

/// Serialize `index` in the packed layout above. Deterministic: tokens
/// sorted lexicographically, lists in their stored `(rid, column)`
/// order.
pub fn write_packed_postings(index: &TextIndex, w: &mut impl Write) -> StorageResult<()> {
    let io = |e: std::io::Error| StorageError::Corrupt(format!("io: {e}"));
    let mut tokens: Vec<&str> = index.tokens().collect();
    tokens.sort_unstable();

    let heap_len: u64 = tokens.iter().map(|t| t.len() as u64).sum();
    let total: u64 = tokens.iter().map(|t| index.lookup(t).len() as u64).sum();

    w.write_all(POSTINGS_MAGIC).map_err(io)?;
    w.write_all(&(tokens.len() as u32).to_le_bytes())
        .map_err(io)?;
    w.write_all(&heap_len.to_le_bytes()).map_err(io)?;
    w.write_all(&total.to_le_bytes()).map_err(io)?;

    let (mut str_off, mut post_off) = (0u32, 0u64);
    for token in &tokens {
        let count = index.lookup(token).len() as u32;
        w.write_all(&str_off.to_le_bytes()).map_err(io)?;
        w.write_all(&(token.len() as u32).to_le_bytes())
            .map_err(io)?;
        w.write_all(&post_off.to_le_bytes()).map_err(io)?;
        w.write_all(&count.to_le_bytes()).map_err(io)?;
        str_off += token.len() as u32;
        post_off += u64::from(count);
    }
    for token in &tokens {
        w.write_all(token.as_bytes()).map_err(io)?;
    }
    for token in &tokens {
        for p in index.lookup(token) {
            w.write_all(&p.rid.relation.0.to_le_bytes()).map_err(io)?;
            w.write_all(&p.rid.slot.to_le_bytes()).map_err(io)?;
            w.write_all(&p.column.to_le_bytes()).map_err(io)?;
        }
    }
    Ok(())
}

/// The lazy half of [`TextIndex`]: term table and string heap resident,
/// posting lists fetched from the [`PostingSource`] on first lookup and
/// cached forever after (the cache is append-only — entries are boxed
/// slices whose addresses are stable, which is what lets
/// [`LazyTextIndex::lookup`] hand out `&[Posting]` borrows of `&self`).
pub struct LazyTextIndex {
    source: std::sync::Arc<dyn PostingSource>,
    table: Box<[TermEntry]>,
    heap: Box<[u8]>,
    triples_base: u64,
    total_postings: u64,
    cache: Mutex<FxHashMap<u32, Box<[Posting]>>>,
}

impl std::fmt::Debug for LazyTextIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyTextIndex")
            .field("tokens", &self.table.len())
            .field("total_postings", &self.total_postings)
            .field(
                "cached_terms",
                &self.cache.lock().expect("postings cache").len(),
            )
            .finish()
    }
}

impl LazyTextIndex {
    /// Open a packed postings payload, validating its entire skeleton
    /// (everything except the triples area, which stays on the source).
    pub fn open(source: std::sync::Arc<dyn PostingSource>) -> StorageResult<LazyTextIndex> {
        let corrupt = |m: String| StorageError::Corrupt(m);
        let len = source.len();
        if len < HEADER_LEN as u64 {
            return Err(corrupt("packed postings shorter than header".into()));
        }
        let mut header = [0u8; HEADER_LEN];
        source.read_at(0, &mut header).map_err(io_corrupt)?;
        if &header[..8] != POSTINGS_MAGIC {
            return Err(corrupt("packed postings: bad magic".into()));
        }
        let token_count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let heap_len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let total = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));

        let table_bytes = (token_count as u64)
            .checked_mul(TABLE_ENTRY_LEN as u64)
            .ok_or_else(|| corrupt("packed postings: token count overflows".into()))?;
        let triples_base = (HEADER_LEN as u64)
            .checked_add(table_bytes)
            .and_then(|v| v.checked_add(heap_len))
            .ok_or_else(|| corrupt("packed postings: header sizes overflow".into()))?;
        let triples_bytes = total
            .checked_mul(TRIPLE_LEN as u64)
            .ok_or_else(|| corrupt("packed postings: posting count overflows".into()))?;
        if triples_base.checked_add(triples_bytes) != Some(len) {
            return Err(corrupt(format!(
                "packed postings: {len} bytes on source, header implies {}",
                triples_base as u128 + triples_bytes as u128
            )));
        }

        let mut raw_table = vec![0u8; table_bytes as usize];
        source
            .read_at(HEADER_LEN as u64, &mut raw_table)
            .map_err(io_corrupt)?;
        let mut heap = vec![0u8; heap_len as usize];
        source
            .read_at(HEADER_LEN as u64 + table_bytes, &mut heap)
            .map_err(io_corrupt)?;

        let mut table = Vec::with_capacity(token_count);
        let (mut want_str, mut want_post) = (0u32, 0u64);
        for chunk in raw_table.chunks_exact(TABLE_ENTRY_LEN) {
            let entry = TermEntry {
                str_off: u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")),
                str_len: u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes")),
                post_off: u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes")),
                post_count: u32::from_le_bytes(chunk[16..20].try_into().expect("4 bytes")),
            };
            if entry.str_off != want_str || entry.post_off != want_post {
                return Err(corrupt("packed postings: term table does not tile".into()));
            }
            want_str = entry
                .str_off
                .checked_add(entry.str_len)
                .filter(|&e| u64::from(e) <= heap_len)
                .ok_or_else(|| corrupt("packed postings: token heap overrun".into()))?;
            want_post += u64::from(entry.post_count);
            table.push(entry);
        }
        if u64::from(want_str) != heap_len || want_post != total {
            return Err(corrupt(
                "packed postings: table totals disagree with header".into(),
            ));
        }
        // Every token must be valid UTF-8 and strictly ascending.
        let mut prev: Option<&str> = None;
        for entry in &table {
            let raw = &heap[entry.str_off as usize..(entry.str_off + entry.str_len) as usize];
            let token = std::str::from_utf8(raw)
                .map_err(|_| corrupt("packed postings: token is not UTF-8".into()))?;
            if prev.is_some_and(|p| p >= token) {
                return Err(corrupt("packed postings: tokens out of order".into()));
            }
            prev = Some(token);
        }

        Ok(LazyTextIndex {
            source,
            table: table.into_boxed_slice(),
            heap: heap.into_boxed_slice(),
            triples_base,
            total_postings: total,
            cache: Mutex::new(FxHashMap::default()),
        })
    }

    fn token_at(&self, i: usize) -> &str {
        let e = &self.table[i];
        let raw = &self.heap[e.str_off as usize..(e.str_off + e.str_len) as usize];
        // UTF-8 validated at open.
        std::str::from_utf8(raw).expect("validated at open")
    }

    fn find(&self, token: &str) -> Option<usize> {
        self.table
            .binary_search_by(|e| {
                let raw = &self.heap[e.str_off as usize..(e.str_off + e.str_len) as usize];
                raw.cmp(token.as_bytes())
            })
            .ok()
    }

    /// Read and decode one term's posting list from the source. A
    /// source failure here is a panic: lookups have no error channel,
    /// and the skeleton was validated at open, so a failure means the
    /// underlying file was truncated or torn *after* open.
    fn fetch(&self, idx: u32) -> Box<[Posting]> {
        let e = &self.table[idx as usize];
        let mut raw = vec![0u8; e.post_count as usize * TRIPLE_LEN];
        self.source
            .read_at(self.triples_base + e.post_off * TRIPLE_LEN as u64, &mut raw)
            .unwrap_or_else(|err| {
                panic!(
                    "posting list for {:?} unreadable (source torn after open): {err}",
                    self.token_at(idx as usize)
                )
            });
        decode_triples(&raw)
    }

    /// Postings for `token`, fetched on first touch and cached.
    pub fn lookup(&self, token: &str) -> &[Posting] {
        let Some(idx) = self.find(token) else {
            return &[];
        };
        let idx = idx as u32;
        let mut cache = self.cache.lock().expect("postings cache");
        let boxed = cache.entry(idx).or_insert_with(|| self.fetch(idx));
        let (ptr, len) = (boxed.as_ptr(), boxed.len());
        drop(cache);
        // SAFETY: cache entries are inserted once and never removed or
        // replaced, so the boxed slice's heap allocation lives as long
        // as `self`; rehashing moves the Box, not its pointee.
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }

    /// All tokens, in lexicographic order.
    pub fn tokens(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.table.len()).map(|i| self.token_at(i))
    }

    /// Number of distinct tokens.
    pub fn distinct_tokens(&self) -> usize {
        self.table.len()
    }

    /// Total postings across all tokens (from the header, not a scan).
    pub fn posting_count(&self) -> usize {
        self.total_postings as usize
    }

    /// Resident bytes: table + heap + currently cached posting lists.
    /// (The triples area on the source is *not* resident.)
    pub fn memory_bytes(&self) -> usize {
        let cached: usize = self
            .cache
            .lock()
            .expect("postings cache")
            .values()
            .map(|v| v.len() * std::mem::size_of::<Posting>())
            .sum();
        self.table.len() * std::mem::size_of::<TermEntry>() + self.heap.len() + cached
    }

    /// `(cached terms, total terms, cached posting bytes)` for storage
    /// stats reporting.
    pub fn cache_stats(&self) -> (usize, usize, usize) {
        let cache = self.cache.lock().expect("postings cache");
        let bytes = cache
            .values()
            .map(|v| v.len() * std::mem::size_of::<Posting>())
            .sum();
        (cache.len(), self.table.len(), bytes)
    }

    /// Decode everything into eager `(token, list)` pairs — the full
    /// bundle-load path and the mutation path (an index being written
    /// to must be eager). One bulk read of the triples area.
    pub fn materialize(&self) -> StorageResult<Vec<(String, Vec<Posting>)>> {
        let mut raw = vec![0u8; (self.total_postings as usize) * TRIPLE_LEN];
        self.source
            .read_at(self.triples_base, &mut raw)
            .map_err(io_corrupt)?;
        Ok(self
            .table
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let lo = e.post_off as usize * TRIPLE_LEN;
                let hi = lo + e.post_count as usize * TRIPLE_LEN;
                (
                    self.token_at(i).to_owned(),
                    decode_triples(&raw[lo..hi]).into_vec(),
                )
            })
            .collect())
    }
}

fn decode_triples(raw: &[u8]) -> Box<[Posting]> {
    raw.chunks_exact(TRIPLE_LEN)
        .map(|c| Posting {
            rid: Rid::new(
                RelationId(u32::from_le_bytes(c[0..4].try_into().expect("4 bytes"))),
                u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            ),
            column: u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
        })
        .collect()
}

/// Eagerly decode a packed postings payload into a [`TextIndex`] — the
/// full-load counterpart of [`write_packed_postings`].
pub fn read_packed_postings(bytes: &[u8]) -> StorageResult<TextIndex> {
    let lazy = LazyTextIndex::open(std::sync::Arc::new(MemSource(bytes.into())))?;
    Ok(TextIndex::from_postings(lazy.materialize()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::{ColumnType, RelationSchema};
    use crate::tokenizer::Tokenizer;
    use crate::value::Value;
    use std::sync::Arc;

    fn sample_index() -> TextIndex {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [
            ("p1", "Temporal Mining of Patterns"),
            ("p2", "Query Optimization Survey"),
            ("p3", "Mining the Query Stream"),
        ] {
            db.insert("Paper", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        TextIndex::build(&db, &Tokenizer::new())
    }

    fn packed(index: &TextIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        write_packed_postings(index, &mut buf).unwrap();
        buf
    }

    #[test]
    fn lazy_lookup_matches_eager() {
        let index = sample_index();
        let buf = packed(&index);
        let lazy = LazyTextIndex::open(Arc::new(MemSource(buf.into()))).unwrap();
        assert_eq!(lazy.distinct_tokens(), index.distinct_tokens());
        assert_eq!(lazy.posting_count(), index.posting_count());
        for token in index.tokens() {
            assert_eq!(lazy.lookup(token), index.lookup(token), "{token}");
        }
        assert!(lazy.lookup("absent-token").is_empty());
        // Cached lookups return the same slice.
        let a = lazy.lookup("mining").as_ptr();
        let b = lazy.lookup("mining").as_ptr();
        assert_eq!(a, b);
        let (cached, total, bytes) = lazy.cache_stats();
        assert!(cached >= 1 && cached <= total);
        assert!(bytes > 0);
    }

    #[test]
    fn packed_roundtrip_and_determinism() {
        let index = sample_index();
        let buf = packed(&index);
        let restored = read_packed_postings(&buf).unwrap();
        for token in index.tokens() {
            assert_eq!(restored.lookup(token), index.lookup(token), "{token}");
        }
        assert_eq!(packed(&restored), buf, "deterministic serialization");
    }

    #[test]
    fn empty_index_round_trips() {
        let index = TextIndex::default();
        let buf = packed(&index);
        let lazy = LazyTextIndex::open(Arc::new(MemSource(buf.into()))).unwrap();
        assert_eq!(lazy.distinct_tokens(), 0);
        assert_eq!(lazy.posting_count(), 0);
        assert!(lazy.lookup("anything").is_empty());
    }

    #[test]
    fn corrupt_skeleton_rejected_at_open() {
        let index = sample_index();
        let buf = packed(&index);
        let open = |bytes: Vec<u8>| LazyTextIndex::open(Arc::new(MemSource(bytes.into())));

        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xff;
        assert!(open(bad_magic).is_err());

        // Torn: any truncation breaks either the header math or a read.
        for cut in [4usize, HEADER_LEN + 3, buf.len() - 1] {
            assert!(open(buf[..cut].to_vec()).is_err(), "cut at {cut}");
        }

        // A table entry that does not tile.
        let mut untiled = buf.clone();
        untiled[HEADER_LEN] ^= 0x01; // first str_off no longer 0
        assert!(open(untiled).is_err());

        // Posting-count totals out of agreement with the header.
        let mut wrong_total = buf.clone();
        wrong_total[20] ^= 0x01;
        assert!(open(wrong_total).is_err());
    }
}
