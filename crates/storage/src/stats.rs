//! Database statistics: tuple counts, link fanouts, degree distributions.
//!
//! Used by the evaluation harness (§5.2 space/time accounting) and by the
//! data generators to verify that synthetic databases have the hub/degree
//! structure the paper's ranking discussion relies on.

use crate::catalog::Database;
use std::fmt;

/// Per-relation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Live tuple count.
    pub tuples: usize,
    /// Number of foreign keys declared.
    pub foreign_keys: usize,
    /// Resolved outgoing links (non-NULL foreign keys × tuples).
    pub outgoing_links: usize,
    /// Incoming references to tuples of this relation.
    pub incoming_links: usize,
    /// Maximum indegree over tuples of this relation.
    pub max_indegree: usize,
}

/// Whole-database statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseStats {
    /// Per-relation breakdown, in catalog order.
    pub relations: Vec<RelationStats>,
    /// Total live tuples (BANKS graph node count).
    pub total_tuples: usize,
    /// Total resolved links (the BANKS graph has 2× this many directed
    /// edges, one forward and one backward per link).
    pub total_links: usize,
}

impl DatabaseStats {
    /// Gather statistics by scanning `db`.
    pub fn gather(db: &Database) -> DatabaseStats {
        let mut relations = Vec::with_capacity(db.relation_count());
        for table in db.relations() {
            let mut outgoing = 0usize;
            let mut incoming = 0usize;
            let mut max_in = 0usize;
            for (rid, _) in table.scan() {
                let deg = db.indegree(rid);
                incoming += deg;
                max_in = max_in.max(deg);
                for fk in 0..table.schema().foreign_keys.len() {
                    if matches!(db.resolve_fk(rid, fk), Ok(Some(_))) {
                        outgoing += 1;
                    }
                }
            }
            relations.push(RelationStats {
                name: table.schema().name.clone(),
                tuples: table.len(),
                foreign_keys: table.schema().foreign_keys.len(),
                outgoing_links: outgoing,
                incoming_links: incoming,
                max_indegree: max_in,
            });
        }
        DatabaseStats {
            relations,
            total_tuples: db.total_tuples(),
            total_links: db.link_count(),
        }
    }

    /// Directed edge count of the corresponding BANKS graph.
    pub fn graph_edges(&self) -> usize {
        self.total_links * 2
    }

    /// Histogram of indegrees across all tuples: `hist[d]` = number of
    /// tuples with indegree exactly `d` (capped at `max_bucket`, with a
    /// final overflow bucket).
    pub fn indegree_histogram(db: &Database, max_bucket: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_bucket + 2];
        for table in db.relations() {
            for (rid, _) in table.scan() {
                let d = db.indegree(rid).min(max_bucket + 1);
                hist[d] += 1;
            }
        }
        hist
    }
}

impl fmt::Display for DatabaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tuples, {} links ({} graph edges)",
            self.total_tuples,
            self.total_links,
            self.graph_edges()
        )?;
        for r in &self.relations {
            writeln!(
                f,
                "  {:<16} {:>8} tuples  {:>8} out  {:>8} in  max-in {}",
                r.name, r.tuples, r.outgoing_links, r.incoming_links, r.max_indegree
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationSchema};
    use crate::value::Value;

    fn small_db() -> Database {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Dept")
                .column("Id", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Student")
                .column("Id", ColumnType::Text)
                .column("Dept", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["Dept"], "Dept")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("Dept", vec![Value::text("cse")]).unwrap();
        db.insert("Dept", vec![Value::text("math")]).unwrap();
        for i in 0..5 {
            db.insert(
                "Student",
                vec![Value::text(format!("s{i}")), Value::text("cse")],
            )
            .unwrap();
        }
        db.insert("Student", vec![Value::text("s5"), Value::text("math")])
            .unwrap();
        db
    }

    #[test]
    fn gather_counts_links_both_ways() {
        let db = small_db();
        let stats = DatabaseStats::gather(&db);
        assert_eq!(stats.total_tuples, 8);
        assert_eq!(stats.total_links, 6);
        assert_eq!(stats.graph_edges(), 12);
        let dept = &stats.relations[0];
        assert_eq!(dept.name, "Dept");
        assert_eq!(dept.incoming_links, 6);
        assert_eq!(dept.max_indegree, 5, "cse is a hub with 5 students");
        let student = &stats.relations[1];
        assert_eq!(student.outgoing_links, 6);
        assert_eq!(student.incoming_links, 0);
    }

    #[test]
    fn histogram_buckets() {
        let db = small_db();
        let hist = DatabaseStats::indegree_histogram(&db, 4);
        // 6 students with indegree 0, math dept with 1, cse overflows (5 > 4).
        assert_eq!(hist[0], 6);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[5], 1);
    }

    #[test]
    fn display_is_readable() {
        let db = small_db();
        let s = DatabaseStats::gather(&db).to_string();
        assert!(s.contains("8 tuples"));
        assert!(s.contains("Dept"));
        assert!(s.contains("Student"));
    }
}
