//! Minimal CSV import/export so databases can be persisted and the example
//! binaries can ship data as plain files.
//!
//! Format: RFC-4180-style quoting; the first line is a header of
//! `name:type` pairs matching [`crate::ColumnType::name`]. NULL is encoded
//! as a fully empty unquoted field; an empty *quoted* field (`""`) is an
//! empty string.

use crate::catalog::Database;
use crate::error::{StorageError, StorageResult};
use crate::schema::ColumnType;
use crate::table::Table;
use crate::value::Value;

/// Serialize one table to CSV (header + one line per live tuple).
pub fn table_to_csv(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    let header: Vec<String> = schema
        .columns
        .iter()
        .map(|c| format!("{}:{}", c.name, c.ty.name()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, tuple) in table.scan() {
        let fields: Vec<String> = tuple.values().iter().map(encode_field).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn encode_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Text(s) => {
            if s.is_empty()
                || s.contains(',')
                || s.contains('"')
                || s.contains('\n')
                || s.contains('\r')
            {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        other => other.to_string(),
    }
}

/// One parsed CSV record: the raw fields plus whether each was quoted.
#[derive(Debug, PartialEq, Eq)]
struct Record {
    fields: Vec<(String, bool)>,
}

/// Parse CSV text into records. Handles quoted fields, embedded quotes,
/// and embedded newlines inside quotes.
fn parse_csv(text: &str) -> StorageResult<Vec<Record>> {
    let mut records = Vec::new();
    let mut fields: Vec<(String, bool)> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if !field.is_empty() {
                    return Err(StorageError::Csv {
                        line,
                        message: "quote in the middle of an unquoted field".into(),
                    });
                }
                in_quotes = true;
                quoted = true;
            }
            ',' => {
                fields.push((std::mem::take(&mut field), quoted));
                quoted = false;
            }
            '\r' => {} // tolerate CRLF
            '\n' => {
                fields.push((std::mem::take(&mut field), quoted));
                quoted = false;
                records.push(Record {
                    fields: std::mem::take(&mut fields),
                });
                line += 1;
            }
            _ => field.push(ch),
        }
    }
    if in_quotes {
        return Err(StorageError::Csv {
            line,
            message: "unterminated quote".into(),
        });
    }
    if any && (!field.is_empty() || !fields.is_empty() || quoted) {
        fields.push((field, quoted));
        records.push(Record { fields });
    }
    Ok(records)
}

fn decode_field(raw: &str, was_quoted: bool, ty: ColumnType, line: usize) -> StorageResult<Value> {
    if raw.is_empty() && !was_quoted {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Text => Ok(Value::text(raw)),
        ColumnType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StorageError::Csv {
                line,
                message: format!("bad int `{raw}`: {e}"),
            }),
        ColumnType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| StorageError::Csv {
                line,
                message: format!("bad float `{raw}`: {e}"),
            }),
        ColumnType::Bool => match raw {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(StorageError::Csv {
                line,
                message: format!("bad bool `{raw}`"),
            }),
        },
    }
}

/// Load CSV rows into an existing relation of `db`.
///
/// The header must list exactly the relation's columns, in order, with
/// matching types. Returns the number of inserted tuples.
pub fn load_csv_into(db: &mut Database, relation: &str, text: &str) -> StorageResult<usize> {
    let records = parse_csv(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Ok(0);
    };
    let schema = db.relation(relation)?.schema().clone();
    if header.fields.len() != schema.arity() {
        return Err(StorageError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, relation `{relation}` has {}",
                header.fields.len(),
                schema.arity()
            ),
        });
    }
    for ((raw, _), col) in header.fields.iter().zip(&schema.columns) {
        let expected = format!("{}:{}", col.name, col.ty.name());
        if raw != &expected {
            return Err(StorageError::Csv {
                line: 1,
                message: format!("header field `{raw}` does not match `{expected}`"),
            });
        }
    }
    let mut inserted = 0usize;
    for (i, record) in rows.iter().enumerate() {
        let line = i + 2;
        if record.fields.len() != schema.arity() {
            return Err(StorageError::Csv {
                line,
                message: format!(
                    "row has {} fields, expected {}",
                    record.fields.len(),
                    schema.arity()
                ),
            });
        }
        let mut values = Vec::with_capacity(schema.arity());
        for ((raw, quoted), col) in record.fields.iter().zip(&schema.columns) {
            values.push(decode_field(raw, *quoted, col.ty, line)?);
        }
        db.insert(relation, values)?;
        inserted += 1;
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn make_db() -> Database {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .nullable_column("PaperName", ColumnType::Text)
                .nullable_column("Year", ColumnType::Int)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_values() {
        let mut db = make_db();
        db.insert(
            "Paper",
            vec![
                Value::text("p1"),
                Value::text("Title, with \"quotes\""),
                Value::Int(1998),
            ],
        )
        .unwrap();
        db.insert("Paper", vec![Value::text("p2"), Value::Null, Value::Null])
            .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("p3"), Value::text(""), Value::Int(0)],
        )
        .unwrap();
        let csv = table_to_csv(db.relation("Paper").unwrap());

        let mut db2 = make_db();
        let n = load_csv_into(&mut db2, "Paper", &csv).unwrap();
        assert_eq!(n, 3);
        let t1 = db2
            .relation("Paper")
            .unwrap()
            .lookup_pk(&[Value::text("p1")])
            .unwrap();
        assert_eq!(
            db2.tuple(t1).unwrap().get(1),
            Some(&Value::text("Title, with \"quotes\""))
        );
        let t2 = db2
            .relation("Paper")
            .unwrap()
            .lookup_pk(&[Value::text("p2")])
            .unwrap();
        assert_eq!(db2.tuple(t2).unwrap().get(1), Some(&Value::Null));
        // empty quoted string is an empty string, not NULL
        let t3 = db2
            .relation("Paper")
            .unwrap()
            .lookup_pk(&[Value::text("p3")])
            .unwrap();
        assert_eq!(db2.tuple(t3).unwrap().get(1), Some(&Value::text("")));
    }

    #[test]
    fn embedded_newline_roundtrip() {
        let mut db = make_db();
        db.insert(
            "Paper",
            vec![
                Value::text("p1"),
                Value::text("line one\nline two"),
                Value::Null,
            ],
        )
        .unwrap();
        let csv = table_to_csv(db.relation("Paper").unwrap());
        let mut db2 = make_db();
        load_csv_into(&mut db2, "Paper", &csv).unwrap();
        let t = db2
            .relation("Paper")
            .unwrap()
            .lookup_pk(&[Value::text("p1")])
            .unwrap();
        assert_eq!(
            db2.tuple(t).unwrap().get(1),
            Some(&Value::text("line one\nline two"))
        );
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut db = make_db();
        let err = load_csv_into(&mut db, "Paper", "Wrong:text\n").unwrap_err();
        assert!(matches!(err, StorageError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_int_reports_line() {
        let mut db = make_db();
        let csv = "PaperId:text,PaperName:text,Year:int\np1,Title,notanint\n";
        let err = load_csv_into(&mut db, "Paper", csv).unwrap_err();
        assert!(matches!(err, StorageError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_detected() {
        assert!(parse_csv("a,\"unterminated\nrow2").is_err());
    }

    #[test]
    fn empty_input_loads_zero() {
        let mut db = make_db();
        assert_eq!(load_csv_into(&mut db, "Paper", "").unwrap(), 0);
    }

    #[test]
    fn crlf_tolerated() {
        let mut db = make_db();
        let csv = "PaperId:text,PaperName:text,Year:int\r\np1,Title,1998\r\n";
        assert_eq!(load_csv_into(&mut db, "Paper", csv).unwrap(), 1);
    }
}
