//! Error types for the storage layer.

use std::fmt;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the relational storage engine.
///
/// The engine enforces schema and referential integrity at insertion time,
/// so most variants describe constraint violations rather than I/O failures.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A relation with this name already exists in the catalog.
    DuplicateRelation(String),
    /// No relation with this name exists in the catalog.
    UnknownRelation(String),
    /// No column with this name exists in the relation.
    UnknownColumn {
        /// Relation that was searched.
        relation: String,
        /// Column name that failed to resolve.
        column: String,
    },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        /// Relation being inserted into.
        relation: String,
        /// Offending column name.
        column: String,
        /// Human-readable description of the expected type.
        expected: String,
        /// Human-readable description of the supplied value.
        actual: String,
    },
    /// A NULL was supplied for a non-nullable column.
    NullViolation {
        /// Relation being inserted into.
        relation: String,
        /// Offending column name.
        column: String,
    },
    /// Primary-key uniqueness was violated.
    DuplicateKey {
        /// Relation being inserted into.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// A foreign key referenced a tuple that does not exist.
    ForeignKeyViolation {
        /// Relation being inserted into.
        relation: String,
        /// Relation the foreign key points at.
        referenced: String,
        /// Rendered key values that failed to resolve.
        key: String,
    },
    /// A schema declaration was internally inconsistent.
    InvalidSchema(String),
    /// A pre-materialized graph snapshot does not describe this database
    /// (node count or per-relation catalog mismatch). Distinct from
    /// [`StorageError::InvalidSchema`] so callers can offer "rebuild the
    /// snapshot" recovery instead of treating it as a schema bug.
    SnapshotMismatch {
        /// What the snapshot claims (e.g. node or per-relation counts).
        expected: String,
        /// What the database actually holds.
        actual: String,
    },
    /// A row identifier pointed at a missing (deleted or out-of-range) tuple.
    InvalidRid(String),
    /// CSV parsing failed.
    Csv {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A binary artifact (snapshot section, serialized table or index)
    /// failed to decode: truncated stream, impossible length, value tag
    /// out of range, or postings out of order. Also used for the I/O
    /// errors underneath those reads — the variant keeps `StorageError`
    /// cloneable/comparable where `std::io::Error` is not.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` expects {expected} values, got {actual}"
            ),
            StorageError::TypeMismatch {
                relation,
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in `{relation}.{column}`: expected {expected}, got {actual}"
            ),
            StorageError::NullViolation { relation, column } => {
                write!(f, "column `{relation}.{column}` is not nullable")
            }
            StorageError::DuplicateKey { relation, key } => {
                write!(f, "duplicate primary key {key} in relation `{relation}`")
            }
            StorageError::ForeignKeyViolation {
                relation,
                referenced,
                key,
            } => write!(
                f,
                "foreign key from `{relation}` to `{referenced}` dangles: no tuple with key {key}"
            ),
            StorageError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StorageError::SnapshotMismatch { expected, actual } => write!(
                f,
                "graph snapshot does not match the database: snapshot has {expected}, database has {actual}"
            ),
            StorageError::InvalidRid(msg) => write!(f, "invalid rid: {msg}"),
            StorageError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt binary data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::UnknownColumn {
            relation: "Paper".into(),
            column: "Title".into(),
        };
        assert_eq!(e.to_string(), "unknown column `Title` in relation `Paper`");

        let e = StorageError::ArityMismatch {
            relation: "Writes".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("expects 2 values, got 3"));

        let e = StorageError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));

        let e = StorageError::SnapshotMismatch {
            expected: "10 nodes".into(),
            actual: "9 tuples".into(),
        };
        assert!(e.to_string().contains("10 nodes"));
        assert!(e.to_string().contains("9 tuples"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::DuplicateRelation("A".into()),
            StorageError::DuplicateRelation("A".into())
        );
        assert_ne!(
            StorageError::DuplicateRelation("A".into()),
            StorageError::UnknownRelation("A".into())
        );
    }
}
