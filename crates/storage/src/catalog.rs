//! The database catalog: a set of relations plus cross-relation link
//! bookkeeping (foreign-key resolution in both directions).
//!
//! The backward direction — "which tuples reference this one?" — powers two
//! core pieces of BANKS: the backward-edge weights / node prestige of §2.2
//! (both derived from indegree) and the "browse a primary key backwards"
//! feature of §4.

use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::table::Table;
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use banks_util::fxhash::FxHashMap;
use std::collections::HashMap;

/// A recorded reverse reference: tuple `from` references the indexed tuple
/// through foreign key `fk_index` of `from`'s relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackRef {
    /// The referencing tuple.
    pub from: Rid,
    /// Which foreign key of `from`'s relation produced the reference.
    pub fk_index: usize,
}

/// An in-memory relational database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, RelationId>,
    /// rid → tuples referencing it. Maintained on insert/delete;
    /// Fx-hashed — touched on every insert/delete/update and rebuilt
    /// wholesale on binary-snapshot restore.
    back_refs: FxHashMap<Rid, Vec<BackRef>>,
    /// Total number of resolved foreign-key links.
    link_count: usize,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            ..Database::default()
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a new relation. Foreign keys must reference relations that
    /// already exist (self-references are allowed).
    pub fn create_relation(&mut self, schema: RelationSchema) -> StorageResult<RelationId> {
        schema.validate()?;
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::DuplicateRelation(schema.name));
        }
        for fk in &schema.foreign_keys {
            if fk.ref_relation != schema.name && !self.by_name.contains_key(&fk.ref_relation) {
                return Err(StorageError::UnknownRelation(fk.ref_relation.clone()));
            }
            let target = if fk.ref_relation == schema.name {
                &schema
            } else {
                self.relation(&fk.ref_relation)?.schema()
            };
            if !target.has_primary_key() {
                return Err(StorageError::InvalidSchema(format!(
                    "foreign key from `{}` references `{}` which has no primary key",
                    schema.name, fk.ref_relation
                )));
            }
            if target.primary_key.len() != fk.columns.len() {
                return Err(StorageError::InvalidSchema(format!(
                    "foreign key from `{}` to `{}` has {} columns but the key has {}",
                    schema.name,
                    fk.ref_relation,
                    fk.columns.len(),
                    target.primary_key.len()
                )));
            }
        }
        let id = RelationId(u32::try_from(self.tables.len()).expect("too many relations"));
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(id, schema));
        Ok(id)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.tables.len()
    }

    /// Iterate over all tables.
    pub fn relations(&self) -> impl Iterator<Item = &Table> + '_ {
        self.tables.iter()
    }

    /// Resolve a relation name to its id.
    pub fn relation_id(&self, name: &str) -> StorageResult<RelationId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Borrow a table by name.
    pub fn relation(&self, name: &str) -> StorageResult<&Table> {
        let id = self.relation_id(name)?;
        Ok(&self.tables[id.index()])
    }

    /// Borrow a table by id.
    pub fn table(&self, id: RelationId) -> &Table {
        &self.tables[id.index()]
    }

    /// Fetch a tuple by rid.
    pub fn tuple(&self, rid: Rid) -> StorageResult<&Tuple> {
        self.tables
            .get(rid.relation.index())
            .and_then(|t| t.get(rid.slot))
            .ok_or_else(|| StorageError::InvalidRid(rid.to_string()))
    }

    /// Extract the foreign-key value of `values` for foreign key `fk_index`
    /// of `schema`. Returns `None` if any component is NULL.
    fn fk_key(schema: &RelationSchema, fk_index: usize, values: &[Value]) -> Option<Vec<Value>> {
        let fk = &schema.foreign_keys[fk_index];
        let mut key = Vec::with_capacity(fk.columns.len());
        for &c in &fk.columns {
            let v = &values[c];
            if v.is_null() {
                return None;
            }
            key.push(v.clone());
        }
        Some(key)
    }

    /// Insert a tuple, enforcing schema, primary-key, and foreign-key
    /// constraints, and maintaining the reverse-reference index.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> StorageResult<Rid> {
        let id = self.relation_id(relation)?;
        // Resolve every foreign key before mutating anything.
        let schema = self.tables[id.index()].schema().clone();
        if values.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.name.clone(),
                expected: schema.arity(),
                actual: values.len(),
            });
        }
        let mut resolved: Vec<(usize, Rid)> = Vec::with_capacity(schema.foreign_keys.len());
        for (fk_index, fk) in schema.foreign_keys.iter().enumerate() {
            match Self::fk_key(&schema, fk_index, &values) {
                None => {
                    if !fk.nullable {
                        return Err(StorageError::NullViolation {
                            relation: schema.name.clone(),
                            column: schema.columns[fk.columns[0]].name.clone(),
                        });
                    }
                }
                Some(key) => {
                    let target = self.relation(&fk.ref_relation)?;
                    match target.lookup_pk(&key) {
                        Some(target_rid) => resolved.push((fk_index, target_rid)),
                        None => {
                            return Err(StorageError::ForeignKeyViolation {
                                relation: schema.name.clone(),
                                referenced: fk.ref_relation.clone(),
                                key: format!("{key:?}"),
                            })
                        }
                    }
                }
            }
        }
        let rid = self.tables[id.index()].insert(values)?;
        for (fk_index, target) in resolved {
            self.back_refs.entry(target).or_default().push(BackRef {
                from: rid,
                fk_index,
            });
            self.link_count += 1;
        }
        Ok(rid)
    }

    /// Delete a tuple. Fails (RESTRICT semantics) if other tuples still
    /// reference it.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<Tuple> {
        if self.back_refs.get(&rid).is_some_and(|v| !v.is_empty()) {
            return Err(StorageError::ForeignKeyViolation {
                relation: self.table(rid.relation).schema().name.clone(),
                referenced: self.table(rid.relation).schema().name.clone(),
                key: format!("{rid} is still referenced"),
            });
        }
        // Remove this tuple's own outgoing references from the reverse index.
        let schema = self.table(rid.relation).schema().clone();
        let values: Vec<Value> = self.tuple(rid)?.values().to_vec();
        for fk_index in 0..schema.foreign_keys.len() {
            if let Some(key) = Self::fk_key(&schema, fk_index, &values) {
                let fk = &schema.foreign_keys[fk_index];
                if let Some(target_rid) = self.relation(&fk.ref_relation)?.lookup_pk(&key) {
                    if let Some(refs) = self.back_refs.get_mut(&target_rid) {
                        if let Some(pos) = refs
                            .iter()
                            .position(|b| b.from == rid && b.fk_index == fk_index)
                        {
                            refs.swap_remove(pos);
                            self.link_count -= 1;
                        }
                    }
                }
            }
        }
        self.tables[rid.relation.index()].delete(rid.slot)
    }

    /// Update one column of the tuple at `rid` to `value`, maintaining
    /// the reverse-reference index when the column participates in a
    /// foreign key. Returns the previous value.
    ///
    /// Primary-key columns cannot be updated (delete + insert instead),
    /// and a new foreign-key value must resolve, exactly as on insert —
    /// the tuple-level write path of live ingestion.
    pub fn update(&mut self, rid: Rid, column: usize, value: Value) -> StorageResult<Value> {
        let old = self.update_columns(rid, &[(column, value)])?;
        Ok(old
            .into_iter()
            .next()
            .expect("one assignment, one old value"))
    }

    /// Update several columns of the tuple at `rid` **as one unit**:
    /// every constraint — including foreign keys spanning multiple
    /// updated columns — is validated against the *final* state before
    /// anything mutates, so a composite-key repoint `(a1,b1) → (a2,b2)`
    /// succeeds even when the intermediate `(a2,b1)` would dangle.
    /// Returns the previous values in assignment order. On error the
    /// database is untouched.
    pub fn update_columns(
        &mut self,
        rid: Rid,
        assignments: &[(usize, Value)],
    ) -> StorageResult<Vec<Value>> {
        let schema = self.table(rid.relation).schema().clone();
        let old_values: Vec<Value> = self.tuple(rid)?.values().to_vec();

        // Column-level validation of every assignment against the
        // schema (range, pk guard, nullability, type), before any write.
        let mut new_values = old_values.clone();
        let mut touched = Vec::with_capacity(assignments.len());
        for &(column, ref value) in assignments {
            let Some(col) = schema.columns.get(column) else {
                return Err(StorageError::UnknownColumn {
                    relation: schema.name.clone(),
                    column: format!("#{column}"),
                });
            };
            if schema.primary_key.contains(&column) {
                return Err(StorageError::InvalidSchema(format!(
                    "cannot update primary-key column {column} of `{}`",
                    schema.name
                )));
            }
            if value.is_null() && !col.nullable {
                return Err(StorageError::NullViolation {
                    relation: schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !value.is_null() && !col.ty.accepts(value) {
                return Err(StorageError::TypeMismatch {
                    relation: schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    actual: value.to_string(),
                });
            }
            new_values[column] = value.clone();
            touched.push(column);
        }

        // Validate and resolve every foreign key touching any updated
        // column against the final values.
        let mut relink: Vec<(usize, Option<Rid>, Option<Rid>)> = Vec::new();
        for (fk_index, fk) in schema.foreign_keys.iter().enumerate() {
            if !fk.columns.iter().any(|c| touched.contains(c)) {
                continue;
            }
            let old_target = match Self::fk_key(&schema, fk_index, &old_values) {
                Some(key) => self.relation(&fk.ref_relation)?.lookup_pk(&key),
                None => None,
            };
            let new_target = match Self::fk_key(&schema, fk_index, &new_values) {
                Some(key) => match self.relation(&fk.ref_relation)?.lookup_pk(&key) {
                    Some(target) => Some(target),
                    None => {
                        return Err(StorageError::ForeignKeyViolation {
                            relation: schema.name.clone(),
                            referenced: fk.ref_relation.clone(),
                            key: format!("{key:?}"),
                        })
                    }
                },
                None => {
                    if !fk.nullable {
                        return Err(StorageError::NullViolation {
                            relation: schema.name.clone(),
                            column: schema.columns[fk.columns[0]].name.clone(),
                        });
                    }
                    None
                }
            };
            if old_target != new_target {
                relink.push((fk_index, old_target, new_target));
            }
        }

        // All checks passed: write the columns (the table re-checks each
        // one, which now cannot fail) and swap the reverse references.
        for &(column, ref value) in assignments {
            self.tables[rid.relation.index()].update(rid.slot, column, value.clone())?;
        }
        for (fk_index, old_target, new_target) in relink {
            if let Some(target) = old_target {
                if let Some(refs) = self.back_refs.get_mut(&target) {
                    if let Some(pos) = refs
                        .iter()
                        .position(|b| b.from == rid && b.fk_index == fk_index)
                    {
                        refs.swap_remove(pos);
                        self.link_count -= 1;
                    }
                }
            }
            if let Some(target) = new_target {
                self.back_refs.entry(target).or_default().push(BackRef {
                    from: rid,
                    fk_index,
                });
                self.link_count += 1;
            }
        }
        Ok(assignments
            .iter()
            .map(|&(column, _)| old_values[column].clone())
            .collect())
    }

    /// Restore the deserialized slot vector of `relation` (see
    /// [`Table::restore_slots`]) without touching the link bookkeeping —
    /// callers restore every relation first, then run
    /// [`Database::rebuild_links`] once.
    pub(crate) fn restore_relation_slots(
        &mut self,
        relation: RelationId,
        slots: Vec<Option<Tuple>>,
    ) -> StorageResult<()> {
        self.tables[relation.index()].restore_slots(slots)
    }

    /// Install a deserialized reverse-reference index wholesale —
    /// the binary-snapshot load path, which serializes the index
    /// instead of re-resolving every foreign key (15K `Vec<Value>`
    /// hash lookups on the small corpus) and thereby preserves the
    /// live system's exact per-target reference order.
    ///
    /// Every rid is bounds/liveness-checked (O(1) each); the tuples
    /// themselves were validated by the slot restore. Each `(from,
    /// fk_index)` must name a real foreign key of `from`'s relation.
    pub(crate) fn install_links(&mut self, links: Vec<(Rid, Vec<BackRef>)>) -> StorageResult<()> {
        let live = |rid: Rid| -> bool {
            self.tables
                .get(rid.relation.index())
                .is_some_and(|t| t.get(rid.slot).is_some())
        };
        let mut total = 0usize;
        for (target, refs) in &links {
            if !live(*target) {
                return Err(StorageError::Corrupt(format!(
                    "restored back-reference target {target} is not a live tuple"
                )));
            }
            for backref in refs {
                if !live(backref.from) {
                    return Err(StorageError::Corrupt(format!(
                        "restored back-reference source {} is not a live tuple",
                        backref.from
                    )));
                }
                let fks = self.tables[backref.from.relation.index()]
                    .schema()
                    .foreign_keys
                    .len();
                if backref.fk_index >= fks {
                    return Err(StorageError::Corrupt(format!(
                        "restored back-reference names foreign key #{} of {}, which has {fks}",
                        backref.fk_index, backref.from
                    )));
                }
                total += 1;
            }
        }
        let mut back_refs = FxHashMap::default();
        back_refs.reserve(links.len());
        for (target, refs) in links {
            if back_refs.insert(target, refs).is_some() {
                // A later duplicate entry would silently shadow the
                // earlier one while `total` counted both — reject the
                // stream instead of installing an index that disagrees
                // with its own link count.
                return Err(StorageError::Corrupt(format!(
                    "restored back-reference target {target} listed twice"
                )));
            }
        }
        self.back_refs = back_refs;
        self.link_count = total;
        Ok(())
    }

    /// Resolve foreign key `fk_index` of the tuple at `rid`.
    ///
    /// Returns `Ok(None)` when the key is NULL (no link).
    pub fn resolve_fk(&self, rid: Rid, fk_index: usize) -> StorageResult<Option<Rid>> {
        let table = self.table(rid.relation);
        let schema = table.schema();
        if fk_index >= schema.foreign_keys.len() {
            return Err(StorageError::InvalidSchema(format!(
                "relation `{}` has no foreign key #{fk_index}",
                schema.name
            )));
        }
        let tuple = self.tuple(rid)?;
        match Self::fk_key(schema, fk_index, tuple.values()) {
            None => Ok(None),
            Some(key) => {
                let fk = &schema.foreign_keys[fk_index];
                let target = self.relation(&fk.ref_relation)?;
                Ok(target.lookup_pk(&key))
            }
        }
    }

    /// All tuples referencing `rid` (the backward direction of §4 browsing
    /// and the indegree of §2.2).
    pub fn referencing(&self, rid: Rid) -> &[BackRef] {
        self.back_refs
            .get(&rid)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Indegree of a tuple: number of references to it (the paper's node
    /// prestige, §2.2: "we set the node prestige to the indegree of the
    /// node").
    pub fn indegree(&self, rid: Rid) -> usize {
        self.referencing(rid).len()
    }

    /// Indegree of `rid` contributed by tuples of `relation` — the
    /// `IN_{R}(v)` term of the paper's backward-edge weight (eq. 1).
    pub fn indegree_from(&self, rid: Rid, relation: RelationId) -> usize {
        self.referencing(rid)
            .iter()
            .filter(|b| b.from.relation == relation)
            .count()
    }

    /// Total live tuples over all relations (graph node count).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Total resolved foreign-key links (half the directed edge count of the
    /// BANKS graph, which adds a backward edge per link).
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// A short human-readable rendering of a tuple, used in answers and
    /// browsing: the primary key plus the first textual non-key attribute.
    pub fn describe_tuple(&self, rid: Rid) -> StorageResult<String> {
        let table = self.table(rid.relation);
        let schema = table.schema();
        let tuple = self.tuple(rid)?;
        let key = if schema.has_primary_key() {
            schema
                .key_of(tuple.values())
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        } else {
            rid.to_string()
        };
        let text = schema
            .columns
            .iter()
            .enumerate()
            .find(|(i, c)| {
                !schema.primary_key.contains(i)
                    && matches!(c.ty, crate::schema::ColumnType::Text)
                    && !tuple.values()[*i].is_null()
            })
            .map(|(i, _)| tuple.values()[i].to_string());
        Ok(match text {
            Some(t) => format!("{}({key}: {t})", schema.name),
            None => format!("{}({key})", schema.name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    /// The Fig. 1 bibliography schema of the paper.
    pub(crate) fn bib_db() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Cites")
                .column("Citing", ColumnType::Text)
                .column("Cited", ColumnType::Text)
                .primary_key(&["Citing", "Cited"])
                .foreign_key_with_similarity(&["Citing"], "Paper", 2.0)
                .foreign_key_with_similarity(&["Cited"], "Paper", 2.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn seed_fig1(db: &mut Database) -> (Rid, Vec<Rid>, Vec<Rid>) {
        let paper = db
            .insert(
                "Paper",
                vec![
                    Value::text("ChakrabartiSD98"),
                    Value::text("Mining Surprising Patterns Using Temporal Description Length"),
                ],
            )
            .unwrap();
        let mut authors = Vec::new();
        let mut writes = Vec::new();
        for (id, name) in [
            ("SoumenC", "Soumen Chakrabarti"),
            ("SunitaS", "Sunita Sarawagi"),
            ("ByronD", "Byron Dom"),
        ] {
            let a = db
                .insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
            let w = db
                .insert(
                    "Writes",
                    vec![Value::text(id), Value::text("ChakrabartiSD98")],
                )
                .unwrap();
            authors.push(a);
            writes.push(w);
        }
        (paper, authors, writes)
    }

    #[test]
    fn fig1_links_resolve_both_directions() {
        let mut db = bib_db();
        let (paper, authors, writes) = seed_fig1(&mut db);
        // Forward: each Writes tuple resolves to its author and paper.
        assert_eq!(db.resolve_fk(writes[0], 0).unwrap(), Some(authors[0]));
        assert_eq!(db.resolve_fk(writes[0], 1).unwrap(), Some(paper));
        // Backward: the paper is referenced by all three Writes tuples.
        assert_eq!(db.indegree(paper), 3);
        let writes_rel = db.relation_id("Writes").unwrap();
        assert_eq!(db.indegree_from(paper, writes_rel), 3);
        assert_eq!(db.indegree(authors[1]), 1);
        // Counts match the seven tuples of Fig. 1(B).
        assert_eq!(db.total_tuples(), 7);
        assert_eq!(db.link_count(), 6);
    }

    #[test]
    fn fk_violation_rejected_and_db_unchanged() {
        let mut db = bib_db();
        let err = db
            .insert("Writes", vec![Value::text("ghost"), Value::text("nopaper")])
            .unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
        assert_eq!(db.total_tuples(), 0);
        assert_eq!(db.link_count(), 0);
    }

    #[test]
    fn delete_restrict_then_allow() {
        let mut db = bib_db();
        let (paper, _authors, writes) = seed_fig1(&mut db);
        // The paper is referenced: delete must fail.
        assert!(db.delete(paper).is_err());
        // Deleting the referencing tuples unblocks it and decrements links.
        for w in writes {
            db.delete(w).unwrap();
        }
        assert_eq!(db.indegree(paper), 0);
        db.delete(paper).unwrap();
        assert_eq!(db.link_count(), 0);
    }

    #[test]
    fn update_fk_column_relinks_backrefs() {
        let mut db = bib_db();
        let (paper, authors, writes) = seed_fig1(&mut db);
        let second = db
            .insert(
                "Paper",
                vec![Value::text("SarawagiC00"), Value::text("Scalable Mining")],
            )
            .unwrap();
        assert_eq!(db.indegree(paper), 3);
        assert_eq!(db.indegree(second), 0);
        // Writes has pk (AuthorId, PaperId) so PaperId is not updatable
        // there; use Cites (pk = both cols) — also not updatable. Use a
        // fresh link relation without the fk columns in its pk.
        db.create_relation(
            RelationSchema::builder("Likes")
                .column("Id", ColumnType::Int)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        let like = db
            .insert("Likes", vec![Value::Int(1), Value::text("ChakrabartiSD98")])
            .unwrap();
        assert_eq!(db.indegree(paper), 4);
        let links_before = db.link_count();

        // Repoint the like at the second paper.
        let old = db.update(like, 1, Value::text("SarawagiC00")).unwrap();
        assert_eq!(old, Value::text("ChakrabartiSD98"));
        assert_eq!(db.indegree(paper), 3);
        assert_eq!(db.indegree(second), 1);
        assert_eq!(db.link_count(), links_before);
        assert_eq!(db.resolve_fk(like, 0).unwrap(), Some(second));

        // Dangling update rejected, nothing relinked.
        assert!(matches!(
            db.update(like, 1, Value::text("nope")).unwrap_err(),
            StorageError::ForeignKeyViolation { .. }
        ));
        assert_eq!(db.indegree(second), 1);
        assert_eq!(db.link_count(), links_before);

        // Non-FK column update leaves links alone.
        db.update(authors[0], 1, Value::text("S. Chakrabarti"))
            .unwrap();
        assert_eq!(db.link_count(), links_before);

        // PK column update rejected at the table layer.
        assert!(db.update(writes[0], 0, Value::text("X")).is_err());
        // Out-of-range column is a typed error.
        assert!(matches!(
            db.update(authors[0], 9, Value::Null).unwrap_err(),
            StorageError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn composite_fk_updates_validate_as_a_unit() {
        // A relation with a composite primary key, referenced by a
        // two-column foreign key.
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Slot")
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .primary_key(&["Room", "Hour"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Booking")
                .column("Id", ColumnType::Text)
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["Room", "Hour"], "Slot")
                .build()
                .unwrap(),
        )
        .unwrap();
        let s1 = db
            .insert("Slot", vec![Value::text("r1"), Value::text("h1")])
            .unwrap();
        let s2 = db
            .insert("Slot", vec![Value::text("r2"), Value::text("h2")])
            .unwrap();
        let booking = db
            .insert(
                "Booking",
                vec![Value::text("b"), Value::text("r1"), Value::text("h1")],
            )
            .unwrap();
        assert_eq!(db.indegree(s1), 1);

        // (r1,h1) → (r2,h2): neither intermediate state — (r2,h1) nor
        // (r1,h2) — exists, but the final state does. Must succeed.
        let old = db
            .update_columns(booking, &[(1, Value::text("r2")), (2, Value::text("h2"))])
            .unwrap();
        assert_eq!(old, vec![Value::text("r1"), Value::text("h1")]);
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2));
        assert_eq!(db.indegree(s1), 0);
        assert_eq!(db.indegree(s2), 1);
        assert_eq!(db.link_count(), 1);

        // A final state that dangles is rejected with nothing applied.
        assert!(db
            .update_columns(booking, &[(1, Value::text("r1")), (2, Value::text("h9"))])
            .is_err());
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2));
        assert_eq!(db.indegree(s2), 1);

        // Per-column validation still fires before any write: a later
        // bad assignment voids an earlier good one.
        assert!(db
            .update_columns(booking, &[(1, Value::text("r1")), (9, Value::Null)])
            .is_err());
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2), "untouched");
    }

    #[test]
    fn update_fk_to_null_and_back() {
        let mut db = Database::new("org");
        db.create_relation(
            RelationSchema::builder("Person")
                .column("Id", ColumnType::Text)
                .nullable_column("Manager", ColumnType::Text)
                .primary_key(&["Id"])
                .nullable_foreign_key(&["Manager"], "Person")
                .build()
                .unwrap(),
        )
        .unwrap();
        let boss = db
            .insert("Person", vec![Value::text("boss"), Value::Null])
            .unwrap();
        let emp = db
            .insert("Person", vec![Value::text("emp"), Value::text("boss")])
            .unwrap();
        assert_eq!(db.indegree(boss), 1);
        db.update(emp, 1, Value::Null).unwrap();
        assert_eq!(db.indegree(boss), 0);
        assert_eq!(db.link_count(), 0);
        db.update(emp, 1, Value::text("boss")).unwrap();
        assert_eq!(db.indegree(boss), 1);
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn create_relation_checks_fk_targets() {
        let mut db = Database::new("x");
        let err = db
            .create_relation(
                RelationSchema::builder("Writes")
                    .column("AuthorId", ColumnType::Text)
                    .foreign_key(&["AuthorId"], "Author")
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::UnknownRelation(_)));
    }

    #[test]
    fn self_referencing_relation_allowed() {
        let mut db = Database::new("org");
        db.create_relation(
            RelationSchema::builder("Person")
                .column("Id", ColumnType::Text)
                .nullable_column("Manager", ColumnType::Text)
                .primary_key(&["Id"])
                .nullable_foreign_key(&["Manager"], "Person")
                .build()
                .unwrap(),
        )
        .unwrap();
        let boss = db
            .insert("Person", vec![Value::text("boss"), Value::Null])
            .unwrap();
        let emp = db
            .insert("Person", vec![Value::text("emp"), Value::text("boss")])
            .unwrap();
        assert_eq!(db.resolve_fk(emp, 0).unwrap(), Some(boss));
        assert_eq!(db.resolve_fk(boss, 0).unwrap(), None);
        assert_eq!(db.indegree(boss), 1);
    }

    #[test]
    fn fk_arity_mismatch_rejected_at_create() {
        let mut db = bib_db();
        let err = db
            .create_relation(
                RelationSchema::builder("Bad")
                    .column("A", ColumnType::Text)
                    .column("B", ColumnType::Text)
                    .foreign_key(&["A", "B"], "Author")
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn describe_tuple_renders_key_and_text() {
        let mut db = bib_db();
        let (paper, ..) = seed_fig1(&mut db);
        let desc = db.describe_tuple(paper).unwrap();
        assert!(desc.starts_with("Paper(ChakrabartiSD98"));
        assert!(desc.contains("Mining Surprising Patterns"));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = bib_db();
        let err = db
            .create_relation(
                RelationSchema::builder("Author")
                    .column("X", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }
}
