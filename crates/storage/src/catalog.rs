//! The database catalog: a set of relations plus cross-relation link
//! bookkeeping (foreign-key resolution in both directions).
//!
//! The backward direction — "which tuples reference this one?" — powers two
//! core pieces of BANKS: the backward-edge weights / node prestige of §2.2
//! (both derived from indegree) and the "browse a primary key backwards"
//! feature of §4.

use crate::blocks::{
    checksum64, decode_lane, encode_block, encode_lane, RelationPayload, TupleBlock, TupleStore,
    TupleStoreStats, BLOCK_SPAN,
};
use crate::bundle::schema_from_text;
use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::table::Table;
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use banks_util::fxhash::{FxHashMap, FxHashSet};
use std::collections::HashMap;
use std::sync::Arc;

/// A recorded reverse reference: tuple `from` references the indexed tuple
/// through foreign key `fk_index` of `from`'s relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackRef {
    /// The referencing tuple.
    pub from: Rid,
    /// Which foreign key of `from`'s relation produced the reference.
    pub fk_index: usize,
}

/// The reverse-reference index: fully resident, or a view over a
/// [`TupleStore`]'s per-block back-reference sublanes.
///
/// In the lazy representation a target's list is read straight out of
/// its tuple block until the first mutation touches it, at which point
/// the full list materializes into the overlay (lists are short — a
/// tuple's indegree — so full-replacement is cheap) and stays
/// authoritative from then on.
#[derive(Debug, Clone)]
enum BackRefsRepr {
    Eager(FxHashMap<Rid, Vec<BackRef>>),
    Lazy {
        store: Arc<dyn TupleStore>,
        overlay: FxHashMap<Rid, Vec<BackRef>>,
    },
}

impl Default for BackRefsRepr {
    fn default() -> BackRefsRepr {
        BackRefsRepr::Eager(FxHashMap::default())
    }
}

/// An in-memory relational database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, RelationId>,
    /// rid → tuples referencing it. Maintained on insert/delete;
    /// Fx-hashed — touched on every insert/delete/update and rebuilt
    /// wholesale on binary-snapshot restore. Lazy databases read base
    /// lists out of tuple blocks instead (see [`BackRefsRepr`]).
    back_refs: BackRefsRepr,
    /// Total number of resolved foreign-key links.
    link_count: usize,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            ..Database::default()
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a new relation. Foreign keys must reference relations that
    /// already exist (self-references are allowed).
    pub fn create_relation(&mut self, schema: RelationSchema) -> StorageResult<RelationId> {
        schema.validate()?;
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::DuplicateRelation(schema.name));
        }
        for fk in &schema.foreign_keys {
            if fk.ref_relation != schema.name && !self.by_name.contains_key(&fk.ref_relation) {
                return Err(StorageError::UnknownRelation(fk.ref_relation.clone()));
            }
            let target = if fk.ref_relation == schema.name {
                &schema
            } else {
                self.relation(&fk.ref_relation)?.schema()
            };
            if !target.has_primary_key() {
                return Err(StorageError::InvalidSchema(format!(
                    "foreign key from `{}` references `{}` which has no primary key",
                    schema.name, fk.ref_relation
                )));
            }
            if target.primary_key.len() != fk.columns.len() {
                return Err(StorageError::InvalidSchema(format!(
                    "foreign key from `{}` to `{}` has {} columns but the key has {}",
                    schema.name,
                    fk.ref_relation,
                    fk.columns.len(),
                    target.primary_key.len()
                )));
            }
        }
        let id = RelationId(u32::try_from(self.tables.len()).expect("too many relations"));
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(id, schema));
        Ok(id)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.tables.len()
    }

    /// Iterate over all tables.
    pub fn relations(&self) -> impl Iterator<Item = &Table> + '_ {
        self.tables.iter()
    }

    /// Resolve a relation name to its id.
    pub fn relation_id(&self, name: &str) -> StorageResult<RelationId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Borrow a table by name.
    pub fn relation(&self, name: &str) -> StorageResult<&Table> {
        let id = self.relation_id(name)?;
        Ok(&self.tables[id.index()])
    }

    /// Borrow a table by id.
    pub fn table(&self, id: RelationId) -> &Table {
        &self.tables[id.index()]
    }

    /// Fetch a tuple by rid.
    pub fn tuple(&self, rid: Rid) -> StorageResult<&Tuple> {
        self.tables
            .get(rid.relation.index())
            .and_then(|t| t.get(rid.slot))
            .ok_or_else(|| StorageError::InvalidRid(rid.to_string()))
    }

    /// Extract the foreign-key value of `values` for foreign key `fk_index`
    /// of `schema`. Returns `None` if any component is NULL.
    fn fk_key(schema: &RelationSchema, fk_index: usize, values: &[Value]) -> Option<Vec<Value>> {
        let fk = &schema.foreign_keys[fk_index];
        let mut key = Vec::with_capacity(fk.columns.len());
        for &c in &fk.columns {
            let v = &values[c];
            if v.is_null() {
                return None;
            }
            key.push(v.clone());
        }
        Some(key)
    }

    /// Insert a tuple, enforcing schema, primary-key, and foreign-key
    /// constraints, and maintaining the reverse-reference index.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> StorageResult<Rid> {
        let id = self.relation_id(relation)?;
        // Resolve every foreign key before mutating anything.
        let schema = self.tables[id.index()].schema().clone();
        if values.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.name.clone(),
                expected: schema.arity(),
                actual: values.len(),
            });
        }
        let mut resolved: Vec<(usize, Rid)> = Vec::with_capacity(schema.foreign_keys.len());
        for (fk_index, fk) in schema.foreign_keys.iter().enumerate() {
            match Self::fk_key(&schema, fk_index, &values) {
                None => {
                    if !fk.nullable {
                        return Err(StorageError::NullViolation {
                            relation: schema.name.clone(),
                            column: schema.columns[fk.columns[0]].name.clone(),
                        });
                    }
                }
                Some(key) => {
                    let target = self.relation(&fk.ref_relation)?;
                    match target.lookup_pk(&key) {
                        Some(target_rid) => resolved.push((fk_index, target_rid)),
                        None => {
                            return Err(StorageError::ForeignKeyViolation {
                                relation: schema.name.clone(),
                                referenced: fk.ref_relation.clone(),
                                key: format!("{key:?}"),
                            })
                        }
                    }
                }
            }
        }
        let rid = self.tables[id.index()].insert(values)?;
        for (fk_index, target) in resolved {
            self.add_back_ref(target, BackRef {
                from: rid,
                fk_index,
            });
        }
        Ok(rid)
    }

    /// Record that `br.from` references `target`.
    fn add_back_ref(&mut self, target: Rid, br: BackRef) {
        match &mut self.back_refs {
            BackRefsRepr::Eager(map) => map.entry(target).or_default().push(br),
            BackRefsRepr::Lazy { store, overlay } => {
                overlay
                    .entry(target)
                    .or_insert_with(|| base_refs_of(&**store, target))
                    .push(br);
            }
        }
        self.link_count += 1;
    }

    /// Drop the reverse reference `(from, fk_index)` from `target`'s
    /// list, if present.
    fn remove_back_ref(&mut self, target: Rid, from: Rid, fk_index: usize) {
        let refs = match &mut self.back_refs {
            BackRefsRepr::Eager(map) => match map.get_mut(&target) {
                Some(refs) => refs,
                None => return,
            },
            BackRefsRepr::Lazy { store, overlay } => overlay
                .entry(target)
                .or_insert_with(|| base_refs_of(&**store, target)),
        };
        if let Some(pos) = refs
            .iter()
            .position(|b| b.from == from && b.fk_index == fk_index)
        {
            refs.swap_remove(pos);
            self.link_count -= 1;
        }
    }

    /// Delete a tuple. Fails (RESTRICT semantics) if other tuples still
    /// reference it.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<Tuple> {
        if !self.referencing(rid).is_empty() {
            return Err(StorageError::ForeignKeyViolation {
                relation: self.table(rid.relation).schema().name.clone(),
                referenced: self.table(rid.relation).schema().name.clone(),
                key: format!("{rid} is still referenced"),
            });
        }
        // Remove this tuple's own outgoing references from the reverse index.
        let schema = self.table(rid.relation).schema().clone();
        let values: Vec<Value> = self.tuple(rid)?.values().to_vec();
        for fk_index in 0..schema.foreign_keys.len() {
            if let Some(key) = Self::fk_key(&schema, fk_index, &values) {
                let fk = &schema.foreign_keys[fk_index];
                if let Some(target_rid) = self.relation(&fk.ref_relation)?.lookup_pk(&key) {
                    self.remove_back_ref(target_rid, rid, fk_index);
                }
            }
        }
        self.tables[rid.relation.index()].delete(rid.slot)
    }

    /// Update one column of the tuple at `rid` to `value`, maintaining
    /// the reverse-reference index when the column participates in a
    /// foreign key. Returns the previous value.
    ///
    /// Primary-key columns cannot be updated (delete + insert instead),
    /// and a new foreign-key value must resolve, exactly as on insert —
    /// the tuple-level write path of live ingestion.
    pub fn update(&mut self, rid: Rid, column: usize, value: Value) -> StorageResult<Value> {
        let old = self.update_columns(rid, &[(column, value)])?;
        Ok(old
            .into_iter()
            .next()
            .expect("one assignment, one old value"))
    }

    /// Update several columns of the tuple at `rid` **as one unit**:
    /// every constraint — including foreign keys spanning multiple
    /// updated columns — is validated against the *final* state before
    /// anything mutates, so a composite-key repoint `(a1,b1) → (a2,b2)`
    /// succeeds even when the intermediate `(a2,b1)` would dangle.
    /// Returns the previous values in assignment order. On error the
    /// database is untouched.
    pub fn update_columns(
        &mut self,
        rid: Rid,
        assignments: &[(usize, Value)],
    ) -> StorageResult<Vec<Value>> {
        let schema = self.table(rid.relation).schema().clone();
        let old_values: Vec<Value> = self.tuple(rid)?.values().to_vec();

        // Column-level validation of every assignment against the
        // schema (range, pk guard, nullability, type), before any write.
        let mut new_values = old_values.clone();
        let mut touched = Vec::with_capacity(assignments.len());
        for &(column, ref value) in assignments {
            let Some(col) = schema.columns.get(column) else {
                return Err(StorageError::UnknownColumn {
                    relation: schema.name.clone(),
                    column: format!("#{column}"),
                });
            };
            if schema.primary_key.contains(&column) {
                return Err(StorageError::InvalidSchema(format!(
                    "cannot update primary-key column {column} of `{}`",
                    schema.name
                )));
            }
            if value.is_null() && !col.nullable {
                return Err(StorageError::NullViolation {
                    relation: schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !value.is_null() && !col.ty.accepts(value) {
                return Err(StorageError::TypeMismatch {
                    relation: schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    actual: value.to_string(),
                });
            }
            new_values[column] = value.clone();
            touched.push(column);
        }

        // Validate and resolve every foreign key touching any updated
        // column against the final values.
        let mut relink: Vec<(usize, Option<Rid>, Option<Rid>)> = Vec::new();
        for (fk_index, fk) in schema.foreign_keys.iter().enumerate() {
            if !fk.columns.iter().any(|c| touched.contains(c)) {
                continue;
            }
            let old_target = match Self::fk_key(&schema, fk_index, &old_values) {
                Some(key) => self.relation(&fk.ref_relation)?.lookup_pk(&key),
                None => None,
            };
            let new_target = match Self::fk_key(&schema, fk_index, &new_values) {
                Some(key) => match self.relation(&fk.ref_relation)?.lookup_pk(&key) {
                    Some(target) => Some(target),
                    None => {
                        return Err(StorageError::ForeignKeyViolation {
                            relation: schema.name.clone(),
                            referenced: fk.ref_relation.clone(),
                            key: format!("{key:?}"),
                        })
                    }
                },
                None => {
                    if !fk.nullable {
                        return Err(StorageError::NullViolation {
                            relation: schema.name.clone(),
                            column: schema.columns[fk.columns[0]].name.clone(),
                        });
                    }
                    None
                }
            };
            if old_target != new_target {
                relink.push((fk_index, old_target, new_target));
            }
        }

        // All checks passed: write the columns (the table re-checks each
        // one, which now cannot fail) and swap the reverse references.
        for &(column, ref value) in assignments {
            self.tables[rid.relation.index()].update(rid.slot, column, value.clone())?;
        }
        for (fk_index, old_target, new_target) in relink {
            if let Some(target) = old_target {
                self.remove_back_ref(target, rid, fk_index);
            }
            if let Some(target) = new_target {
                self.add_back_ref(target, BackRef {
                    from: rid,
                    fk_index,
                });
            }
        }
        Ok(assignments
            .iter()
            .map(|&(column, _)| old_values[column].clone())
            .collect())
    }

    /// Restore the deserialized slot vector of `relation` (see
    /// [`Table::restore_slots`]) without touching the link bookkeeping —
    /// callers restore every relation first, then run
    /// [`Database::rebuild_links`] once.
    pub(crate) fn restore_relation_slots(
        &mut self,
        relation: RelationId,
        slots: Vec<Option<Tuple>>,
    ) -> StorageResult<()> {
        self.tables[relation.index()].restore_slots(slots)
    }

    /// Install a deserialized reverse-reference index wholesale —
    /// the binary-snapshot load path, which serializes the index
    /// instead of re-resolving every foreign key (15K `Vec<Value>`
    /// hash lookups on the small corpus) and thereby preserves the
    /// live system's exact per-target reference order.
    ///
    /// Every rid is bounds/liveness-checked (O(1) each); the tuples
    /// themselves were validated by the slot restore. Each `(from,
    /// fk_index)` must name a real foreign key of `from`'s relation.
    pub(crate) fn install_links(&mut self, links: Vec<(Rid, Vec<BackRef>)>) -> StorageResult<()> {
        let live = |rid: Rid| -> bool {
            self.tables
                .get(rid.relation.index())
                .is_some_and(|t| t.get(rid.slot).is_some())
        };
        let mut total = 0usize;
        for (target, refs) in &links {
            if !live(*target) {
                return Err(StorageError::Corrupt(format!(
                    "restored back-reference target {target} is not a live tuple"
                )));
            }
            for backref in refs {
                if !live(backref.from) {
                    return Err(StorageError::Corrupt(format!(
                        "restored back-reference source {} is not a live tuple",
                        backref.from
                    )));
                }
                let fks = self.tables[backref.from.relation.index()]
                    .schema()
                    .foreign_keys
                    .len();
                if backref.fk_index >= fks {
                    return Err(StorageError::Corrupt(format!(
                        "restored back-reference names foreign key #{} of {}, which has {fks}",
                        backref.fk_index, backref.from
                    )));
                }
                total += 1;
            }
        }
        let mut back_refs = FxHashMap::default();
        back_refs.reserve(links.len());
        for (target, refs) in links {
            if back_refs.insert(target, refs).is_some() {
                // A later duplicate entry would silently shadow the
                // earlier one while `total` counted both — reject the
                // stream instead of installing an index that disagrees
                // with its own link count.
                return Err(StorageError::Corrupt(format!(
                    "restored back-reference target {target} listed twice"
                )));
            }
        }
        self.back_refs = BackRefsRepr::Eager(back_refs);
        self.link_count = total;
        Ok(())
    }

    /// Resolve foreign key `fk_index` of the tuple at `rid`.
    ///
    /// Returns `Ok(None)` when the key is NULL (no link).
    pub fn resolve_fk(&self, rid: Rid, fk_index: usize) -> StorageResult<Option<Rid>> {
        let table = self.table(rid.relation);
        let schema = table.schema();
        if fk_index >= schema.foreign_keys.len() {
            return Err(StorageError::InvalidSchema(format!(
                "relation `{}` has no foreign key #{fk_index}",
                schema.name
            )));
        }
        let tuple = self.tuple(rid)?;
        match Self::fk_key(schema, fk_index, tuple.values()) {
            None => Ok(None),
            Some(key) => {
                let fk = &schema.foreign_keys[fk_index];
                let target = self.relation(&fk.ref_relation)?;
                Ok(target.lookup_pk(&key))
            }
        }
    }

    /// All tuples referencing `rid` (the backward direction of §4 browsing
    /// and the indegree of §2.2).
    ///
    /// On a lazy database an untouched target's list is read out of its
    /// tuple block, so the borrow is keep-alive-ring licensed (valid for
    /// the next 63 block accesses on this thread); every in-tree caller
    /// consumes it before the next access.
    pub fn referencing(&self, rid: Rid) -> &[BackRef] {
        match &self.back_refs {
            BackRefsRepr::Eager(map) => {
                map.get(&rid).map(|v| v.as_slice()).unwrap_or(&[])
            }
            BackRefsRepr::Lazy { overlay, .. } => {
                if let Some(refs) = overlay.get(&rid) {
                    return refs;
                }
                self.tables
                    .get(rid.relation.index())
                    .and_then(|t| t.base_refs(rid.slot))
                    .unwrap_or(&[])
            }
        }
    }

    /// Indegree of a tuple: number of references to it (the paper's node
    /// prestige, §2.2: "we set the node prestige to the indegree of the
    /// node").
    pub fn indegree(&self, rid: Rid) -> usize {
        self.referencing(rid).len()
    }

    /// Indegree of `rid` contributed by tuples of `relation` — the
    /// `IN_{R}(v)` term of the paper's backward-edge weight (eq. 1).
    pub fn indegree_from(&self, rid: Rid, relation: RelationId) -> usize {
        self.referencing(rid)
            .iter()
            .filter(|b| b.from.relation == relation)
            .count()
    }

    /// Total live tuples over all relations (graph node count).
    pub fn total_tuples(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Total resolved foreign-key links (half the directed edge count of the
    /// BANKS graph, which adds a backward edge per link).
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// A short human-readable rendering of a tuple, used in answers and
    /// browsing: the primary key plus the first textual non-key attribute.
    pub fn describe_tuple(&self, rid: Rid) -> StorageResult<String> {
        let table = self.table(rid.relation);
        let schema = table.schema();
        let tuple = self.tuple(rid)?;
        let key = if schema.has_primary_key() {
            schema
                .key_of(tuple.values())
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        } else {
            rid.to_string()
        };
        let text = schema
            .columns
            .iter()
            .enumerate()
            .find(|(i, c)| {
                !schema.primary_key.contains(i)
                    && matches!(c.ty, crate::schema::ColumnType::Text)
                    && !tuple.values()[*i].is_null()
            })
            .map(|(i, _)| tuple.values()[i].to_string());
        Ok(match text {
            Some(t) => format!("{}({key}: {t})", schema.name),
            None => format!("{}({key})", schema.name),
        })
    }

    /// Is `rid` a live tuple? Answered from presence information alone —
    /// no block decodes on a lazy database.
    pub fn is_live(&self, rid: Rid) -> bool {
        self.tables
            .get(rid.relation.index())
            .is_some_and(|t| t.is_live(rid.slot))
    }

    /// Open a lazy database over `store`: the catalog comes from
    /// `schema_text` (the store's recorded schema), tuples and reverse
    /// references page in from the store on demand, and mutations land
    /// in per-table overlays so a later snapshot rewrites only touched
    /// blocks.
    pub fn open_lazy(schema_text: &str, store: Arc<dyn TupleStore>) -> StorageResult<Database> {
        let mut db = schema_from_text(schema_text)?;
        if db.relation_count() != store.relation_count() {
            return Err(StorageError::Corrupt(format!(
                "schema declares {} relations but the tuple store carries {}",
                db.relation_count(),
                store.relation_count()
            )));
        }
        for (rel, table) in db.tables.iter_mut().enumerate() {
            table.make_lazy(Arc::clone(&store), rel as u32)?;
        }
        db.link_count = usize::try_from(store.link_count())
            .map_err(|_| StorageError::Corrupt("tuple store link count overflows usize".into()))?;
        db.back_refs = BackRefsRepr::Lazy {
            store,
            overlay: FxHashMap::default(),
        };
        Ok(db)
    }

    /// The backing tuple store, if this database is lazy.
    pub fn tuple_store(&self) -> Option<&Arc<dyn TupleStore>> {
        match &self.back_refs {
            BackRefsRepr::Eager(_) => None,
            BackRefsRepr::Lazy { store, .. } => Some(store),
        }
    }

    /// Cache counters of the backing tuple store (`None` when fully
    /// resident).
    pub fn tuple_store_stats(&self) -> Option<TupleStoreStats> {
        self.tuple_store().map(|s| s.stats())
    }

    /// Build one relation's v3 section payloads (see
    /// [`crate::blocks::encode_database_v3`]). On a lazy database this
    /// is copy-on-write: blocks and lanes untouched since open are
    /// copied raw from the backing store, checksums and all.
    pub(crate) fn v3_relation_payload(
        &self,
        id: RelationId,
        span: u32,
    ) -> StorageResult<RelationPayload> {
        let table = self.table(id);
        let slot_count = u32::try_from(table.slot_count()).expect("slot count fits u32");
        let block_count = u64::from(slot_count).div_ceil(u64::from(span)) as u32;
        let mut presence = vec![0u8; slot_count.div_ceil(8) as usize];
        for slot in table.live_slots() {
            presence[(slot / 8) as usize] |= 1 << (slot % 8);
        }

        // Which blocks must be re-encoded? All of them on an eager
        // database; on a lazy one, only blocks whose tuples or
        // back-reference lists changed, plus any block whose covered
        // range grew with appends.
        let parts = table.lazy_parts();
        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        let (clean_source, lane) = match &parts {
            None => (None, None),
            Some(p) => {
                for &slot in &p.overlay_slots {
                    dirty.insert(slot / span);
                }
                if let BackRefsRepr::Lazy { overlay, .. } = &self.back_refs {
                    for target in overlay.keys().filter(|r| r.relation == id) {
                        dirty.insert(target.slot / span);
                    }
                }
                if p.slot_count != p.base_slots {
                    // Blocks ending past the old slot count now cover
                    // more slots than the stored bytes do.
                    let first_grown = p.base_slots / span;
                    for b in first_grown..block_count {
                        dirty.insert(b);
                    }
                }
                let lane = if p.pk_dirty() {
                    let (raw, _, _) = p.store.raw_pk_lane(p.rel)?;
                    let mut entries = decode_lane(&raw)?;
                    entries.retain(|e| !p.pk_deleted.contains(e));
                    entries.extend_from_slice(&p.pk_added);
                    Some(encode_lane(entries))
                } else {
                    None
                };
                (Some((Arc::clone(p.store), p.rel)), lane)
            }
        };

        let pk_lane = match lane {
            Some(bytes) => bytes,
            None => match &clean_source {
                Some((store, rel)) => store.raw_pk_lane(*rel)?.0,
                None => {
                    let entries = if table.schema().has_primary_key() {
                        table
                            .scan()
                            .map(|(rid, t)| (table.pk_hash_of_row(t.values()), rid.slot))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    encode_lane(entries)
                }
            },
        };

        let mut blocks = Vec::with_capacity(block_count as usize);
        for b in 0..block_count {
            let reuse = match &clean_source {
                Some((store, rel)) if !dirty.contains(&b) => Some(store.raw_block(*rel, b)?),
                _ => None,
            };
            blocks.push(match reuse {
                Some(raw) => raw,
                None => {
                    let first = b * span;
                    let end = slot_count.min(first.saturating_add(span));
                    let bytes = self.encode_block_range(id, first, end);
                    let checksum = checksum64(&bytes);
                    (bytes, checksum)
                }
            });
        }

        Ok(RelationPayload {
            slot_count,
            live_count: table.len() as u64,
            presence,
            pk_checksum: checksum64(&pk_lane),
            pk_entries: (pk_lane.len() / 12) as u64,
            pk_lane,
            blocks,
        })
    }

    /// Encode slots `[first, end)` of relation `id` from live state.
    fn encode_block_range(&self, id: RelationId, first: u32, end: u32) -> Vec<u8> {
        let table = self.table(id);
        encode_block((first..end).map(|slot| {
            table
                .get(slot)
                .map(|tuple| (tuple, self.referencing(Rid::new(id, slot))))
        }))
    }
}

/// A target's base reverse-reference list, cloned out of its tuple
/// block (empty for appended slots, which have no base block).
fn base_refs_of(store: &dyn TupleStore, target: Rid) -> Vec<BackRef> {
    let rel = target.relation.0;
    if target.slot >= store.slot_count(rel) {
        return Vec::new();
    }
    store
        .block(rel, target.slot / store.block_span())
        .refs(target.slot)
        .to_vec()
}

/// The eager database *is* a tuple store: blocks materialize by cloning
/// out of the slot vectors. This keeps the two representations
/// interchangeable (tests diff them directly) and gives the snapshot
/// writer one code path; it is not a hot path.
impl TupleStore for Database {
    fn relation_count(&self) -> usize {
        self.tables.len()
    }

    fn block_span(&self) -> u32 {
        BLOCK_SPAN
    }

    fn slot_count(&self, rel: u32) -> u32 {
        self.tables
            .get(rel as usize)
            .map(|t| t.slot_count() as u32)
            .unwrap_or(0)
    }

    fn live_count(&self, rel: u32) -> usize {
        self.tables.get(rel as usize).map(|t| t.len()).unwrap_or(0)
    }

    fn link_count(&self) -> u64 {
        self.link_count as u64
    }

    fn is_live(&self, rel: u32, slot: u32) -> bool {
        self.is_live(Rid::new(RelationId(rel), slot))
    }

    fn block(&self, rel: u32, block: u32) -> Arc<TupleBlock> {
        let id = RelationId(rel);
        let table = self.table(id);
        let span = TupleStore::block_span(self);
        let first = block * span;
        let end = (table.slot_count() as u32).min(first.saturating_add(span));
        let mut bytes = 64usize;
        let tuples: Vec<Option<Tuple>> = (first..end)
            .map(|s| {
                let t = table.get(s).cloned();
                if let Some(t) = &t {
                    bytes += 48
                        + t.arity() * 32
                        + t.values()
                            .iter()
                            .map(|v| match v {
                                Value::Text(s) => s.len(),
                                _ => 0,
                            })
                            .sum::<usize>();
                }
                t
            })
            .collect();
        let back_refs: Vec<Vec<BackRef>> = (first..end)
            .map(|s| {
                let refs = self.referencing(Rid::new(id, s)).to_vec();
                bytes += 24 + refs.len() * std::mem::size_of::<BackRef>();
                refs
            })
            .collect();
        Arc::new(TupleBlock {
            first_slot: first,
            tuples,
            back_refs,
            bytes,
        })
    }

    fn pk_candidates(&self, rel: u32, hash: u64) -> Vec<u32> {
        self.tables
            .get(rel as usize)
            .map(|t| t.pk_candidates_by_hash(hash))
            .unwrap_or_default()
    }

    fn raw_block(&self, rel: u32, block: u32) -> StorageResult<(Vec<u8>, u64)> {
        let id = RelationId(rel);
        let span = TupleStore::block_span(self);
        let first = block * span;
        let end = (self.table(id).slot_count() as u32).min(first.saturating_add(span));
        let bytes = self.encode_block_range(id, first, end);
        let checksum = checksum64(&bytes);
        Ok((bytes, checksum))
    }

    fn raw_pk_lane(&self, rel: u32) -> StorageResult<(Vec<u8>, u64, u64)> {
        let id = RelationId(rel);
        let table = self.table(id);
        let entries = if table.schema().has_primary_key() {
            table
                .scan()
                .map(|(rid, t)| (table.pk_hash_of_row(t.values()), rid.slot))
                .collect()
        } else {
            Vec::new()
        };
        let lane = encode_lane(entries);
        let checksum = checksum64(&lane);
        let count = (lane.len() / 12) as u64;
        Ok((lane, checksum, count))
    }

    fn stats(&self) -> TupleStoreStats {
        let span = u64::from(TupleStore::block_span(self));
        TupleStoreStats {
            block_count: self
                .tables
                .iter()
                .map(|t| (t.slot_count() as u64).div_ceil(span) as usize)
                .sum(),
            ..TupleStoreStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    /// The Fig. 1 bibliography schema of the paper.
    pub(crate) fn bib_db() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Cites")
                .column("Citing", ColumnType::Text)
                .column("Cited", ColumnType::Text)
                .primary_key(&["Citing", "Cited"])
                .foreign_key_with_similarity(&["Citing"], "Paper", 2.0)
                .foreign_key_with_similarity(&["Cited"], "Paper", 2.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn seed_fig1(db: &mut Database) -> (Rid, Vec<Rid>, Vec<Rid>) {
        let paper = db
            .insert(
                "Paper",
                vec![
                    Value::text("ChakrabartiSD98"),
                    Value::text("Mining Surprising Patterns Using Temporal Description Length"),
                ],
            )
            .unwrap();
        let mut authors = Vec::new();
        let mut writes = Vec::new();
        for (id, name) in [
            ("SoumenC", "Soumen Chakrabarti"),
            ("SunitaS", "Sunita Sarawagi"),
            ("ByronD", "Byron Dom"),
        ] {
            let a = db
                .insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
            let w = db
                .insert(
                    "Writes",
                    vec![Value::text(id), Value::text("ChakrabartiSD98")],
                )
                .unwrap();
            authors.push(a);
            writes.push(w);
        }
        (paper, authors, writes)
    }

    #[test]
    fn fig1_links_resolve_both_directions() {
        let mut db = bib_db();
        let (paper, authors, writes) = seed_fig1(&mut db);
        // Forward: each Writes tuple resolves to its author and paper.
        assert_eq!(db.resolve_fk(writes[0], 0).unwrap(), Some(authors[0]));
        assert_eq!(db.resolve_fk(writes[0], 1).unwrap(), Some(paper));
        // Backward: the paper is referenced by all three Writes tuples.
        assert_eq!(db.indegree(paper), 3);
        let writes_rel = db.relation_id("Writes").unwrap();
        assert_eq!(db.indegree_from(paper, writes_rel), 3);
        assert_eq!(db.indegree(authors[1]), 1);
        // Counts match the seven tuples of Fig. 1(B).
        assert_eq!(db.total_tuples(), 7);
        assert_eq!(db.link_count(), 6);
    }

    #[test]
    fn fk_violation_rejected_and_db_unchanged() {
        let mut db = bib_db();
        let err = db
            .insert("Writes", vec![Value::text("ghost"), Value::text("nopaper")])
            .unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
        assert_eq!(db.total_tuples(), 0);
        assert_eq!(db.link_count(), 0);
    }

    #[test]
    fn delete_restrict_then_allow() {
        let mut db = bib_db();
        let (paper, _authors, writes) = seed_fig1(&mut db);
        // The paper is referenced: delete must fail.
        assert!(db.delete(paper).is_err());
        // Deleting the referencing tuples unblocks it and decrements links.
        for w in writes {
            db.delete(w).unwrap();
        }
        assert_eq!(db.indegree(paper), 0);
        db.delete(paper).unwrap();
        assert_eq!(db.link_count(), 0);
    }

    #[test]
    fn update_fk_column_relinks_backrefs() {
        let mut db = bib_db();
        let (paper, authors, writes) = seed_fig1(&mut db);
        let second = db
            .insert(
                "Paper",
                vec![Value::text("SarawagiC00"), Value::text("Scalable Mining")],
            )
            .unwrap();
        assert_eq!(db.indegree(paper), 3);
        assert_eq!(db.indegree(second), 0);
        // Writes has pk (AuthorId, PaperId) so PaperId is not updatable
        // there; use Cites (pk = both cols) — also not updatable. Use a
        // fresh link relation without the fk columns in its pk.
        db.create_relation(
            RelationSchema::builder("Likes")
                .column("Id", ColumnType::Int)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        let like = db
            .insert("Likes", vec![Value::Int(1), Value::text("ChakrabartiSD98")])
            .unwrap();
        assert_eq!(db.indegree(paper), 4);
        let links_before = db.link_count();

        // Repoint the like at the second paper.
        let old = db.update(like, 1, Value::text("SarawagiC00")).unwrap();
        assert_eq!(old, Value::text("ChakrabartiSD98"));
        assert_eq!(db.indegree(paper), 3);
        assert_eq!(db.indegree(second), 1);
        assert_eq!(db.link_count(), links_before);
        assert_eq!(db.resolve_fk(like, 0).unwrap(), Some(second));

        // Dangling update rejected, nothing relinked.
        assert!(matches!(
            db.update(like, 1, Value::text("nope")).unwrap_err(),
            StorageError::ForeignKeyViolation { .. }
        ));
        assert_eq!(db.indegree(second), 1);
        assert_eq!(db.link_count(), links_before);

        // Non-FK column update leaves links alone.
        db.update(authors[0], 1, Value::text("S. Chakrabarti"))
            .unwrap();
        assert_eq!(db.link_count(), links_before);

        // PK column update rejected at the table layer.
        assert!(db.update(writes[0], 0, Value::text("X")).is_err());
        // Out-of-range column is a typed error.
        assert!(matches!(
            db.update(authors[0], 9, Value::Null).unwrap_err(),
            StorageError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn composite_fk_updates_validate_as_a_unit() {
        // A relation with a composite primary key, referenced by a
        // two-column foreign key.
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Slot")
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .primary_key(&["Room", "Hour"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Booking")
                .column("Id", ColumnType::Text)
                .column("Room", ColumnType::Text)
                .column("Hour", ColumnType::Text)
                .primary_key(&["Id"])
                .foreign_key(&["Room", "Hour"], "Slot")
                .build()
                .unwrap(),
        )
        .unwrap();
        let s1 = db
            .insert("Slot", vec![Value::text("r1"), Value::text("h1")])
            .unwrap();
        let s2 = db
            .insert("Slot", vec![Value::text("r2"), Value::text("h2")])
            .unwrap();
        let booking = db
            .insert(
                "Booking",
                vec![Value::text("b"), Value::text("r1"), Value::text("h1")],
            )
            .unwrap();
        assert_eq!(db.indegree(s1), 1);

        // (r1,h1) → (r2,h2): neither intermediate state — (r2,h1) nor
        // (r1,h2) — exists, but the final state does. Must succeed.
        let old = db
            .update_columns(booking, &[(1, Value::text("r2")), (2, Value::text("h2"))])
            .unwrap();
        assert_eq!(old, vec![Value::text("r1"), Value::text("h1")]);
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2));
        assert_eq!(db.indegree(s1), 0);
        assert_eq!(db.indegree(s2), 1);
        assert_eq!(db.link_count(), 1);

        // A final state that dangles is rejected with nothing applied.
        assert!(db
            .update_columns(booking, &[(1, Value::text("r1")), (2, Value::text("h9"))])
            .is_err());
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2));
        assert_eq!(db.indegree(s2), 1);

        // Per-column validation still fires before any write: a later
        // bad assignment voids an earlier good one.
        assert!(db
            .update_columns(booking, &[(1, Value::text("r1")), (9, Value::Null)])
            .is_err());
        assert_eq!(db.resolve_fk(booking, 0).unwrap(), Some(s2), "untouched");
    }

    #[test]
    fn update_fk_to_null_and_back() {
        let mut db = Database::new("org");
        db.create_relation(
            RelationSchema::builder("Person")
                .column("Id", ColumnType::Text)
                .nullable_column("Manager", ColumnType::Text)
                .primary_key(&["Id"])
                .nullable_foreign_key(&["Manager"], "Person")
                .build()
                .unwrap(),
        )
        .unwrap();
        let boss = db
            .insert("Person", vec![Value::text("boss"), Value::Null])
            .unwrap();
        let emp = db
            .insert("Person", vec![Value::text("emp"), Value::text("boss")])
            .unwrap();
        assert_eq!(db.indegree(boss), 1);
        db.update(emp, 1, Value::Null).unwrap();
        assert_eq!(db.indegree(boss), 0);
        assert_eq!(db.link_count(), 0);
        db.update(emp, 1, Value::text("boss")).unwrap();
        assert_eq!(db.indegree(boss), 1);
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn create_relation_checks_fk_targets() {
        let mut db = Database::new("x");
        let err = db
            .create_relation(
                RelationSchema::builder("Writes")
                    .column("AuthorId", ColumnType::Text)
                    .foreign_key(&["AuthorId"], "Author")
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::UnknownRelation(_)));
    }

    #[test]
    fn self_referencing_relation_allowed() {
        let mut db = Database::new("org");
        db.create_relation(
            RelationSchema::builder("Person")
                .column("Id", ColumnType::Text)
                .nullable_column("Manager", ColumnType::Text)
                .primary_key(&["Id"])
                .nullable_foreign_key(&["Manager"], "Person")
                .build()
                .unwrap(),
        )
        .unwrap();
        let boss = db
            .insert("Person", vec![Value::text("boss"), Value::Null])
            .unwrap();
        let emp = db
            .insert("Person", vec![Value::text("emp"), Value::text("boss")])
            .unwrap();
        assert_eq!(db.resolve_fk(emp, 0).unwrap(), Some(boss));
        assert_eq!(db.resolve_fk(boss, 0).unwrap(), None);
        assert_eq!(db.indegree(boss), 1);
    }

    #[test]
    fn fk_arity_mismatch_rejected_at_create() {
        let mut db = bib_db();
        let err = db
            .create_relation(
                RelationSchema::builder("Bad")
                    .column("A", ColumnType::Text)
                    .column("B", ColumnType::Text)
                    .foreign_key(&["A", "B"], "Author")
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn describe_tuple_renders_key_and_text() {
        let mut db = bib_db();
        let (paper, ..) = seed_fig1(&mut db);
        let desc = db.describe_tuple(paper).unwrap();
        assert!(desc.starts_with("Paper(ChakrabartiSD98"));
        assert!(desc.contains("Mining Surprising Patterns"));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = bib_db();
        let err = db
            .create_relation(
                RelationSchema::builder("Author")
                    .column("X", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }
}
