//! Selection predicates for the browsing interface (§4: "Selections can be
//! imposed on any column").

use crate::value::Value;
use std::fmt;

/// A comparison predicate against one column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Equal to the given value.
    Eq(Value),
    /// Not equal to the given value.
    Ne(Value),
    /// Strictly less than.
    Lt(Value),
    /// Less than or equal.
    Le(Value),
    /// Strictly greater than.
    Gt(Value),
    /// Greater than or equal.
    Ge(Value),
    /// Text contains the given substring (case-insensitive); false for
    /// non-text values.
    Contains(String),
    /// Value is NULL.
    IsNull,
    /// Value is not NULL.
    IsNotNull,
}

impl Predicate {
    /// Evaluate the predicate against a value.
    ///
    /// Following SQL three-valued-logic collapsed to two values: comparisons
    /// against NULL are false (except the explicit null tests).
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Predicate::IsNull => return value.is_null(),
            Predicate::IsNotNull => return !value.is_null(),
            _ => {}
        }
        if value.is_null() {
            return false;
        }
        match self {
            Predicate::Eq(v) => value == v,
            Predicate::Ne(v) => value != v,
            Predicate::Lt(v) => value < v,
            Predicate::Le(v) => value <= v,
            Predicate::Gt(v) => value > v,
            Predicate::Ge(v) => value >= v,
            Predicate::Contains(s) => value
                .as_text()
                .is_some_and(|t| t.to_lowercase().contains(&s.to_lowercase())),
            Predicate::IsNull | Predicate::IsNotNull => unreachable!("handled above"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq(v) => write!(f, "= {v}"),
            Predicate::Ne(v) => write!(f, "<> {v}"),
            Predicate::Lt(v) => write!(f, "< {v}"),
            Predicate::Le(v) => write!(f, "<= {v}"),
            Predicate::Gt(v) => write!(f, "> {v}"),
            Predicate::Ge(v) => write!(f, ">= {v}"),
            Predicate::Contains(s) => write!(f, "contains '{s}'"),
            Predicate::IsNull => write!(f, "is null"),
            Predicate::IsNotNull => write!(f, "is not null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        assert!(Predicate::Eq(Value::Int(3)).matches(&Value::Int(3)));
        assert!(!Predicate::Eq(Value::Int(3)).matches(&Value::Int(4)));
        assert!(Predicate::Ne(Value::Int(3)).matches(&Value::Int(4)));
        assert!(Predicate::Lt(Value::Int(3)).matches(&Value::Int(2)));
        assert!(Predicate::Le(Value::Int(3)).matches(&Value::Int(3)));
        assert!(Predicate::Gt(Value::text("b")).matches(&Value::text("c")));
        assert!(Predicate::Ge(Value::text("b")).matches(&Value::text("b")));
    }

    #[test]
    fn contains_case_insensitive() {
        let p = Predicate::Contains("engineer".into());
        assert!(p.matches(&Value::text("Computer Science and Engineering")));
        assert!(!p.matches(&Value::text("Mathematics")));
        assert!(!p.matches(&Value::Int(5)));
    }

    #[test]
    fn null_semantics() {
        assert!(Predicate::IsNull.matches(&Value::Null));
        assert!(!Predicate::IsNotNull.matches(&Value::Null));
        assert!(Predicate::IsNotNull.matches(&Value::Int(0)));
        // comparisons against NULL are false
        assert!(!Predicate::Eq(Value::Null).matches(&Value::Null));
        assert!(!Predicate::Lt(Value::Int(5)).matches(&Value::Null));
    }

    #[test]
    fn display() {
        assert_eq!(Predicate::Eq(Value::Int(3)).to_string(), "= 3");
        assert_eq!(Predicate::Contains("x".into()).to_string(), "contains 'x'");
        assert_eq!(Predicate::IsNull.to_string(), "is null");
    }
}
