//! The v3 DATA section: block-paged tuple storage.
//!
//! PR 7 took the graph and postings out of core; this module does the
//! same for the tuples themselves. The DATA payload is reframed per
//! relation and per fixed-span **slot block**, behind a self-describing
//! checksummed header, so a paged open can verify the directory only
//! (O(blocks)) and decode tuple blocks lazily on first touch:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "BNKSDT03"   u64 header_len                            │
//! │ header payload:                                              │
//! │   schema text · link_count · block_span · relation_count     │
//! │   per relation:                                              │
//! │     slot_count · live_count · presence bitmap                │
//! │     pk lane   (offset, len, checksum, entries)               │
//! │     per block (offset, len, checksum)                        │
//! │ u64 header checksum                                          │
//! ├──────────────────────────────────────────────────────────────┤
//! │ rel 0 pk lane │ rel 0 block 0 │ rel 0 block 1 │ …            │
//! │ rel 1 pk lane │ …                                            │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Blocks** hold `block_span` consecutive slots: a presence byte per
//!   slot, the tuple's values (ints zigzag-varint packed, text
//!   varint-length prefixed), and a *back-reference sublane* — the
//!   reverse-FK list of each live tuple — so browsing backwards needs
//!   only the one block the target lives in.
//! * The **PK→slot lane** is a separately decodable sorted array of
//!   `(key hash, slot)` pairs, binary-searchable without touching any
//!   block; candidates are confirmed against the (paged-in) tuple
//!   exactly like the in-memory index.
//! * The **presence bitmap** answers liveness questions (graph/catalog
//!   verification, `total_tuples`) with zero block decodes.
//!
//! [`TupleStore`] abstracts over where blocks come from: the eager
//! [`Database`](crate::Database) implements it by materializing blocks
//! from its slot vectors, and `banks-pager`'s `PagedTupleStore` pages
//! them from disk under a memory budget. A lazy `Database` (see
//! [`crate::Database::open_lazy`]) sits on either and hands out
//! `&Tuple`/`&[BackRef]` borrows licensed by the same per-thread
//! keep-alive ring contract the paged graph store uses.

use crate::bundle::{schema_from_text, schema_to_text};
use crate::catalog::{BackRef, Database};
use crate::error::{StorageError, StorageResult};
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use banks_util::fxhash::FxHasher;
use std::cell::RefCell;
use std::hash::Hasher;
use std::sync::Arc;

/// Magic prefix of a v3 DATA section.
pub const DATA_V3_MAGIC: &[u8; 8] = b"BNKSDT03";

/// Slots per tuple block. ~4K tuples keeps a DBLP-shaped block in the
/// tens of kilobytes decoded — big enough to amortize the positioned
/// read, small enough that a tiny `--memory-budget` still holds several.
pub const BLOCK_SPAN: u32 = 4096;

/// Bytes before the header payload: magic + `u64` payload length.
pub const HEADER_PREFIX: usize = 16;

/// Refuse implausible length prefixes instead of attempting the
/// allocation (same guard as the v2 decoder).
const MAX_DECODE_LEN: u64 = 1 << 32;

// ---------------------------------------------------------------------
// Varints + checksum
// ---------------------------------------------------------------------

/// Append `value` as an unsigned LEB128 varint.
#[inline]
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint, rejecting truncation and overflow.
#[inline]
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Content checksum of a block, lane, or header payload.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.write_usize(bytes.len());
    h.finish()
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------
// Keep-alive ring
// ---------------------------------------------------------------------

/// Slots in the per-thread keep-alive ring; a `&Tuple` or `&[BackRef]`
/// handed out of a lazy table stays valid for `RING_SLOTS − 1` further
/// block accesses on its thread.
const RING_SLOTS: usize = 64;

thread_local! {
    static KEEPALIVE: RefCell<(usize, Vec<Option<Arc<TupleBlock>>>)> =
        RefCell::new((0, vec![None; RING_SLOTS]));
}

/// Park `block` in this thread's keep-alive ring.
pub(crate) fn keep_alive(block: &Arc<TupleBlock>) {
    KEEPALIVE.with(|cell| {
        let (next, ring) = &mut *cell.borrow_mut();
        ring[*next] = Some(Arc::clone(block));
        *next = (*next + 1) % RING_SLOTS;
    });
}

/// Extend a reference's lifetime to the caller's choosing.
///
/// # Safety
///
/// The referent must be kept alive by an external mechanism for as long
/// as the caller is permitted (by the documented contract) to use it —
/// here, the keep-alive ring.
pub(crate) unsafe fn extend_ref<'a, T: ?Sized>(r: &T) -> &'a T {
    &*(r as *const T)
}

// ---------------------------------------------------------------------
// Decoded blocks + the TupleStore trait
// ---------------------------------------------------------------------

/// One decoded tuple block: `block_span` consecutive slots of a
/// relation, with each live slot's tuple and reverse-reference list.
#[derive(Debug)]
pub struct TupleBlock {
    /// First slot covered by this block.
    pub first_slot: u32,
    /// Per-slot tuples (`None` = tombstone), `slots_in_block` long.
    pub tuples: Vec<Option<Tuple>>,
    /// Per-slot reverse references, aligned with `tuples`.
    pub back_refs: Vec<Vec<BackRef>>,
    /// Estimated decoded heap footprint, for cache accounting.
    pub bytes: usize,
}

impl TupleBlock {
    /// The tuple at absolute `slot`, if live and in range.
    pub fn tuple(&self, slot: u32) -> Option<&Tuple> {
        self.tuples
            .get(slot.checked_sub(self.first_slot)? as usize)?
            .as_ref()
    }

    /// The reverse references of absolute `slot` (empty if out of range).
    pub fn refs(&self, slot: u32) -> &[BackRef] {
        slot.checked_sub(self.first_slot)
            .and_then(|i| self.back_refs.get(i as usize))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Cache counters of a [`TupleStore`] (zeros for stores that never
/// page).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TupleStoreStats {
    /// Decoded tuple-block bytes currently resident.
    pub resident_bytes: usize,
    /// Resident bytes held by pinned blocks.
    pub pinned_bytes: usize,
    /// Memory budget shared with the graph store (0 = unbounded).
    pub budget_bytes: usize,
    /// Total blocks across all relations.
    pub block_count: usize,
    /// Blocks currently decoded.
    pub resident_blocks: usize,
    /// Blocks in the pinned hot set.
    pub pinned_blocks: usize,
    /// Blocks decoded into residency since open.
    pub page_ins: u64,
    /// Blocks evicted under budget pressure since open.
    pub evictions: u64,
    /// Nanoseconds spent decoding blocks.
    pub decode_nanos: u64,
}

/// Where tuples live: the eager [`Database`] or a paged backend.
///
/// `block` has no error channel (callers are deep inside borrow-handing
/// accessors); paged implementations panic on I/O or checksum failure,
/// exactly like the paged graph store. Directory-level corruption is
/// caught (typed) at open instead.
pub trait TupleStore: std::fmt::Debug + Send + Sync {
    /// Number of relations.
    fn relation_count(&self) -> usize;
    /// Slots per block this store was encoded with.
    fn block_span(&self) -> u32;
    /// Slots ever allocated in relation `rel` (live + tombstoned).
    fn slot_count(&self, rel: u32) -> u32;
    /// Live tuples in relation `rel`.
    fn live_count(&self, rel: u32) -> usize;
    /// Total resolved foreign-key links.
    fn link_count(&self) -> u64;
    /// Is `slot` of relation `rel` live? Answered from the presence
    /// bitmap — never decodes a block.
    fn is_live(&self, rel: u32, slot: u32) -> bool;
    /// The decoded block `block` of relation `rel`
    /// (`block = slot / block_span()`).
    fn block(&self, rel: u32, block: u32) -> Arc<TupleBlock>;
    /// Slots of relation `rel` whose primary-key hash is `hash`, from
    /// the PK lane — candidates only; callers confirm by value.
    fn pk_candidates(&self, rel: u32, hash: u64) -> Vec<u32>;
    /// Encoded bytes + recorded checksum of a block — the COW snapshot
    /// writer's clean-block fast path.
    fn raw_block(&self, rel: u32, block: u32) -> StorageResult<(Vec<u8>, u64)>;
    /// Encoded PK lane bytes + checksum + entry count of a relation.
    fn raw_pk_lane(&self, rel: u32) -> StorageResult<(Vec<u8>, u64, u64)>;
    /// Cache counters (zeros when nothing is paged).
    fn stats(&self) -> TupleStoreStats;
}

// ---------------------------------------------------------------------
// Header layout
// ---------------------------------------------------------------------

/// Directory row of a PK lane.
#[derive(Debug, Clone, Copy)]
pub struct LaneRef {
    /// Byte offset from the section start.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Content checksum.
    pub checksum: u64,
    /// `(hash, slot)` entries in the lane.
    pub entries: u64,
}

/// Directory row of one tuple block.
#[derive(Debug, Clone, Copy)]
pub struct BlockRef {
    /// Byte offset from the section start.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Content checksum.
    pub checksum: u64,
}

/// Parsed per-relation directory.
#[derive(Debug, Clone)]
pub struct RelationLayout {
    /// Slots ever allocated (live + tombstoned).
    pub slot_count: u32,
    /// Live tuples.
    pub live_count: u64,
    /// Liveness bitmap, `ceil(slot_count / 8)` bytes, LSB-first.
    pub presence: Arc<[u8]>,
    /// The PK→slot lane.
    pub pk_lane: LaneRef,
    /// Block directory, `ceil(slot_count / block_span)` rows.
    pub blocks: Vec<BlockRef>,
}

impl RelationLayout {
    /// Is `slot` live per the presence bitmap?
    pub fn is_live(&self, slot: u32) -> bool {
        slot < self.slot_count
            && self.presence[(slot / 8) as usize] & (1 << (slot % 8)) != 0
    }
}

/// The parsed v3 DATA header: everything a paged open needs without
/// touching a single block payload.
#[derive(Debug, Clone)]
pub struct DataLayout {
    /// The catalog, as `schema.banks` text.
    pub schema_text: String,
    /// Total resolved foreign-key links.
    pub link_count: u64,
    /// Slots per block.
    pub block_span: u32,
    /// Per-relation directories, in catalog order.
    pub relations: Vec<RelationLayout>,
}

impl DataLayout {
    /// Bytes following the 16-byte prefix that belong to the header
    /// (payload + trailing checksum), from the prefix itself.
    pub fn header_span(prefix: &[u8]) -> StorageResult<usize> {
        if prefix.len() < HEADER_PREFIX {
            return Err(corrupt("v3 DATA section shorter than its prefix"));
        }
        if &prefix[..8] != DATA_V3_MAGIC {
            return Err(corrupt("not a v3 DATA section (bad magic)"));
        }
        let len = u64::from_le_bytes(prefix[8..16].try_into().expect("8 bytes"));
        if len > MAX_DECODE_LEN {
            return Err(corrupt(format!("v3 DATA header length {len} is implausible")));
        }
        Ok(len as usize + 8)
    }

    /// Parse a full header — magic, length, payload, and trailing
    /// checksum — verifying the checksum.
    pub fn parse(header: &[u8]) -> StorageResult<DataLayout> {
        let span = DataLayout::header_span(header)?;
        let rest = &header[HEADER_PREFIX..];
        if rest.len() < span {
            return Err(corrupt("v3 DATA header is truncated"));
        }
        let payload = &rest[..span - 8];
        let recorded = u64::from_le_bytes(rest[span - 8..span].try_into().expect("8 bytes"));
        if checksum64(payload) != recorded {
            return Err(corrupt("v3 DATA header checksum mismatch"));
        }
        DataLayout::parse_payload(payload)
    }

    fn parse_payload(payload: &[u8]) -> StorageResult<DataLayout> {
        let mut c = HCur { bytes: payload, at: 0 };
        let schema_len = c.u64("schema text length")?;
        if schema_len > MAX_DECODE_LEN {
            return Err(corrupt("schema text length is implausible"));
        }
        let schema_text = std::str::from_utf8(c.take(schema_len as usize, "schema text")?)
            .map_err(|_| corrupt("schema text is not valid UTF-8"))?
            .to_owned();
        let link_count = c.u64("link count")?;
        let block_span = c.u32("block span")?;
        if block_span == 0 {
            return Err(corrupt("v3 DATA block span is zero"));
        }
        let relation_count = c.u32("relation count")? as usize;
        let mut relations = Vec::with_capacity(relation_count.min(c.remaining()));
        for _ in 0..relation_count {
            let slot_count = c.u32("slot count")?;
            let live_count = c.u64("live count")?;
            let presence: Arc<[u8]> = c
                .take(slot_count.div_ceil(8) as usize, "presence bitmap")?
                .into();
            let pk_lane = LaneRef {
                offset: c.u64("pk lane offset")?,
                len: c.u64("pk lane length")?,
                checksum: c.u64("pk lane checksum")?,
                entries: c.u64("pk lane entry count")?,
            };
            let block_count = c.u32("block count")?;
            if u64::from(block_count) != u64::from(slot_count).div_ceil(u64::from(block_span)) {
                return Err(corrupt(format!(
                    "relation declares {block_count} blocks for {slot_count} slots at span {block_span}"
                )));
            }
            let mut blocks = Vec::with_capacity(block_count as usize);
            for _ in 0..block_count {
                blocks.push(BlockRef {
                    offset: c.u64("block offset")?,
                    len: c.u64("block length")?,
                    checksum: c.u64("block checksum")?,
                });
            }
            relations.push(RelationLayout {
                slot_count,
                live_count,
                presence,
                pk_lane,
                blocks,
            });
        }
        if c.at != payload.len() {
            return Err(corrupt("trailing bytes after v3 DATA header"));
        }
        Ok(DataLayout {
            schema_text,
            link_count,
            block_span,
            relations,
        })
    }

    /// Live tuples over all relations, from the directory alone.
    pub fn total_live(&self) -> u64 {
        self.relations.iter().map(|r| r.live_count).sum()
    }
}

/// A minimal fixed-width header cursor.
struct HCur<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> HCur<'a> {
    fn take(&mut self, n: usize, what: &str) -> StorageResult<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(corrupt(format!("{what}: v3 header ends early")));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn u32(&mut self, what: &str) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
}

// ---------------------------------------------------------------------
// Block + lane codecs
// ---------------------------------------------------------------------

// Value tags, matching the v2 stream (the booleans fold into the tag).
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(out, zigzag(*i));
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn take_value(bytes: &[u8], pos: &mut usize) -> StorageResult<Value> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| corrupt("tuple block ends inside a value tag"))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(unzigzag(
            read_varint(bytes, pos).ok_or_else(|| corrupt("bad int varint in tuple block"))?,
        )),
        TAG_FLOAT => {
            let raw = bytes
                .get(*pos..*pos + 8)
                .ok_or_else(|| corrupt("tuple block ends inside a float"))?;
            *pos += 8;
            Value::Float(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
        }
        TAG_TEXT => {
            let len = read_varint(bytes, pos)
                .ok_or_else(|| corrupt("bad text length in tuple block"))?;
            if len > MAX_DECODE_LEN {
                return Err(corrupt("text length in tuple block is implausible"));
            }
            let raw = bytes
                .get(*pos..*pos + len as usize)
                .ok_or_else(|| corrupt("tuple block ends inside a string"))?;
            *pos += len as usize;
            Value::Text(
                std::str::from_utf8(raw)
                    .map_err(|_| corrupt("tuple block string is not valid UTF-8"))?
                    .to_owned(),
            )
        }
        other => return Err(corrupt(format!("unknown value tag {other} in tuple block"))),
    })
}

/// Encode one block: per slot a presence byte, then (for live slots)
/// the tuple's values followed by its back-reference sublane.
///
/// `rows` yields `(tuple, refs)` per slot in `[first, end)` — `None`
/// for tombstones.
pub(crate) fn encode_block<'a>(
    rows: impl Iterator<Item = Option<(&'a Tuple, &'a [BackRef])>>,
) -> Vec<u8> {
    let mut out = Vec::new();
    for row in rows {
        match row {
            None => out.push(0),
            Some((tuple, refs)) => {
                out.push(1);
                for v in tuple.values() {
                    put_value(&mut out, v);
                }
                write_varint(&mut out, refs.len() as u64);
                for r in refs {
                    write_varint(&mut out, u64::from(r.from.relation.0));
                    write_varint(&mut out, u64::from(r.from.slot));
                    write_varint(&mut out, r.fk_index as u64);
                }
            }
        }
    }
    out
}

/// Decode one block covering absolute slots `[first_slot, first_slot +
/// slots_in_block)` of a relation with the given tuple arity.
pub fn decode_block(
    bytes: &[u8],
    first_slot: u32,
    slots_in_block: u32,
    arity: usize,
) -> StorageResult<TupleBlock> {
    let mut pos = 0usize;
    let mut tuples = Vec::with_capacity(slots_in_block as usize);
    let mut back_refs = Vec::with_capacity(slots_in_block as usize);
    let mut bytes_est = 0usize;
    for _ in 0..slots_in_block {
        let presence = *bytes
            .get(pos)
            .ok_or_else(|| corrupt("tuple block ends inside a presence byte"))?;
        pos += 1;
        match presence {
            0 => {
                tuples.push(None);
                back_refs.push(Vec::new());
            }
            1 => {
                let mut values = Vec::with_capacity(arity);
                for _ in 0..arity {
                    values.push(take_value(bytes, &mut pos)?);
                }
                bytes_est += 48
                    + arity * 32
                    + values
                        .iter()
                        .map(|v| match v {
                            Value::Text(s) => s.len(),
                            _ => 0,
                        })
                        .sum::<usize>();
                let count = read_varint(bytes, &mut pos)
                    .ok_or_else(|| corrupt("bad back-reference count in tuple block"))?;
                if count > MAX_DECODE_LEN {
                    return Err(corrupt("back-reference count is implausible"));
                }
                let mut refs = Vec::with_capacity((count as usize).min(bytes.len() - pos));
                for _ in 0..count {
                    let rel = read_varint(bytes, &mut pos)
                        .ok_or_else(|| corrupt("bad back-reference relation"))?;
                    let slot = read_varint(bytes, &mut pos)
                        .ok_or_else(|| corrupt("bad back-reference slot"))?;
                    let fk = read_varint(bytes, &mut pos)
                        .ok_or_else(|| corrupt("bad back-reference fk index"))?;
                    if rel > u64::from(u32::MAX) || slot > u64::from(u32::MAX) {
                        return Err(corrupt("back-reference rid out of range"));
                    }
                    refs.push(BackRef {
                        from: Rid::new(RelationId(rel as u32), slot as u32),
                        fk_index: fk as usize,
                    });
                }
                bytes_est += 24 + refs.len() * std::mem::size_of::<BackRef>();
                tuples.push(Some(Tuple::new(values)));
                back_refs.push(refs);
            }
            other => return Err(corrupt(format!("bad slot presence byte {other}"))),
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after tuple block"));
    }
    Ok(TupleBlock {
        first_slot,
        tuples,
        back_refs,
        bytes: bytes_est + 64,
    })
}

/// Candidate slots for `hash` in an encoded PK lane (sorted 12-byte
/// `(u64 hash, u32 slot)` entries), by binary search.
pub fn lane_candidates(lane: &[u8], hash: u64) -> Vec<u32> {
    let n = lane.len() / 12;
    let entry_hash = |i: usize| u64::from_le_bytes(lane[i * 12..i * 12 + 8].try_into().expect("8"));
    // Lower bound.
    let (mut a, mut b) = (0usize, n);
    while a < b {
        let mid = (a + b) / 2;
        if entry_hash(mid) < hash {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    let lo = a;
    // Upper bound.
    let (mut a, mut b) = (lo, n);
    while a < b {
        let mid = (a + b) / 2;
        if entry_hash(mid) <= hash {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    let hi = a;
    (lo..hi)
        .map(|i| u32::from_le_bytes(lane[i * 12 + 8..i * 12 + 12].try_into().expect("4")))
        .collect()
}

/// Encode a PK lane from `(hash, slot)` entries (sorted here).
pub(crate) fn encode_lane(mut entries: Vec<(u64, u32)>) -> Vec<u8> {
    entries.sort_unstable();
    let mut out = Vec::with_capacity(entries.len() * 12);
    for (hash, slot) in entries {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&slot.to_le_bytes());
    }
    out
}

/// Decode a PK lane back into `(hash, slot)` entries.
pub(crate) fn decode_lane(lane: &[u8]) -> StorageResult<Vec<(u64, u32)>> {
    if lane.len() % 12 != 0 {
        return Err(corrupt("pk lane length is not a multiple of 12"));
    }
    Ok(lane
        .chunks_exact(12)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().expect("8")),
                u32::from_le_bytes(c[8..].try_into().expect("4")),
            )
        })
        .collect())
}

// ---------------------------------------------------------------------
// Whole-section encode / decode
// ---------------------------------------------------------------------

/// One relation's payloads, ready for assembly.
pub(crate) struct RelationPayload {
    pub slot_count: u32,
    pub live_count: u64,
    pub presence: Vec<u8>,
    pub pk_lane: Vec<u8>,
    pub pk_checksum: u64,
    pub pk_entries: u64,
    /// `(bytes, checksum)` per block.
    pub blocks: Vec<(Vec<u8>, u64)>,
}

/// Serialize a database as a v3 DATA section. For a lazy database this
/// is copy-on-write: blocks and lanes of untouched relations are copied
/// raw (bytes and checksums) from the backing store without decoding;
/// only blocks overlapping an ingest overlay are re-encoded.
pub fn encode_database_v3(db: &Database) -> StorageResult<Vec<u8>> {
    let span = db
        .tuple_store()
        .map(|s| s.block_span())
        .unwrap_or(BLOCK_SPAN);
    encode_database_v3_with_span(db, span)
}

/// [`encode_database_v3`] with an explicit block span (tests use tiny
/// spans to force paging). A lazy database must be encoded at its
/// store's span — clean-block reuse depends on identical block ranges.
pub fn encode_database_v3_with_span(db: &Database, span: u32) -> StorageResult<Vec<u8>> {
    if span == 0 {
        return Err(corrupt("block span must be positive"));
    }
    if let Some(store) = db.tuple_store() {
        if store.block_span() != span {
            return Err(corrupt(format!(
                "lazy database must be encoded at its store's span {} (got {span})",
                store.block_span()
            )));
        }
    }
    let schema_text = schema_to_text(db);
    let payloads: Vec<RelationPayload> = db
        .relations()
        .map(|table| db.v3_relation_payload(table.id(), span))
        .collect::<StorageResult<_>>()?;

    // Header size is fully determined by the payload shapes; lay the
    // header out first, then assign payload offsets after it.
    let mut header_len = 8 + schema_text.len() + 8 + 4 + 4;
    for p in &payloads {
        header_len += 4 + 8 + p.presence.len() + 32 + 4 + p.blocks.len() * 24;
    }
    let mut offset = (HEADER_PREFIX + header_len + 8) as u64;

    let mut header = Vec::with_capacity(header_len);
    write_fixed_u64(&mut header, schema_text.len() as u64);
    header.extend_from_slice(schema_text.as_bytes());
    write_fixed_u64(&mut header, db.link_count() as u64);
    header.extend_from_slice(&span.to_le_bytes());
    header.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in &payloads {
        header.extend_from_slice(&p.slot_count.to_le_bytes());
        write_fixed_u64(&mut header, p.live_count);
        header.extend_from_slice(&p.presence);
        write_fixed_u64(&mut header, offset);
        write_fixed_u64(&mut header, p.pk_lane.len() as u64);
        write_fixed_u64(&mut header, p.pk_checksum);
        write_fixed_u64(&mut header, p.pk_entries);
        offset += p.pk_lane.len() as u64;
        header.extend_from_slice(&(p.blocks.len() as u32).to_le_bytes());
        for (bytes, checksum) in &p.blocks {
            write_fixed_u64(&mut header, offset);
            write_fixed_u64(&mut header, bytes.len() as u64);
            write_fixed_u64(&mut header, *checksum);
            offset += bytes.len() as u64;
        }
    }
    debug_assert_eq!(header.len(), header_len);

    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(DATA_V3_MAGIC);
    out.extend_from_slice(&(header_len as u64).to_le_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(&checksum64(&header).to_le_bytes());
    for p in &payloads {
        out.extend_from_slice(&p.pk_lane);
        for (bytes, _) in &p.blocks {
            out.extend_from_slice(bytes);
        }
    }
    debug_assert_eq!(out.len() as u64, offset);
    Ok(out)
}

fn write_fixed_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Fully decode a v3 DATA section into an eager [`Database`] — the
/// non-paged bundle load path. Every block and lane checksum is
/// verified; any inconsistency is [`StorageError::Corrupt`].
pub fn decode_database_v3(bytes: &[u8]) -> StorageResult<Database> {
    let layout = DataLayout::parse(bytes)?;
    let mut db = schema_from_text(&layout.schema_text)?;
    if db.relation_count() != layout.relations.len() {
        return Err(corrupt(format!(
            "schema declares {} relations but the v3 directory carries {}",
            db.relation_count(),
            layout.relations.len()
        )));
    }
    let section = |offset: u64, len: u64, what: &str| -> StorageResult<&[u8]> {
        bytes
            .get(offset as usize..(offset + len) as usize)
            .ok_or_else(|| corrupt(format!("{what} extends past the v3 DATA section")))
    };
    let meta: Vec<(RelationId, usize)> = db
        .relations()
        .map(|t| (t.id(), t.schema().arity()))
        .collect();
    let mut links: Vec<(Rid, Vec<BackRef>)> = Vec::new();
    for ((id, arity), rel) in meta.into_iter().zip(&layout.relations) {
        let lane = section(rel.pk_lane.offset, rel.pk_lane.len, "pk lane")?;
        if checksum64(lane) != rel.pk_lane.checksum {
            return Err(corrupt(format!("pk lane checksum mismatch in relation {id}")));
        }
        let mut slots: Vec<Option<Tuple>> = Vec::with_capacity(rel.slot_count as usize);
        for (b, blk) in rel.blocks.iter().enumerate() {
            let raw = section(blk.offset, blk.len, "tuple block")?;
            if checksum64(raw) != blk.checksum {
                return Err(corrupt(format!(
                    "tuple block {b} checksum mismatch in relation {id}"
                )));
            }
            let first = b as u32 * layout.block_span;
            let in_block = rel.slot_count.min(first + layout.block_span) - first;
            let decoded = decode_block(raw, first, in_block, arity)?;
            for (i, (tuple, refs)) in decoded
                .tuples
                .into_iter()
                .zip(decoded.back_refs)
                .enumerate()
            {
                if tuple.is_some() != rel.is_live(first + i as u32) {
                    return Err(corrupt(format!(
                        "presence bitmap disagrees with block {b} of relation {id}"
                    )));
                }
                if !refs.is_empty() {
                    links.push((Rid::new(id, first + i as u32), refs));
                }
                slots.push(tuple);
            }
        }
        db.restore_relation_slots(id, slots)?;
        if db.table(id).len() as u64 != rel.live_count {
            return Err(corrupt(format!(
                "relation {id} restored {} live tuples, directory says {}",
                db.table(id).len(),
                rel.live_count
            )));
        }
    }
    db.install_links(links)?;
    if db.link_count() as u64 != layout.link_count {
        return Err(corrupt(format!(
            "v3 DATA restored {} links, directory says {}",
            db.link_count(),
            layout.link_count
        )));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationSchema};

    fn sample_db() -> Database {
        let mut db = Database::new("blocks-test");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .nullable_column("Name", ColumnType::Text)
                .nullable_column("H", ColumnType::Int)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Year", ColumnType::Int)
                .nullable_column("Score", ColumnType::Float)
                .column("Pub", ColumnType::Bool)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("A", ColumnType::Text)
                .column("P", ColumnType::Text)
                .primary_key(&["A", "P"])
                .foreign_key(&["A"], "Author")
                .foreign_key(&["P"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..40 {
            db.insert(
                "Author",
                vec![
                    Value::text(format!("a{i}")),
                    Value::text(format!("Author Number {i}")),
                    if i % 3 == 0 { Value::Int(i) } else { Value::Null },
                ],
            )
            .unwrap();
        }
        for i in 0..10 {
            db.insert(
                "Paper",
                vec![
                    Value::text(format!("p{i}")),
                    Value::Int(1990 + i),
                    if i % 2 == 0 { Value::Float(i as f64 / 2.0) } else { Value::Null },
                    Value::Bool(i % 2 == 1),
                ],
            )
            .unwrap();
        }
        for i in 0..40 {
            db.insert(
                "Writes",
                vec![Value::text(format!("a{i}")), Value::text(format!("p{}", i % 10))],
            )
            .unwrap();
        }
        // Punch holes so tombstones round-trip.
        for i in [3i64, 17] {
            let w = db
                .relation("Writes")
                .unwrap()
                .lookup_pk(&[Value::text(format!("a{i}")), Value::text(format!("p{}", i % 10))])
                .unwrap();
            db.delete(w).unwrap();
            let a = db
                .relation("Author")
                .unwrap()
                .lookup_pk(&[Value::text(format!("a{i}"))])
                .unwrap();
            db.delete(a).unwrap();
        }
        db
    }

    fn assert_same(db: &Database, other: &Database) {
        assert_eq!(db.name(), other.name());
        assert_eq!(db.total_tuples(), other.total_tuples());
        assert_eq!(db.link_count(), other.link_count());
        for (a, b) in db.relations().zip(other.relations()) {
            assert_eq!(a.schema(), b.schema());
            assert_eq!(a.slot_count(), b.slot_count());
            let av: Vec<_> = a.scan().map(|(r, t)| (r, t.clone())).collect();
            let bv: Vec<_> = b.scan().map(|(r, t)| (r, t.clone())).collect();
            assert_eq!(av, bv);
            for (rid, _) in a.scan() {
                assert_eq!(db.referencing(rid), other.referencing(rid), "{rid}");
            }
        }
    }

    #[test]
    fn v3_roundtrip_default_span() {
        let db = sample_db();
        let bytes = encode_database_v3(&db).unwrap();
        let restored = decode_database_v3(&bytes).unwrap();
        assert_same(&db, &restored);
        // Deterministic.
        assert_eq!(bytes, encode_database_v3(&restored).unwrap());
    }

    #[test]
    fn v3_roundtrip_tiny_span_multiblock() {
        let db = sample_db();
        let bytes = encode_database_v3_with_span(&db, 7).unwrap();
        let layout = DataLayout::parse(&bytes).unwrap();
        assert!(layout.relations[0].blocks.len() > 3, "multiple blocks");
        let restored = decode_database_v3(&bytes).unwrap();
        assert_same(&db, &restored);
    }

    #[test]
    fn header_parses_without_touching_blocks() {
        let db = sample_db();
        let bytes = encode_database_v3_with_span(&db, 8).unwrap();
        let span = DataLayout::header_span(&bytes[..HEADER_PREFIX]).unwrap();
        let layout = DataLayout::parse(&bytes[..HEADER_PREFIX + span]).unwrap();
        assert_eq!(layout.relations.len(), 3);
        assert_eq!(layout.total_live(), db.total_tuples() as u64);
        assert_eq!(layout.link_count, db.link_count() as u64);
        // Presence bitmap answers liveness from the header alone.
        let writes = &layout.relations[2];
        assert_eq!(
            (0..writes.slot_count).filter(|&s| writes.is_live(s)).count() as u64,
            writes.live_count
        );
    }

    #[test]
    fn corruption_detected_in_header_and_blocks() {
        let db = sample_db();
        let mut bytes = encode_database_v3_with_span(&db, 8).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode_database_v3(&bad).is_err());
        // Flipped header byte → checksum mismatch.
        let mut torn = bytes.clone();
        torn[HEADER_PREFIX + 4] ^= 0x01;
        assert!(matches!(
            decode_database_v3(&torn),
            Err(StorageError::Corrupt(_))
        ));
        // Flipped payload byte → block or lane checksum mismatch.
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        assert!(matches!(
            decode_database_v3(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn lane_candidates_binary_search() {
        let entries = vec![(9u64, 4u32), (2, 7), (9, 1), (2, 3), (5, 0)];
        let lane = encode_lane(entries);
        assert_eq!(lane_candidates(&lane, 2), vec![3, 7]);
        assert_eq!(lane_candidates(&lane, 5), vec![0]);
        assert_eq!(lane_candidates(&lane, 9), vec![1, 4]);
        assert!(lane_candidates(&lane, 1).is_empty());
        assert!(lane_candidates(&lane, 100).is_empty());
        assert_eq!(decode_lane(&lane).unwrap().len(), 5);
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 1998, -123456789, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            write_varint(&mut out, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(read_varint(&out, &mut pos).unwrap()), v);
        }
    }
}
