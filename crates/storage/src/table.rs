//! A single relation's stored tuples plus its primary-key index.

use crate::blocks::{extend_ref, keep_alive, TupleStore};
use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use banks_util::fxhash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Slots sharing one primary-key hash. 64-bit hashes over at most a few
/// million keys make `Many` astronomically rare, so the common entry
/// stays inline with no per-entry heap allocation.
#[derive(Debug, Clone)]
enum PkSlots {
    /// The typical entry: exactly one slot has this key hash.
    One(u32),
    /// Hash collision between distinct keys (or transiently during a
    /// collision-era delete): all candidate slots.
    Many(Vec<u32>),
}

impl PkSlots {
    fn candidates(&self) -> &[u32] {
        match self {
            PkSlots::One(slot) => std::slice::from_ref(slot),
            PkSlots::Many(slots) => slots,
        }
    }
}

fn pk_map_link(map: &mut FxHashMap<u64, PkSlots>, hash: u64, slot: u32) {
    match map.entry(hash) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(PkSlots::One(slot));
        }
        std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
            PkSlots::One(existing) => {
                let existing = *existing;
                e.insert(PkSlots::Many(vec![existing, slot]));
            }
            PkSlots::Many(slots) => slots.push(slot),
        },
    }
}

fn pk_map_unlink(map: &mut FxHashMap<u64, PkSlots>, hash: u64, slot: u32) {
    match map.get_mut(&hash) {
        Some(PkSlots::One(s)) if *s == slot => {
            map.remove(&hash);
        }
        Some(PkSlots::Many(slots)) => {
            slots.retain(|&s| s != slot);
            if let [last] = slots[..] {
                map.insert(hash, PkSlots::One(last));
            }
        }
        _ => {}
    }
}

/// Where a table's tuples live.
///
/// `Eager` is the classic fully-resident slot vector. `Lazy` fronts a
/// [`TupleStore`] (typically `banks-pager`'s block-paged store): base
/// slots page in on demand, and all mutation goes to an overlay keyed by
/// slot, so an ingest epoch touches only the blocks it changes. Reads
/// merge overlay-over-base; borrows handed out of the base are licensed
/// by the per-thread keep-alive ring (valid for the next 63 block
/// accesses on the thread), exactly like the paged graph store's
/// adjacency slices.
#[derive(Debug, Clone)]
enum Repr {
    Eager {
        slots: Vec<Option<Tuple>>,
        live: usize,
        pk_index: FxHashMap<u64, PkSlots>,
    },
    Lazy {
        store: Arc<dyn TupleStore>,
        rel: u32,
        /// Slots present in the backing store; slots at or above this
        /// are overlay appends.
        base_slots: u32,
        /// Current slot count (base + appends).
        slot_count: u32,
        live: usize,
        /// Slot → current tuple (`None` = tombstoned). Appended slots
        /// are always here; base slots appear once touched.
        overlay: FxHashMap<u32, Option<Tuple>>,
        /// PK index over overlay-appended rows only.
        pk_overlay: FxHashMap<u64, PkSlots>,
        /// Base PK-lane entries masked out by deletes.
        pk_deleted: FxHashSet<(u64, u32)>,
    },
}

/// Borrowed view of a lazy table's internals, for the copy-on-write
/// v3 snapshot writer (see [`crate::blocks::encode_database_v3`]).
pub(crate) struct LazyParts<'a> {
    pub store: &'a Arc<dyn TupleStore>,
    pub rel: u32,
    pub base_slots: u32,
    pub slot_count: u32,
    /// Slots with overlay entries (touched base slots + all appends).
    pub overlay_slots: Vec<u32>,
    /// PK entries added since open (appended rows).
    pub pk_added: Vec<(u64, u32)>,
    /// Base PK-lane entries deleted since open.
    pub pk_deleted: &'a FxHashSet<(u64, u32)>,
}

impl LazyParts<'_> {
    /// Has the PK lane changed since open?
    pub fn pk_dirty(&self) -> bool {
        !self.pk_added.is_empty() || !self.pk_deleted.is_empty()
    }
}

/// Storage for one relation: a slot vector of tuples (deleted slots become
/// `None`, so rids stay stable) and a hash index on the primary key.
///
/// The index maps the Fx hash of a key to its slot(s) — the key values
/// themselves are **not** duplicated out of the tuples. Lookups hash the
/// probe key and confirm candidates against the stored tuple, so inserts
/// and binary-snapshot restores never clone key values, and the index
/// costs 12 bytes per tuple instead of a cloned `Vec<Value>`.
///
/// A table opened from a paged bundle is *lazy*: the slot vector stays
/// on disk as fixed-span blocks and pages in on first touch, the PK
/// index is a sorted on-disk lane probed by hash, and mutations land in
/// an overlay (see [`Repr`]). Every public accessor behaves identically
/// in both representations.
#[derive(Debug, Clone)]
pub struct Table {
    id: RelationId,
    schema: RelationSchema,
    repr: Repr,
}

impl Table {
    /// Create an empty table for `schema` with catalog id `id`.
    pub fn new(id: RelationId, schema: RelationSchema) -> Table {
        Table {
            id,
            schema,
            repr: Repr::Eager {
                slots: Vec::new(),
                live: 0,
                pk_index: FxHashMap::default(),
            },
        }
    }

    /// Switch a fresh, empty table to the lazy representation over
    /// `store`, which carries this relation at index `rel`.
    pub(crate) fn make_lazy(&mut self, store: Arc<dyn TupleStore>, rel: u32) -> StorageResult<()> {
        match &self.repr {
            Repr::Eager { slots, .. } if slots.is_empty() => {}
            _ => {
                return Err(StorageError::Corrupt(format!(
                    "relation `{}` must be empty to attach a tuple store",
                    self.schema.name
                )))
            }
        }
        let base_slots = store.slot_count(rel);
        let live = store.live_count(rel);
        self.repr = Repr::Lazy {
            store,
            rel,
            base_slots,
            slot_count: base_slots,
            live,
            overlay: FxHashMap::default(),
            pk_overlay: FxHashMap::default(),
            pk_deleted: FxHashSet::default(),
        };
        Ok(())
    }

    /// The lazy internals, if this table fronts a tuple store.
    pub(crate) fn lazy_parts(&self) -> Option<LazyParts<'_>> {
        match &self.repr {
            Repr::Eager { .. } => None,
            Repr::Lazy {
                store,
                rel,
                base_slots,
                slot_count,
                overlay,
                pk_overlay,
                pk_deleted,
                ..
            } => Some(LazyParts {
                store,
                rel: *rel,
                base_slots: *base_slots,
                slot_count: *slot_count,
                overlay_slots: overlay.keys().copied().collect(),
                pk_added: pk_overlay
                    .iter()
                    .flat_map(|(&hash, e)| e.candidates().iter().map(move |&s| (hash, s)))
                    .collect(),
                pk_deleted,
            }),
        }
    }

    /// Fx hash of a primary-key value sequence — also the hash stored in
    /// the v3 PK lane, so lane probes and index probes agree.
    pub(crate) fn pk_hash<'v>(key: impl Iterator<Item = &'v Value>) -> u64 {
        let mut h = FxHasher::default();
        for v in key {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Hash of the primary key embedded in a full tuple's values.
    pub(crate) fn pk_hash_of_row(&self, values: &[Value]) -> u64 {
        Self::pk_hash(self.schema.primary_key.iter().map(|&c| &values[c]))
    }

    /// Does the live tuple at `slot` carry exactly this primary key?
    fn slot_key_matches(&self, slot: u32, key: &[Value]) -> bool {
        let Some(tuple) = self.get(slot) else {
            return false;
        };
        self.schema
            .primary_key
            .iter()
            .zip(key)
            .all(|(&c, k)| &tuple.values()[c] == k)
    }

    /// All slots whose primary-key hash is `hash` (unconfirmed
    /// candidates, overlay-aware).
    pub(crate) fn pk_candidates_by_hash(&self, hash: u64) -> Vec<u32> {
        match &self.repr {
            Repr::Eager { pk_index, .. } => pk_index
                .get(&hash)
                .map(|e| e.candidates().to_vec())
                .unwrap_or_default(),
            Repr::Lazy {
                store,
                rel,
                pk_overlay,
                pk_deleted,
                ..
            } => {
                let mut c = store.pk_candidates(*rel, hash);
                if !pk_deleted.is_empty() {
                    c.retain(|&s| !pk_deleted.contains(&(hash, s)));
                }
                if let Some(e) = pk_overlay.get(&hash) {
                    c.extend_from_slice(e.candidates());
                }
                c
            }
        }
    }

    /// Find the slot holding `key` (hash → candidate confirmation).
    fn pk_slot(&self, key: &[Value]) -> Option<u32> {
        if key.len() != self.schema.primary_key.len() || key.is_empty() {
            return None;
        }
        let hash = Self::pk_hash(key.iter());
        self.pk_candidates_by_hash(hash)
            .into_iter()
            .find(|&slot| self.slot_key_matches(slot, key))
    }

    /// The catalog id of this relation.
    pub fn id(&self) -> RelationId {
        self.id
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of live (non-deleted) tuples.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Eager { live, .. } | Repr::Lazy { live, .. } => *live,
        }
    }

    /// Whether the table holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> usize {
        match &self.repr {
            Repr::Eager { slots, .. } => slots.len(),
            Repr::Lazy { slot_count, .. } => *slot_count as usize,
        }
    }

    /// Type/arity/nullability-check `values` against the schema.
    fn check_values(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        for (col, value) in self.schema.columns.iter().zip(values) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        relation: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !col.ty.accepts(value) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    actual: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple, enforcing schema and primary-key constraints.
    ///
    /// Foreign keys are enforced one level up, by
    /// [`crate::Database::insert`], which can see the referenced tables.
    pub fn insert(&mut self, values: Vec<Value>) -> StorageResult<Rid> {
        self.check_values(&values)?;
        let hash = if self.schema.has_primary_key() {
            let hash = self.pk_hash_of_row(&values);
            let duplicate = self.pk_candidates_by_hash(hash).into_iter().any(|slot| {
                self.get(slot).is_some_and(|tuple| {
                    self.schema
                        .primary_key
                        .iter()
                        .all(|&c| tuple.values()[c] == values[c])
                })
            });
            if duplicate {
                let key: Vec<&Value> = self.schema.key_of(&values);
                return Err(StorageError::DuplicateKey {
                    relation: self.schema.name.clone(),
                    key: format!("{key:?}"),
                });
            }
            Some(hash)
        } else {
            None
        };
        match &mut self.repr {
            Repr::Eager {
                slots,
                live,
                pk_index,
            } => {
                let slot = u32::try_from(slots.len()).expect("more than u32::MAX tuples");
                slots.push(Some(Tuple::new(values)));
                *live += 1;
                if let Some(hash) = hash {
                    pk_map_link(pk_index, hash, slot);
                }
                Ok(Rid::new(self.id, slot))
            }
            Repr::Lazy {
                slot_count,
                live,
                overlay,
                pk_overlay,
                ..
            } => {
                let slot = *slot_count;
                *slot_count = slot
                    .checked_add(1)
                    .expect("more than u32::MAX tuples");
                overlay.insert(slot, Some(Tuple::new(values)));
                *live += 1;
                if let Some(hash) = hash {
                    pk_map_link(pk_overlay, hash, slot);
                }
                Ok(Rid::new(self.id, slot))
            }
        }
    }

    /// Fetch the tuple at `slot`, if live.
    ///
    /// On a lazy table the borrow is licensed by the keep-alive ring:
    /// it stays valid for the next 63 block accesses on this thread.
    /// Every in-tree caller consumes the tuple before the next access.
    pub fn get(&self, slot: u32) -> Option<&Tuple> {
        match &self.repr {
            Repr::Eager { slots, .. } => slots.get(slot as usize).and_then(|t| t.as_ref()),
            Repr::Lazy {
                store,
                rel,
                base_slots,
                overlay,
                ..
            } => {
                if let Some(entry) = overlay.get(&slot) {
                    return entry.as_ref();
                }
                if slot >= *base_slots || !store.is_live(*rel, slot) {
                    return None;
                }
                let block = store.block(*rel, slot / store.block_span());
                let tuple = block.tuple(slot)?;
                // SAFETY: the ring keeps `block` alive per the documented
                // borrow contract.
                let tuple = unsafe { extend_ref(tuple) };
                keep_alive(&block);
                Some(tuple)
            }
        }
    }

    /// Is the slot live? Answered without decoding any block.
    pub fn is_live(&self, slot: u32) -> bool {
        match &self.repr {
            Repr::Eager { slots, .. } => {
                slots.get(slot as usize).is_some_and(|t| t.is_some())
            }
            Repr::Lazy {
                store,
                rel,
                base_slots,
                overlay,
                ..
            } => match overlay.get(&slot) {
                Some(entry) => entry.is_some(),
                None => slot < *base_slots && store.is_live(*rel, slot),
            },
        }
    }

    /// Reverse references of the tuple at `slot` recorded in the backing
    /// store, if this table is lazy (ring-licensed borrow; overlay
    /// handling lives in [`crate::Database::referencing`]).
    pub(crate) fn base_refs(&self, slot: u32) -> Option<&[crate::catalog::BackRef]> {
        match &self.repr {
            Repr::Eager { .. } => None,
            Repr::Lazy {
                store,
                rel,
                base_slots,
                ..
            } => {
                if slot >= *base_slots {
                    return Some(&[]);
                }
                let block = store.block(*rel, slot / store.block_span());
                // SAFETY: ring-licensed, as in `get`.
                let refs = unsafe { extend_ref(block.refs(slot)) };
                keep_alive(&block);
                Some(refs)
            }
        }
    }

    /// Look up a tuple by its full primary-key value.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<Rid> {
        self.pk_slot(key).map(|slot| Rid::new(self.id, slot))
    }

    /// Delete the tuple at `slot`. Returns the removed tuple.
    ///
    /// The slot is tombstoned, keeping every other rid stable.
    pub fn delete(&mut self, slot: u32) -> StorageResult<Tuple> {
        if (slot as usize) >= self.slot_count() {
            return Err(StorageError::InvalidRid(format!("slot {slot} out of range")));
        }
        let tuple = self
            .get(slot)
            .cloned()
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} already deleted")))?;
        let hash = self
            .schema
            .has_primary_key()
            .then(|| self.pk_hash_of_row(tuple.values()));
        match &mut self.repr {
            Repr::Eager {
                slots,
                live,
                pk_index,
            } => {
                slots[slot as usize] = None;
                *live -= 1;
                if let Some(hash) = hash {
                    pk_map_unlink(pk_index, hash, slot);
                }
            }
            Repr::Lazy {
                base_slots,
                live,
                overlay,
                pk_overlay,
                pk_deleted,
                ..
            } => {
                overlay.insert(slot, None);
                *live -= 1;
                if let Some(hash) = hash {
                    if slot >= *base_slots {
                        pk_map_unlink(pk_overlay, hash, slot);
                    } else {
                        // Base rows never enter the overlay PK index
                        // (PK columns are immutable), so masking the
                        // lane entry suffices.
                        pk_deleted.insert((hash, slot));
                    }
                }
            }
        }
        Ok(tuple)
    }

    /// Update one column of the tuple at `slot`.
    ///
    /// Primary-key columns cannot be updated (delete + insert instead);
    /// this keeps the pk index and any foreign keys pointing here valid.
    pub fn update(&mut self, slot: u32, column: usize, value: Value) -> StorageResult<()> {
        if self.schema.primary_key.contains(&column) {
            return Err(StorageError::InvalidSchema(format!(
                "cannot update primary-key column {column} of `{}`",
                self.schema.name
            )));
        }
        let col = self
            .schema
            .columns
            .get(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.schema.name.clone(),
                column: format!("#{column}"),
            })?
            .clone();
        if value.is_null() && !col.nullable {
            return Err(StorageError::NullViolation {
                relation: self.schema.name.clone(),
                column: col.name,
            });
        }
        if !value.is_null() && !col.ty.accepts(&value) {
            return Err(StorageError::TypeMismatch {
                relation: self.schema.name.clone(),
                column: col.name,
                expected: col.ty.name().to_string(),
                actual: value.to_string(),
            });
        }
        match &mut self.repr {
            Repr::Eager { slots, .. } => {
                let tuple = slots
                    .get_mut(slot as usize)
                    .and_then(|t| t.as_mut())
                    .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} not live")))?;
                *tuple.get_mut(column).expect("arity checked at insert") = value;
                Ok(())
            }
            Repr::Lazy { .. } => {
                let mut tuple = self
                    .get(slot)
                    .cloned()
                    .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} not live")))?;
                *tuple.get_mut(column).expect("arity checked at insert") = value;
                let Repr::Lazy { overlay, .. } = &mut self.repr else {
                    unreachable!("matched above")
                };
                overlay.insert(slot, Some(tuple));
                Ok(())
            }
        }
    }

    /// Restore a deserialized slot vector wholesale, **preserving slot
    /// numbers** (deleted slots stay `None`), and rebuild the live count
    /// and primary-key index. This is the binary-snapshot load path: rids
    /// recorded in a graph snapshot or text-index dump stay valid only if
    /// every tuple lands in its original slot, so the normal
    /// [`Table::insert`] (which compacts) cannot be used.
    ///
    /// Tuples are arity-checked (a short tuple would make later column
    /// access panic) and the primary-key index must come out
    /// collision-free; a violation means the serialized bytes were not
    /// produced from a consistent table and is reported as
    /// [`StorageError::Corrupt`]. Deep per-value type checks are skipped
    /// on this path (debug builds still run them): the stream is
    /// checksummed and written by [`crate::binary::write_database`] from
    /// an already-validated table, and restore latency is the whole
    /// point of binary snapshots.
    pub(crate) fn restore_slots(&mut self, slots: Vec<Option<Tuple>>) -> StorageResult<()> {
        debug_assert!(
            matches!(&self.repr, Repr::Eager { slots, .. } if slots.is_empty()),
            "restore into a fresh table only"
        );
        let mut live = 0usize;
        let mut pk_index = FxHashMap::default();
        pk_index.reserve(if self.schema.has_primary_key() {
            slots.len()
        } else {
            0
        });
        for (slot, tuple) in slots.iter().enumerate() {
            let Some(tuple) = tuple else { continue };
            if tuple.arity() != self.schema.arity() {
                return Err(StorageError::Corrupt(format!(
                    "restored tuple in `{}` has arity {}, schema says {}",
                    self.schema.name,
                    tuple.arity(),
                    self.schema.arity()
                )));
            }
            #[cfg(debug_assertions)]
            self.check_values(tuple.values())
                .map_err(|e| StorageError::Corrupt(format!("restored tuple invalid: {e}")))?;
            live += 1;
            if self.schema.has_primary_key() {
                let hash =
                    Self::pk_hash(self.schema.primary_key.iter().map(|&c| &tuple.values()[c]));
                let clash = match pk_index.entry(hash) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(PkSlots::One(slot as u32));
                        false
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        // Same hash: a true duplicate key is corruption;
                        // a mere collision between distinct keys widens
                        // the entry. Confirm against the earlier tuples.
                        let duplicate = e.get().candidates().iter().any(|&earlier| {
                            let other = slots[earlier as usize]
                                .as_ref()
                                .expect("indexed slots are live");
                            self.schema
                                .primary_key
                                .iter()
                                .all(|&c| other.values()[c] == tuple.values()[c])
                        });
                        if !duplicate {
                            match e.get_mut() {
                                PkSlots::One(existing) => {
                                    let existing = *existing;
                                    e.insert(PkSlots::Many(vec![existing, slot as u32]));
                                }
                                PkSlots::Many(list) => list.push(slot as u32),
                            }
                        }
                        duplicate
                    }
                };
                if clash {
                    return Err(StorageError::Corrupt(format!(
                        "duplicate primary key in restored relation `{}`",
                        self.schema.name
                    )));
                }
            }
        }
        self.repr = Repr::Eager {
            slots,
            live,
            pk_index,
        };
        Ok(())
    }

    /// Iterate over every slot (live or tombstoned), in slot order — the
    /// binary-snapshot save path, which must preserve slot layout.
    ///
    /// On a lazy table this pages in every block; prefer
    /// [`Table::live_slots`] when only liveness is needed.
    pub fn slots(&self) -> impl Iterator<Item = Option<&Tuple>> + '_ {
        (0..self.slot_count() as u32).map(move |slot| self.get(slot))
    }

    /// Iterate over the slot numbers of live tuples, in slot order —
    /// answered from presence information alone, with no block decodes
    /// on a lazy table.
    pub fn live_slots(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.slot_count() as u32).filter(move |&slot| self.is_live(slot))
    }

    /// Iterate over live tuples as `(Rid, &Tuple)`.
    pub fn scan(&self) -> impl Iterator<Item = (Rid, &Tuple)> + '_ {
        let id = self.id;
        (0..self.slot_count() as u32)
            .filter_map(move |slot| self.get(slot).map(|t| (Rid::new(id, slot), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn author_table() -> Table {
        let schema = RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .nullable_column("HIndex", ColumnType::Int)
            .primary_key(&["AuthorId"])
            .build()
            .unwrap();
        Table::new(RelationId(0), schema)
    }

    fn row(id: &str, name: &str) -> Vec<Value> {
        vec![Value::text(id), Value::text(name), Value::Null]
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = author_table();
        let r1 = t.insert(row("SoumenC", "Soumen Chakrabarti")).unwrap();
        let r2 = t.insert(row("SunitaS", "Sunita Sarawagi")).unwrap();
        assert_eq!(t.len(), 2);
        let scanned: Vec<Rid> = t.scan().map(|(rid, _)| rid).collect();
        assert_eq!(scanned, vec![r1, r2]);
    }

    #[test]
    fn pk_lookup() {
        let mut t = author_table();
        let rid = t.insert(row("ByronD", "Byron Dom")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::text("ByronD")]), Some(rid));
        assert_eq!(t.lookup_pk(&[Value::text("nobody")]), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = author_table();
        t.insert(row("A", "First")).unwrap();
        let err = t.insert(row("A", "Second")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut t = author_table();
        assert!(matches!(
            t.insert(vec![Value::text("A")]).unwrap_err(),
            StorageError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::TypeMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Null, Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::NullViolation { .. }
        ));
    }

    #[test]
    fn delete_keeps_rids_stable_and_frees_key() {
        let mut t = author_table();
        let r1 = t.insert(row("A", "First")).unwrap();
        let r2 = t.insert(row("B", "Second")).unwrap();
        t.delete(r1.slot).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(r1.slot).is_none());
        assert!(t.get(r2.slot).is_some());
        // Key is free again and new insert gets a fresh slot.
        let r3 = t.insert(row("A", "Third")).unwrap();
        assert_ne!(r3.slot, r1.slot);
        // Double delete errors.
        assert!(t.delete(r1.slot).is_err());
    }

    #[test]
    fn update_non_key_column() {
        let mut t = author_table();
        let r = t.insert(row("A", "First")).unwrap();
        t.update(r.slot, 2, Value::Int(42)).unwrap();
        assert_eq!(t.get(r.slot).unwrap().get(2), Some(&Value::Int(42)));
        // pk column update rejected
        assert!(t.update(r.slot, 0, Value::text("B")).is_err());
        // type still enforced
        assert!(t.update(r.slot, 2, Value::text("nope")).is_err());
    }

    #[test]
    fn table_without_pk_allows_duplicates() {
        let schema = RelationSchema::builder("Writes")
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .build()
            .unwrap();
        let mut t = Table::new(RelationId(1), schema);
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.lookup_pk(&[]).is_none());
    }

    #[test]
    fn live_slots_skips_tombstones() {
        let mut t = author_table();
        for (id, name) in [("A", "a"), ("B", "b"), ("C", "c")] {
            t.insert(row(id, name)).unwrap();
        }
        t.delete(1).unwrap();
        assert_eq!(t.live_slots().collect::<Vec<_>>(), vec![0, 2]);
        assert!(t.is_live(0) && !t.is_live(1) && t.is_live(2));
        assert!(!t.is_live(99));
    }
}
