//! A single relation's stored tuples plus its primary-key index.

use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use std::collections::HashMap;

/// Storage for one relation: a slot vector of tuples (deleted slots become
/// `None`, so rids stay stable) and a hash index on the primary key.
#[derive(Debug, Clone)]
pub struct Table {
    id: RelationId,
    schema: RelationSchema,
    slots: Vec<Option<Tuple>>,
    live: usize,
    pk_index: HashMap<Vec<Value>, u32>,
}

impl Table {
    /// Create an empty table for `schema` with catalog id `id`.
    pub fn new(id: RelationId, schema: RelationSchema) -> Table {
        Table {
            id,
            schema,
            slots: Vec::new(),
            live: 0,
            pk_index: HashMap::new(),
        }
    }

    /// The catalog id of this relation.
    pub fn id(&self) -> RelationId {
        self.id
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of live (non-deleted) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Type/arity/nullability-check `values` against the schema.
    fn check_values(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        for (col, value) in self.schema.columns.iter().zip(values) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        relation: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !col.ty.accepts(value) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    actual: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple, enforcing schema and primary-key constraints.
    ///
    /// Foreign keys are enforced one level up, by
    /// [`crate::Database::insert`], which can see the referenced tables.
    pub fn insert(&mut self, values: Vec<Value>) -> StorageResult<Rid> {
        self.check_values(&values)?;
        let key: Vec<Value> = if self.schema.has_primary_key() {
            self.schema.key_of(&values).into_iter().cloned().collect()
        } else {
            Vec::new()
        };
        if self.schema.has_primary_key() && self.pk_index.contains_key(&key) {
            return Err(StorageError::DuplicateKey {
                relation: self.schema.name.clone(),
                key: format!("{key:?}"),
            });
        }
        let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX tuples");
        self.slots.push(Some(Tuple::new(values)));
        self.live += 1;
        if self.schema.has_primary_key() {
            self.pk_index.insert(key, slot);
        }
        Ok(Rid::new(self.id, slot))
    }

    /// Fetch the tuple at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&Tuple> {
        self.slots.get(slot as usize).and_then(|t| t.as_ref())
    }

    /// Look up a tuple by its full primary-key value.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<Rid> {
        self.pk_index.get(key).map(|&slot| Rid::new(self.id, slot))
    }

    /// Delete the tuple at `slot`. Returns the removed tuple.
    ///
    /// The slot is tombstoned, keeping every other rid stable.
    pub fn delete(&mut self, slot: u32) -> StorageResult<Tuple> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} out of range")))?;
        let tuple = entry
            .take()
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} already deleted")))?;
        self.live -= 1;
        if self.schema.has_primary_key() {
            let key: Vec<Value> = self
                .schema
                .key_of(tuple.values())
                .into_iter()
                .cloned()
                .collect();
            self.pk_index.remove(&key);
        }
        Ok(tuple)
    }

    /// Update one column of the tuple at `slot`.
    ///
    /// Primary-key columns cannot be updated (delete + insert instead);
    /// this keeps the pk index and any foreign keys pointing here valid.
    pub fn update(&mut self, slot: u32, column: usize, value: Value) -> StorageResult<()> {
        if self.schema.primary_key.contains(&column) {
            return Err(StorageError::InvalidSchema(format!(
                "cannot update primary-key column {column} of `{}`",
                self.schema.name
            )));
        }
        let col = self
            .schema
            .columns
            .get(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.schema.name.clone(),
                column: format!("#{column}"),
            })?
            .clone();
        if value.is_null() && !col.nullable {
            return Err(StorageError::NullViolation {
                relation: self.schema.name.clone(),
                column: col.name,
            });
        }
        if !value.is_null() && !col.ty.accepts(&value) {
            return Err(StorageError::TypeMismatch {
                relation: self.schema.name.clone(),
                column: col.name,
                expected: col.ty.name().to_string(),
                actual: value.to_string(),
            });
        }
        let tuple = self
            .slots
            .get_mut(slot as usize)
            .and_then(|t| t.as_mut())
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} not live")))?;
        *tuple.get_mut(column).expect("arity checked at insert") = value;
        Ok(())
    }

    /// Iterate over live tuples as `(Rid, &Tuple)`.
    pub fn scan(&self) -> impl Iterator<Item = (Rid, &Tuple)> + '_ {
        let id = self.id;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(slot, t)| t.as_ref().map(|t| (Rid::new(id, slot as u32), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn author_table() -> Table {
        let schema = RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .nullable_column("HIndex", ColumnType::Int)
            .primary_key(&["AuthorId"])
            .build()
            .unwrap();
        Table::new(RelationId(0), schema)
    }

    fn row(id: &str, name: &str) -> Vec<Value> {
        vec![Value::text(id), Value::text(name), Value::Null]
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = author_table();
        let r1 = t.insert(row("SoumenC", "Soumen Chakrabarti")).unwrap();
        let r2 = t.insert(row("SunitaS", "Sunita Sarawagi")).unwrap();
        assert_eq!(t.len(), 2);
        let scanned: Vec<Rid> = t.scan().map(|(rid, _)| rid).collect();
        assert_eq!(scanned, vec![r1, r2]);
    }

    #[test]
    fn pk_lookup() {
        let mut t = author_table();
        let rid = t.insert(row("ByronD", "Byron Dom")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::text("ByronD")]), Some(rid));
        assert_eq!(t.lookup_pk(&[Value::text("nobody")]), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = author_table();
        t.insert(row("A", "First")).unwrap();
        let err = t.insert(row("A", "Second")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut t = author_table();
        assert!(matches!(
            t.insert(vec![Value::text("A")]).unwrap_err(),
            StorageError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::TypeMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Null, Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::NullViolation { .. }
        ));
    }

    #[test]
    fn delete_keeps_rids_stable_and_frees_key() {
        let mut t = author_table();
        let r1 = t.insert(row("A", "First")).unwrap();
        let r2 = t.insert(row("B", "Second")).unwrap();
        t.delete(r1.slot).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(r1.slot).is_none());
        assert!(t.get(r2.slot).is_some());
        // Key is free again and new insert gets a fresh slot.
        let r3 = t.insert(row("A", "Third")).unwrap();
        assert_ne!(r3.slot, r1.slot);
        // Double delete errors.
        assert!(t.delete(r1.slot).is_err());
    }

    #[test]
    fn update_non_key_column() {
        let mut t = author_table();
        let r = t.insert(row("A", "First")).unwrap();
        t.update(r.slot, 2, Value::Int(42)).unwrap();
        assert_eq!(t.get(r.slot).unwrap().get(2), Some(&Value::Int(42)));
        // pk column update rejected
        assert!(t.update(r.slot, 0, Value::text("B")).is_err());
        // type still enforced
        assert!(t.update(r.slot, 2, Value::text("nope")).is_err());
    }

    #[test]
    fn table_without_pk_allows_duplicates() {
        let schema = RelationSchema::builder("Writes")
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .build()
            .unwrap();
        let mut t = Table::new(RelationId(1), schema);
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.lookup_pk(&[]).is_none());
    }
}
