//! A single relation's stored tuples plus its primary-key index.

use crate::error::{StorageError, StorageResult};
use crate::schema::RelationSchema;
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use banks_util::fxhash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// Slots sharing one primary-key hash. 64-bit hashes over at most a few
/// million keys make `Many` astronomically rare, so the common entry
/// stays inline with no per-entry heap allocation.
#[derive(Debug, Clone)]
enum PkSlots {
    /// The typical entry: exactly one slot has this key hash.
    One(u32),
    /// Hash collision between distinct keys (or transiently during a
    /// collision-era delete): all candidate slots.
    Many(Vec<u32>),
}

impl PkSlots {
    fn candidates(&self) -> &[u32] {
        match self {
            PkSlots::One(slot) => std::slice::from_ref(slot),
            PkSlots::Many(slots) => slots,
        }
    }
}

/// Storage for one relation: a slot vector of tuples (deleted slots become
/// `None`, so rids stay stable) and a hash index on the primary key.
///
/// The index maps the Fx hash of a key to its slot(s) — the key values
/// themselves are **not** duplicated out of the tuples. Lookups hash the
/// probe key and confirm candidates against the stored tuple, so inserts
/// and binary-snapshot restores never clone key values, and the index
/// costs 12 bytes per tuple instead of a cloned `Vec<Value>`.
#[derive(Debug, Clone)]
pub struct Table {
    id: RelationId,
    schema: RelationSchema,
    slots: Vec<Option<Tuple>>,
    live: usize,
    pk_index: FxHashMap<u64, PkSlots>,
}

impl Table {
    /// Create an empty table for `schema` with catalog id `id`.
    pub fn new(id: RelationId, schema: RelationSchema) -> Table {
        Table {
            id,
            schema,
            slots: Vec::new(),
            live: 0,
            pk_index: FxHashMap::default(),
        }
    }

    /// Fx hash of a primary-key value sequence.
    fn pk_hash<'v>(key: impl Iterator<Item = &'v Value>) -> u64 {
        let mut h = FxHasher::default();
        for v in key {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Hash of the primary key embedded in a full tuple's values.
    fn pk_hash_of_row(&self, values: &[Value]) -> u64 {
        Self::pk_hash(self.schema.primary_key.iter().map(|&c| &values[c]))
    }

    /// Does the live tuple at `slot` carry exactly this primary key?
    fn slot_key_matches(&self, slot: u32, key: &[Value]) -> bool {
        let Some(tuple) = self.slots.get(slot as usize).and_then(|t| t.as_ref()) else {
            return false;
        };
        self.schema
            .primary_key
            .iter()
            .zip(key)
            .all(|(&c, k)| &tuple.values()[c] == k)
    }

    /// Find the slot holding `key` (hash → candidate confirmation).
    fn pk_slot(&self, key: &[Value]) -> Option<u32> {
        if key.len() != self.schema.primary_key.len() {
            return None;
        }
        self.pk_index
            .get(&Self::pk_hash(key.iter()))?
            .candidates()
            .iter()
            .copied()
            .find(|&slot| self.slot_key_matches(slot, key))
    }

    /// Register `slot` under `hash`.
    fn pk_link(&mut self, hash: u64, slot: u32) {
        match self.pk_index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PkSlots::One(slot));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                PkSlots::One(existing) => {
                    let existing = *existing;
                    e.insert(PkSlots::Many(vec![existing, slot]));
                }
                PkSlots::Many(slots) => slots.push(slot),
            },
        }
    }

    /// Unregister `slot` from `hash`.
    fn pk_unlink(&mut self, hash: u64, slot: u32) {
        match self.pk_index.get_mut(&hash) {
            Some(PkSlots::One(s)) if *s == slot => {
                self.pk_index.remove(&hash);
            }
            Some(PkSlots::Many(slots)) => {
                slots.retain(|&s| s != slot);
                if let [last] = slots[..] {
                    self.pk_index.insert(hash, PkSlots::One(last));
                }
            }
            _ => {}
        }
    }

    /// The catalog id of this relation.
    pub fn id(&self) -> RelationId {
        self.id
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of live (non-deleted) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Type/arity/nullability-check `values` against the schema.
    fn check_values(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        for (col, value) in self.schema.columns.iter().zip(values) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        relation: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !col.ty.accepts(value) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.name().to_string(),
                    actual: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert a tuple, enforcing schema and primary-key constraints.
    ///
    /// Foreign keys are enforced one level up, by
    /// [`crate::Database::insert`], which can see the referenced tables.
    pub fn insert(&mut self, values: Vec<Value>) -> StorageResult<Rid> {
        self.check_values(&values)?;
        let hash = if self.schema.has_primary_key() {
            let hash = self.pk_hash_of_row(&values);
            let key: Vec<&Value> = self.schema.key_of(&values);
            let duplicate = self
                .pk_index
                .get(&hash)
                .into_iter()
                .flat_map(|e| e.candidates())
                .any(|&slot| {
                    self.schema.primary_key.iter().zip(&key).all(|(&c, &k)| {
                        &self.slots[slot as usize]
                            .as_ref()
                            .expect("indexed slots are live")
                            .values()[c]
                            == k
                    })
                });
            if duplicate {
                return Err(StorageError::DuplicateKey {
                    relation: self.schema.name.clone(),
                    key: format!("{key:?}"),
                });
            }
            Some(hash)
        } else {
            None
        };
        let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX tuples");
        self.slots.push(Some(Tuple::new(values)));
        self.live += 1;
        if let Some(hash) = hash {
            self.pk_link(hash, slot);
        }
        Ok(Rid::new(self.id, slot))
    }

    /// Fetch the tuple at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&Tuple> {
        self.slots.get(slot as usize).and_then(|t| t.as_ref())
    }

    /// Look up a tuple by its full primary-key value.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<Rid> {
        self.pk_slot(key).map(|slot| Rid::new(self.id, slot))
    }

    /// Delete the tuple at `slot`. Returns the removed tuple.
    ///
    /// The slot is tombstoned, keeping every other rid stable.
    pub fn delete(&mut self, slot: u32) -> StorageResult<Tuple> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} out of range")))?;
        let tuple = entry
            .take()
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} already deleted")))?;
        self.live -= 1;
        if self.schema.has_primary_key() {
            let hash = self.pk_hash_of_row(tuple.values());
            self.pk_unlink(hash, slot);
        }
        Ok(tuple)
    }

    /// Update one column of the tuple at `slot`.
    ///
    /// Primary-key columns cannot be updated (delete + insert instead);
    /// this keeps the pk index and any foreign keys pointing here valid.
    pub fn update(&mut self, slot: u32, column: usize, value: Value) -> StorageResult<()> {
        if self.schema.primary_key.contains(&column) {
            return Err(StorageError::InvalidSchema(format!(
                "cannot update primary-key column {column} of `{}`",
                self.schema.name
            )));
        }
        let col = self
            .schema
            .columns
            .get(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.schema.name.clone(),
                column: format!("#{column}"),
            })?
            .clone();
        if value.is_null() && !col.nullable {
            return Err(StorageError::NullViolation {
                relation: self.schema.name.clone(),
                column: col.name,
            });
        }
        if !value.is_null() && !col.ty.accepts(&value) {
            return Err(StorageError::TypeMismatch {
                relation: self.schema.name.clone(),
                column: col.name,
                expected: col.ty.name().to_string(),
                actual: value.to_string(),
            });
        }
        let tuple = self
            .slots
            .get_mut(slot as usize)
            .and_then(|t| t.as_mut())
            .ok_or_else(|| StorageError::InvalidRid(format!("slot {slot} not live")))?;
        *tuple.get_mut(column).expect("arity checked at insert") = value;
        Ok(())
    }

    /// Restore a deserialized slot vector wholesale, **preserving slot
    /// numbers** (deleted slots stay `None`), and rebuild the live count
    /// and primary-key index. This is the binary-snapshot load path: rids
    /// recorded in a graph snapshot or text-index dump stay valid only if
    /// every tuple lands in its original slot, so the normal
    /// [`Table::insert`] (which compacts) cannot be used.
    ///
    /// Tuples are arity-checked (a short tuple would make later column
    /// access panic) and the primary-key index must come out
    /// collision-free; a violation means the serialized bytes were not
    /// produced from a consistent table and is reported as
    /// [`StorageError::Corrupt`]. Deep per-value type checks are skipped
    /// on this path (debug builds still run them): the stream is
    /// checksummed and written by [`crate::binary::write_database`] from
    /// an already-validated table, and restore latency is the whole
    /// point of binary snapshots.
    pub(crate) fn restore_slots(&mut self, slots: Vec<Option<Tuple>>) -> StorageResult<()> {
        debug_assert!(self.slots.is_empty(), "restore into a fresh table only");
        let mut live = 0usize;
        let mut pk_index = FxHashMap::default();
        pk_index.reserve(if self.schema.has_primary_key() {
            slots.len()
        } else {
            0
        });
        for (slot, tuple) in slots.iter().enumerate() {
            let Some(tuple) = tuple else { continue };
            if tuple.arity() != self.schema.arity() {
                return Err(StorageError::Corrupt(format!(
                    "restored tuple in `{}` has arity {}, schema says {}",
                    self.schema.name,
                    tuple.arity(),
                    self.schema.arity()
                )));
            }
            #[cfg(debug_assertions)]
            self.check_values(tuple.values())
                .map_err(|e| StorageError::Corrupt(format!("restored tuple invalid: {e}")))?;
            live += 1;
            if self.schema.has_primary_key() {
                let hash =
                    Self::pk_hash(self.schema.primary_key.iter().map(|&c| &tuple.values()[c]));
                let clash = match pk_index.entry(hash) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(PkSlots::One(slot as u32));
                        false
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        // Same hash: a true duplicate key is corruption;
                        // a mere collision between distinct keys widens
                        // the entry. Confirm against the earlier tuples.
                        let duplicate = e.get().candidates().iter().any(|&earlier| {
                            let other = slots[earlier as usize]
                                .as_ref()
                                .expect("indexed slots are live");
                            self.schema
                                .primary_key
                                .iter()
                                .all(|&c| other.values()[c] == tuple.values()[c])
                        });
                        if !duplicate {
                            match e.get_mut() {
                                PkSlots::One(existing) => {
                                    let existing = *existing;
                                    e.insert(PkSlots::Many(vec![existing, slot as u32]));
                                }
                                PkSlots::Many(list) => list.push(slot as u32),
                            }
                        }
                        duplicate
                    }
                };
                if clash {
                    return Err(StorageError::Corrupt(format!(
                        "duplicate primary key in restored relation `{}`",
                        self.schema.name
                    )));
                }
            }
        }
        self.slots = slots;
        self.live = live;
        self.pk_index = pk_index;
        Ok(())
    }

    /// Iterate over every slot (live or tombstoned), in slot order — the
    /// binary-snapshot save path, which must preserve slot layout.
    pub fn slots(&self) -> impl Iterator<Item = Option<&Tuple>> + '_ {
        self.slots.iter().map(|t| t.as_ref())
    }

    /// Iterate over live tuples as `(Rid, &Tuple)`.
    pub fn scan(&self) -> impl Iterator<Item = (Rid, &Tuple)> + '_ {
        let id = self.id;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(slot, t)| t.as_ref().map(|t| (Rid::new(id, slot as u32), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn author_table() -> Table {
        let schema = RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .nullable_column("HIndex", ColumnType::Int)
            .primary_key(&["AuthorId"])
            .build()
            .unwrap();
        Table::new(RelationId(0), schema)
    }

    fn row(id: &str, name: &str) -> Vec<Value> {
        vec![Value::text(id), Value::text(name), Value::Null]
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = author_table();
        let r1 = t.insert(row("SoumenC", "Soumen Chakrabarti")).unwrap();
        let r2 = t.insert(row("SunitaS", "Sunita Sarawagi")).unwrap();
        assert_eq!(t.len(), 2);
        let scanned: Vec<Rid> = t.scan().map(|(rid, _)| rid).collect();
        assert_eq!(scanned, vec![r1, r2]);
    }

    #[test]
    fn pk_lookup() {
        let mut t = author_table();
        let rid = t.insert(row("ByronD", "Byron Dom")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::text("ByronD")]), Some(rid));
        assert_eq!(t.lookup_pk(&[Value::text("nobody")]), None);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = author_table();
        t.insert(row("A", "First")).unwrap();
        let err = t.insert(row("A", "Second")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut t = author_table();
        assert!(matches!(
            t.insert(vec![Value::text("A")]).unwrap_err(),
            StorageError::ArityMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::TypeMismatch { .. }
        ));
        assert!(matches!(
            t.insert(vec![Value::Null, Value::text("x"), Value::Null])
                .unwrap_err(),
            StorageError::NullViolation { .. }
        ));
    }

    #[test]
    fn delete_keeps_rids_stable_and_frees_key() {
        let mut t = author_table();
        let r1 = t.insert(row("A", "First")).unwrap();
        let r2 = t.insert(row("B", "Second")).unwrap();
        t.delete(r1.slot).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(r1.slot).is_none());
        assert!(t.get(r2.slot).is_some());
        // Key is free again and new insert gets a fresh slot.
        let r3 = t.insert(row("A", "Third")).unwrap();
        assert_ne!(r3.slot, r1.slot);
        // Double delete errors.
        assert!(t.delete(r1.slot).is_err());
    }

    #[test]
    fn update_non_key_column() {
        let mut t = author_table();
        let r = t.insert(row("A", "First")).unwrap();
        t.update(r.slot, 2, Value::Int(42)).unwrap();
        assert_eq!(t.get(r.slot).unwrap().get(2), Some(&Value::Int(42)));
        // pk column update rejected
        assert!(t.update(r.slot, 0, Value::text("B")).is_err());
        // type still enforced
        assert!(t.update(r.slot, 2, Value::text("nope")).is_err());
    }

    #[test]
    fn table_without_pk_allows_duplicates() {
        let schema = RelationSchema::builder("Writes")
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .build()
            .unwrap();
        let mut t = Table::new(RelationId(1), schema);
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        t.insert(vec![Value::text("a"), Value::text("p")]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.lookup_pk(&[]).is_none());
    }
}
