//! Binary (de)serialization for the storage layer: catalog + tuples
//! ([`write_database`] / [`read_database`]) and the inverted keyword
//! index ([`write_text_index`] / [`read_text_index`]).
//!
//! These are the storage sections of the `banks-persist` full-system
//! snapshot bundle. Two properties drive the format:
//!
//! * **Slot preservation.** Rids are `(relation, slot)` pairs and every
//!   derived structure — the CSR graph snapshot, text-index postings —
//!   records rids. Serialization therefore dumps the raw slot vectors,
//!   tombstones included, and restore puts every tuple back in its
//!   original slot ([`crate::Table`]'s restore path) instead of
//!   re-inserting (which would compact slots and shift every rid).
//! * **Determinism.** The same database serializes to the same bytes:
//!   relations in catalog order, slots in slot order, index tokens
//!   sorted. Restore re-derives the reverse-reference index in that same
//!   deterministic order, so a restored database is interchangeable with
//!   the original for every downstream consumer.
//!
//! The catalog (relation schemas, keys, foreign keys) rides along as the
//! existing line-based `schema.banks` text (see [`crate::bundle`]) — it
//! is tiny, versioned by its keyword grammar, and already round-trip
//! tested. Framing, checksums, and file headers are the caller's job
//! (`banks-persist` wraps each section with magic + length + a
//! whole-file checksum); this module is pure payload.

use crate::bundle::{schema_from_text, schema_to_text};
use crate::catalog::Database;
use crate::error::{StorageError, StorageResult};
use crate::text_index::{Posting, TextIndex};
use crate::tuple::{RelationId, Rid, Tuple};
use crate::value::Value;
use std::io::Write;

/// Refuse to allocate for a single string/list longer than this while
/// decoding: corrupt length prefixes must fail fast, not abort on OOM.
const MAX_DECODE_LEN: u64 = 1 << 32;

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Corrupt(format!("io: {e}"))
}

fn put(w: &mut impl Write, bytes: &[u8]) -> StorageResult<()> {
    w.write_all(bytes).map_err(io_err)
}

fn put_u64(w: &mut impl Write, v: u64) -> StorageResult<()> {
    put(w, &v.to_le_bytes())
}

fn put_u32(w: &mut impl Write, v: u32) -> StorageResult<()> {
    put(w, &v.to_le_bytes())
}

fn put_bytes(w: &mut impl Write, bytes: &[u8]) -> StorageResult<()> {
    put_u64(w, bytes.len() as u64)?;
    put(w, bytes)
}

/// The decode cursor: a borrowed byte slice plus a position. Decoding
/// straight off the slice means no intermediate zeroed buffers and no
/// per-field `Read` calls — strings are built by one `to_owned` of a
/// validated sub-slice, numeric arrays by `chunks_exact` walks.
struct Cur<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> StorageResult<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(StorageError::Corrupt(format!(
                "{what}: stream ends {n} byte(s) early at offset {}",
                self.at
            )));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    /// Bytes left — used to cap pre-allocations so a corrupt count
    /// fails on decode instead of attempting a giant reservation.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn u8(&mut self, what: &str) -> StorageResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn len(&mut self, what: &str) -> StorageResult<usize> {
        let len = self.u64(what)?;
        if len > MAX_DECODE_LEN {
            return Err(StorageError::Corrupt(format!(
                "{what} length {len} is implausible"
            )));
        }
        Ok(len as usize)
    }

    fn string(&mut self, what: &str) -> StorageResult<String> {
        let len = self.len(what)?;
        let raw = self.take(len, what)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| StorageError::Corrupt(format!("{what} is not valid UTF-8")))
    }

    /// Walk `count` `(u32, u32, u32)` triples — the shape of both
    /// posting lists and back-reference lists — without copying.
    fn triples(
        &mut self,
        count: usize,
        what: &str,
    ) -> StorageResult<impl Iterator<Item = (u32, u32, u32)> + 'a> {
        let raw = self.take(
            count
                .checked_mul(12)
                .ok_or_else(|| StorageError::Corrupt(format!("{what} count overflows")))?,
            what,
        )?;
        Ok(raw.chunks_exact(12).map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
            )
        }))
    }
}

// Value tags. Tag 1/2 fold the boolean into the tag byte.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;

fn put_value(w: &mut impl Write, v: &Value) -> StorageResult<()> {
    match v {
        Value::Null => put(w, &[TAG_NULL]),
        Value::Bool(false) => put(w, &[TAG_FALSE]),
        Value::Bool(true) => put(w, &[TAG_TRUE]),
        Value::Int(i) => {
            put(w, &[TAG_INT])?;
            put(w, &i.to_le_bytes())
        }
        Value::Float(x) => {
            put(w, &[TAG_FLOAT])?;
            put(w, &x.to_le_bytes())
        }
        Value::Text(s) => {
            put(w, &[TAG_TEXT])?;
            put_bytes(w, s.as_bytes())
        }
    }
}

fn take_value(cur: &mut Cur<'_>) -> StorageResult<Value> {
    Ok(match cur.u8("value tag")? {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(i64::from_le_bytes(
            cur.take(8, "int value")?.try_into().expect("8 bytes"),
        )),
        TAG_FLOAT => Value::Float(f64::from_le_bytes(
            cur.take(8, "float value")?.try_into().expect("8 bytes"),
        )),
        TAG_TEXT => Value::Text(cur.string("text value")?),
        other => return Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
    })
}

/// Serialize the full database — catalog as `schema.banks` text, then
/// every relation's raw slot vector (tombstones included) in catalog
/// order, then the reverse-reference index. See the module docs for the
/// format rationale; the index is serialized rather than re-derived on
/// load because re-resolving every foreign key costs a `Vec<Value>`
/// hash lookup per link — the dominant cost of a restore — and because
/// dumping it verbatim preserves the live system's exact per-target
/// reference order.
pub fn write_database(db: &Database, w: &mut impl Write) -> StorageResult<()> {
    if db.tuple_store().is_some() {
        // A lazy database serializes through the copy-on-write v3
        // writer (`blocks::encode_database_v3`); this path collects
        // more borrowed reference lists at once than the keep-alive
        // ring licenses.
        return Err(StorageError::Corrupt(
            "cannot write a lazily-opened database as a v2 DATA stream".into(),
        ));
    }
    put_bytes(w, schema_to_text(db).as_bytes())?;
    put_u32(w, db.relation_count() as u32)?;
    for table in db.relations() {
        put_u64(w, table.slot_count() as u64)?;
        for slot in table.slots() {
            match slot {
                None => put(w, &[0u8])?,
                Some(tuple) => {
                    put(w, &[1u8])?;
                    for value in tuple.values() {
                        put_value(w, value)?;
                    }
                }
            }
        }
    }
    // Back-reference index: targets in (relation, slot) order — a
    // deterministic walk — each with its reference list verbatim. One
    // pass collects the referenced targets (so the map lookup per tuple
    // happens once, not once for counting and once for emitting), then
    // the count prefix and the records are written.
    let targets: Vec<(Rid, &[crate::catalog::BackRef])> = db
        .relations()
        .flat_map(|table| table.scan().map(|(rid, _)| (rid, db.referencing(rid))))
        .filter(|(_, refs)| !refs.is_empty())
        .collect();
    put_u64(w, targets.len() as u64)?;
    for (rid, refs) in targets {
        put_u32(w, rid.relation.0)?;
        put_u32(w, rid.slot)?;
        put_u64(w, refs.len() as u64)?;
        for r in refs {
            put_u32(w, r.from.relation.0)?;
            put_u32(w, r.from.slot)?;
            put_u32(w, r.fk_index as u32)?;
        }
    }
    Ok(())
}

/// Deserialize a [`write_database`] stream: parse the catalog, restore
/// each relation's slots in place, then install the serialized
/// reverse-reference index (liveness-checked). Any inconsistency
/// (duplicate key, type drift, dead rid in the index) is
/// [`StorageError::Corrupt`].
pub fn read_database(bytes: &[u8]) -> StorageResult<Database> {
    let cur = &mut Cur::new(bytes);
    let schema_text = cur.string("schema text")?;
    let mut db = schema_from_text(&schema_text)?;
    let relations = cur.u32("relation count")? as usize;
    if relations != db.relation_count() {
        return Err(StorageError::Corrupt(format!(
            "schema declares {} relations but stream carries {relations}",
            db.relation_count()
        )));
    }
    let arities: Vec<(RelationId, usize)> = db
        .relations()
        .map(|t| (t.id(), t.schema().arity()))
        .collect();
    for (id, arity) in arities {
        let slot_count = cur.len("slot vector")?;
        let mut slots = Vec::with_capacity(slot_count.min(cur.remaining()));
        for _ in 0..slot_count {
            match cur.u8("slot presence")? {
                0 => slots.push(None),
                1 => {
                    let mut values = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        values.push(take_value(cur)?);
                    }
                    slots.push(Some(Tuple::new(values)));
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "bad slot presence byte {other}"
                    )))
                }
            }
        }
        db.restore_relation_slots(id, slots)?;
    }
    let targets = cur.len("back-reference index")?;
    let mut links = Vec::with_capacity(targets.min(cur.remaining()));
    for _ in 0..targets {
        let relation = RelationId(cur.u32("back-reference target")?);
        let slot = cur.u32("back-reference target slot")?;
        let count = cur.len("back-reference list")?;
        let refs = cur
            .triples(count, "back-reference list")?
            .map(|(rel, slot, fk_index)| crate::catalog::BackRef {
                from: Rid::new(RelationId(rel), slot),
                fk_index: fk_index as usize,
            })
            .collect();
        links.push((Rid::new(relation, slot), refs));
    }
    db.install_links(links)?;
    Ok(db)
}

/// Serialize the inverted index: tokens sorted lexicographically, each
/// with its posting list in `(rid, column)` order.
pub fn write_text_index(index: &TextIndex, w: &mut impl Write) -> StorageResult<()> {
    let mut tokens: Vec<&str> = index.tokens().collect();
    tokens.sort_unstable();
    put_u64(w, tokens.len() as u64)?;
    for token in tokens {
        put_bytes(w, token.as_bytes())?;
        let postings = index.lookup(token);
        put_u64(w, postings.len() as u64)?;
        for p in postings {
            put_u32(w, p.rid.relation.0)?;
            put_u32(w, p.rid.slot)?;
            put_u32(w, p.column)?;
        }
    }
    Ok(())
}

/// Deserialize a [`write_text_index`] stream.
pub fn read_text_index(bytes: &[u8]) -> StorageResult<TextIndex> {
    let cur = &mut Cur::new(bytes);
    let tokens = cur.len("token count")?;
    let mut entries = Vec::with_capacity(tokens.min(cur.remaining()));
    for _ in 0..tokens {
        let token = cur.string("token")?;
        let count = cur.len("posting list")?;
        let list = cur
            .triples(count, "posting list")?
            .map(|(relation, slot, column)| Posting {
                rid: Rid::new(RelationId(relation), slot),
                column,
            })
            .collect();
        entries.push((token, list));
    }
    Ok(TextIndex::from_postings(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, RelationSchema};
    use crate::tokenizer::Tokenizer;

    fn sample_db() -> Database {
        let mut db = Database::new("binary-test");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("Id", ColumnType::Text)
                .nullable_column("Name", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Year", ColumnType::Int)
                .nullable_column("Rating", ColumnType::Float)
                .column("Published", ColumnType::Bool)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("A", ColumnType::Text)
                .column("P", ColumnType::Text)
                .primary_key(&["A", "P"])
                .foreign_key(&["A"], "Author")
                .foreign_key_with_similarity(&["P"], "Paper", 2.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [
            ("a1", Some("Grace, \"quoted\"")),
            ("a2", None),
            ("a3", Some("Ada")),
        ] {
            db.insert(
                "Author",
                vec![
                    Value::text(id),
                    name.map(Value::text).unwrap_or(Value::Null),
                ],
            )
            .unwrap();
        }
        db.insert(
            "Paper",
            vec![
                Value::text("p1"),
                Value::Int(1998),
                Value::Float(4.5),
                Value::Bool(true),
            ],
        )
        .unwrap();
        db.insert("Writes", vec![Value::text("a1"), Value::text("p1")])
            .unwrap();
        db.insert("Writes", vec![Value::text("a3"), Value::text("p1")])
            .unwrap();
        // Punch a hole: delete a2 so a tombstoned slot must round-trip.
        let victim = db
            .relation("Author")
            .unwrap()
            .lookup_pk(&[Value::text("a2")])
            .unwrap();
        db.delete(victim).unwrap();
        db
    }

    fn roundtrip(db: &Database) -> Database {
        let mut buf = Vec::new();
        write_database(db, &mut buf).unwrap();
        read_database(&buf).unwrap()
    }

    #[test]
    fn database_roundtrips_with_slot_holes() {
        let db = sample_db();
        let restored = roundtrip(&db);
        assert_eq!(restored.name(), db.name());
        assert_eq!(restored.total_tuples(), db.total_tuples());
        assert_eq!(restored.link_count(), db.link_count());
        for (a, b) in db.relations().zip(restored.relations()) {
            assert_eq!(a.schema(), b.schema());
            assert_eq!(a.slot_count(), b.slot_count(), "{}", a.schema().name);
            let av: Vec<_> = a.scan().collect();
            let bv: Vec<_> = b.scan().collect();
            assert_eq!(av, bv, "rids and values identical for {}", a.schema().name);
        }
        // Back references are preserved verbatim, order included.
        for table in db.relations() {
            for (rid, _) in table.scan() {
                assert_eq!(db.referencing(rid), restored.referencing(rid), "{rid}");
            }
        }
        // Serialization is deterministic.
        let (mut one, mut two) = (Vec::new(), Vec::new());
        write_database(&db, &mut one).unwrap();
        write_database(&restored, &mut two).unwrap();
        assert_eq!(one, two);
    }

    #[test]
    fn text_index_roundtrips_bit_for_bit() {
        let db = sample_db();
        let index = TextIndex::build(&db, &Tokenizer::new());
        let mut buf = Vec::new();
        write_text_index(&index, &mut buf).unwrap();
        let restored = read_text_index(&buf).unwrap();
        assert_eq!(index.distinct_tokens(), restored.distinct_tokens());
        assert_eq!(index.posting_count(), restored.posting_count());
        for token in index.tokens() {
            assert_eq!(index.lookup(token), restored.lookup(token), "{token}");
        }
        let mut again = Vec::new();
        write_text_index(&restored, &mut again).unwrap();
        assert_eq!(buf, again, "deterministic serialization");
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_database(&db, &mut buf).unwrap();
        // Truncations at every prefix either decode-fail cleanly or (for
        // the empty prefix) fail on the missing length.
        for cut in 0..buf.len() {
            assert!(
                read_database(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // A wild value tag is a typed error.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] = 0xee;
        // May fail anywhere depending on what the byte was; must not panic.
        let _ = read_database(&bad);
        // Implausible length prefixes must not attempt the allocation.
        let mut huge = Vec::new();
        put_u64(&mut huge, u64::MAX).unwrap();
        assert!(matches!(
            read_database(&huge),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn restored_database_rejects_inconsistent_link_index() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_database(&db, &mut buf).unwrap();
        let end = buf.len();

        // The stream ends with the last back-reference's
        // (relation, slot, fk_index) triple. A fk_index beyond the
        // relation's foreign keys must be rejected…
        let mut bad = buf.clone();
        bad[end - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_database(&bad) {
            Err(StorageError::Corrupt(m)) => assert!(m.contains("foreign key"), "{m}"),
            other => panic!("wild fk_index must be Corrupt, got {other:?}"),
        }

        // …and so must a reference from a slot that is not live.
        let mut dead = buf.clone();
        dead[end - 8..end - 4].copy_from_slice(&999u32.to_le_bytes());
        match read_database(&dead) {
            Err(StorageError::Corrupt(m)) => assert!(m.contains("live"), "{m}"),
            other => panic!("dead source rid must be Corrupt, got {other:?}"),
        }
    }
}
